//! Interval abstract domain over constant conditions.
//!
//! A [`Domain`] abstracts the set of attribute values an event can carry
//! while satisfying a conjunction of constant conditions `v.A φ C` on one
//! `(variable, attribute)` node: a lower bound, an upper bound (each
//! possibly strict), and a set of excluded points from `≠` conditions.
//!
//! The domain follows the same contract as [`crate::PatternAnalysis`]:
//! it is **conservative in the sound direction** and assumes values range
//! over a *dense* total order. Over the integers `x > 5 ∧ x < 6` is
//! unsatisfiable, but the domain reports it satisfiable — claiming
//! emptiness only when it holds over every totally ordered interpretation.
//! Consequently [`Domain::is_empty`] never flags a satisfiable condition
//! set and [`Domain::implies`] never certifies a non-implied condition.
//!
//! Values of incomparable types (e.g. a string bound and an integer
//! bound) poison the interval: the domain degrades to "unknown" and makes
//! no emptiness or implication claims, except for the always-sound pair
//! of contradicting equalities.

use std::cmp::Ordering;

use ses_event::{CmpOp, Value};

/// One endpoint of an interval: a value plus whether the comparison
/// excludes the value itself (`<`/`>` vs `≤`/`≥`).
#[derive(Debug, Clone, PartialEq)]
pub struct Bound {
    /// The endpoint value.
    pub value: Value,
    /// `true` for `<`/`>` (endpoint excluded), `false` for `≤`/`≥`.
    pub strict: bool,
}

/// The abstract value set of one `(variable, attribute)` node.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Domain {
    lo: Option<Bound>,
    hi: Option<Bound>,
    excluded: Vec<Value>,
    /// Two `=` constraints pinned different points — empty regardless of
    /// interval reasoning (sound even across incomparable types).
    conflict: bool,
    /// An unorderable pair of bounds was seen; the interval is unreliable
    /// and the domain makes no further claims.
    poisoned: bool,
}

impl Domain {
    /// The unconstrained domain ⊤.
    pub fn top() -> Domain {
        Domain::default()
    }

    /// The current lower bound, if any.
    pub fn lo(&self) -> Option<&Bound> {
        self.lo.as_ref()
    }

    /// The current upper bound, if any.
    pub fn hi(&self) -> Option<&Bound> {
        self.hi.as_ref()
    }

    /// Points excluded by `≠` constraints.
    pub fn excluded(&self) -> &[Value] {
        &self.excluded
    }

    /// `true` iff an unorderable bound pair degraded the domain to
    /// "unknown" (see the module docs).
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// The single point the domain is pinned to, when `lo = hi` and both
    /// ends are inclusive.
    pub fn point(&self) -> Option<&Value> {
        let (lo, hi) = (self.lo.as_ref()?, self.hi.as_ref()?);
        if !lo.strict && !hi.strict && lo.value.try_cmp(&hi.value) == Some(Ordering::Equal) {
            Some(&lo.value)
        } else {
            None
        }
    }

    /// Intersects the domain with `x φ value`. Returns `true` iff the
    /// domain changed.
    pub fn constrain(&mut self, op: CmpOp, value: &Value) -> bool {
        match op {
            CmpOp::Eq => {
                // A second, different pinned point is a conflict even when
                // the values are incomparable (nothing equals both).
                if let Some(p) = self.point() {
                    if p.try_cmp(value) != Some(Ordering::Equal) {
                        let changed = !self.conflict;
                        self.conflict = true;
                        return changed;
                    }
                }
                let a = self.tighten_lo(value, false);
                let b = self.tighten_hi(value, false);
                a || b
            }
            CmpOp::Ne => self.exclude(value),
            CmpOp::Lt => self.tighten_hi(value, true),
            CmpOp::Le => self.tighten_hi(value, false),
            CmpOp::Gt => self.tighten_lo(value, true),
            CmpOp::Ge => self.tighten_lo(value, false),
        }
    }

    /// Poisons the domain when the two bounds are of unorderable types —
    /// the interval can then support no cross-bound reasoning.
    fn check_bounds_orderable(&mut self) {
        if let (Some(lo), Some(hi)) = (&self.lo, &self.hi) {
            if lo.value.try_cmp(&hi.value).is_none() {
                self.poisoned = true;
            }
        }
    }

    /// Tightens the lower bound to `(value, strict)` if stronger. Returns
    /// `true` iff the domain changed.
    pub fn tighten_lo(&mut self, value: &Value, strict: bool) -> bool {
        let changed = self.tighten_lo_inner(value, strict);
        self.check_bounds_orderable();
        changed
    }

    fn tighten_lo_inner(&mut self, value: &Value, strict: bool) -> bool {
        match &mut self.lo {
            None => {
                self.lo = Some(Bound {
                    value: value.clone(),
                    strict,
                });
                true
            }
            Some(cur) => match value.try_cmp(&cur.value) {
                Some(Ordering::Greater) => {
                    *cur = Bound {
                        value: value.clone(),
                        strict,
                    };
                    true
                }
                Some(Ordering::Equal) if strict && !cur.strict => {
                    cur.strict = true;
                    true
                }
                Some(_) => false,
                None => {
                    let changed = !self.poisoned;
                    self.poisoned = true;
                    changed
                }
            },
        }
    }

    /// Tightens the upper bound to `(value, strict)` if stronger. Returns
    /// `true` iff the domain changed.
    pub fn tighten_hi(&mut self, value: &Value, strict: bool) -> bool {
        let changed = self.tighten_hi_inner(value, strict);
        self.check_bounds_orderable();
        changed
    }

    fn tighten_hi_inner(&mut self, value: &Value, strict: bool) -> bool {
        match &mut self.hi {
            None => {
                self.hi = Some(Bound {
                    value: value.clone(),
                    strict,
                });
                true
            }
            Some(cur) => match value.try_cmp(&cur.value) {
                Some(Ordering::Less) => {
                    *cur = Bound {
                        value: value.clone(),
                        strict,
                    };
                    true
                }
                Some(Ordering::Equal) if strict && !cur.strict => {
                    cur.strict = true;
                    true
                }
                Some(_) => false,
                None => {
                    let changed = !self.poisoned;
                    self.poisoned = true;
                    changed
                }
            },
        }
    }

    /// Adds `value` to the excluded point set. Returns `true` iff it was
    /// not already excluded.
    pub fn exclude(&mut self, value: &Value) -> bool {
        if self
            .excluded
            .iter()
            .any(|v| v.try_cmp(value) == Some(Ordering::Equal))
        {
            false
        } else {
            self.excluded.push(value.clone());
            true
        }
    }

    /// Absorbs every constraint of `other` (used across `=` variable
    /// conditions: equal nodes share one domain). Returns `true` iff this
    /// domain changed.
    pub fn absorb(&mut self, other: &Domain) -> bool {
        let mut changed = false;
        if other.conflict && !self.conflict {
            self.conflict = true;
            changed = true;
        }
        if other.poisoned && !self.poisoned {
            self.poisoned = true;
            changed = true;
        }
        if let Some(lo) = &other.lo {
            changed |= self.tighten_lo(&lo.value, lo.strict);
        }
        if let Some(hi) = &other.hi {
            changed |= self.tighten_hi(&hi.value, hi.strict);
        }
        for v in &other.excluded {
            changed |= self.exclude(v);
        }
        changed
    }

    /// `true` iff the domain is **provably** empty over every dense
    /// totally ordered interpretation. Never claims emptiness that relies
    /// on discreteness: `> 5 ∧ < 6` stays satisfiable.
    pub fn is_empty(&self) -> bool {
        if self.conflict {
            return true;
        }
        if self.poisoned {
            return false; // no reliable interval — claim nothing
        }
        let (Some(lo), Some(hi)) = (&self.lo, &self.hi) else {
            return false;
        };
        match lo.value.try_cmp(&hi.value) {
            Some(Ordering::Greater) => true,
            Some(Ordering::Equal) => {
                lo.strict
                    || hi.strict
                    || self
                        .excluded
                        .iter()
                        .any(|v| v.try_cmp(&lo.value) == Some(Ordering::Equal))
            }
            _ => false,
        }
    }

    /// `true` iff **every** value in the domain provably satisfies
    /// `x op value`. Conservative: `false` whenever implication cannot be
    /// certified (including on poisoned domains). On an empty domain the
    /// implication holds vacuously.
    pub fn implies(&self, op: CmpOp, value: &Value) -> bool {
        if self.conflict {
            return true; // vacuous: the domain is empty
        }
        if self.poisoned {
            return false;
        }
        let below = |b: &Bound, allow_equal: bool| match b.value.try_cmp(value) {
            Some(Ordering::Less) => true,
            Some(Ordering::Equal) => allow_equal || b.strict,
            _ => false,
        };
        let above = |b: &Bound, allow_equal: bool| match b.value.try_cmp(value) {
            Some(Ordering::Greater) => true,
            Some(Ordering::Equal) => allow_equal || b.strict,
            _ => false,
        };
        match op {
            // Point domain pinned exactly to `value`.
            CmpOp::Eq => self
                .point()
                .is_some_and(|p| p.try_cmp(value) == Some(Ordering::Equal)),
            // `value` lies outside the interval, or is explicitly excluded.
            CmpOp::Ne => {
                self.hi.as_ref().is_some_and(|h| below(h, false))
                    || self.lo.as_ref().is_some_and(|l| above(l, false))
                    || self
                        .excluded
                        .iter()
                        .any(|v| v.try_cmp(value) == Some(Ordering::Equal))
            }
            CmpOp::Lt => self.hi.as_ref().is_some_and(|h| below(h, false)),
            CmpOp::Le => self.hi.as_ref().is_some_and(|h| below(h, true)),
            CmpOp::Gt => self.lo.as_ref().is_some_and(|l| above(l, false)),
            CmpOp::Ge => self.lo.as_ref().is_some_and(|l| above(l, true)),
        }
    }

    /// The minimal constant conditions describing this domain, as
    /// `(op, value)` pairs: a pinned point renders as one `=`, otherwise
    /// the bounds render as `≥`/`>` and `≤`/`<`, followed by the excluded
    /// points still inside the interval as `≠`.
    pub fn to_constraints(&self) -> Vec<(CmpOp, Value)> {
        if self.poisoned || self.conflict {
            return Vec::new();
        }
        let mut out = Vec::new();
        if let Some(p) = self.point() {
            out.push((CmpOp::Eq, p.clone()));
        } else {
            if let Some(lo) = &self.lo {
                let op = if lo.strict { CmpOp::Gt } else { CmpOp::Ge };
                out.push((op, lo.value.clone()));
            }
            if let Some(hi) = &self.hi {
                let op = if hi.strict { CmpOp::Lt } else { CmpOp::Le };
                out.push((op, hi.value.clone()));
            }
            // `≠` points outside the interval are already implied by a
            // bound; only in-interval exclusions carry information.
            let interval_only = Domain {
                lo: self.lo.clone(),
                hi: self.hi.clone(),
                excluded: Vec::new(),
                conflict: false,
                poisoned: false,
            };
            for v in &self.excluded {
                if !interval_only.implies(CmpOp::Ne, v) {
                    out.push((CmpOp::Ne, v.clone()));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dom(cs: &[(CmpOp, Value)]) -> Domain {
        let mut d = Domain::top();
        for (op, v) in cs {
            d.constrain(*op, v);
        }
        d
    }

    #[test]
    fn discrete_integer_gap_is_conservatively_satisfiable() {
        // Over ℤ, `x > 5 ∧ x < 6` is empty — but the domain assumes
        // density (per the analysis.rs doc contract) and must NOT claim
        // emptiness.
        let d = dom(&[(CmpOp::Gt, Value::from(5)), (CmpOp::Lt, Value::from(6))]);
        assert!(!d.is_empty());
        // The genuinely empty float analogue at the same endpoint:
        let d = dom(&[(CmpOp::Gt, Value::from(5)), (CmpOp::Lt, Value::from(5))]);
        assert!(d.is_empty());
    }

    #[test]
    fn empty_at_equal_vs_le_boundaries() {
        // `x < 5 ∧ x = 5` → empty (strict endpoint vs pinned point).
        let d = dom(&[(CmpOp::Lt, Value::from(5)), (CmpOp::Eq, Value::from(5))]);
        assert!(d.is_empty());
        // `x ≤ 5 ∧ x = 5` → satisfiable (inclusive endpoint).
        let d = dom(&[(CmpOp::Le, Value::from(5)), (CmpOp::Eq, Value::from(5))]);
        assert!(!d.is_empty());
        assert_eq!(d.point(), Some(&Value::from(5)));
        // `x ≤ 5 ∧ x ≥ 5` pins the point; `x < 5 ∧ x ≥ 5` is empty.
        let d = dom(&[(CmpOp::Le, Value::from(5)), (CmpOp::Ge, Value::from(5))]);
        assert!(!d.is_empty());
        assert_eq!(d.point(), Some(&Value::from(5)));
        let d = dom(&[(CmpOp::Lt, Value::from(5)), (CmpOp::Ge, Value::from(5))]);
        assert!(d.is_empty());
    }

    #[test]
    fn ne_point_exclusion_chains() {
        // `x ≥ 5 ∧ x ≤ 5 ∧ x ≠ 5` → empty: the only point is excluded.
        let d = dom(&[
            (CmpOp::Ge, Value::from(5)),
            (CmpOp::Le, Value::from(5)),
            (CmpOp::Ne, Value::from(5)),
        ]);
        assert!(d.is_empty());
        // `x = 5 ∧ x ≠ 5` → empty.
        let d = dom(&[(CmpOp::Eq, Value::from(5)), (CmpOp::Ne, Value::from(5))]);
        assert!(d.is_empty());
        // A chain of exclusions over an interval stays satisfiable
        // (density: removing finitely many points never empties it).
        let d = dom(&[
            (CmpOp::Ge, Value::from(0)),
            (CmpOp::Le, Value::from(3)),
            (CmpOp::Ne, Value::from(1)),
            (CmpOp::Ne, Value::from(2)),
            (CmpOp::Ne, Value::from(3)),
        ]);
        assert!(!d.is_empty());
        // Duplicate exclusions are deduplicated (Int 1 ≡ Float 1.0).
        let mut d = Domain::top();
        assert!(d.exclude(&Value::from(1)));
        assert!(!d.exclude(&Value::from(1.0)));
        assert_eq!(d.excluded().len(), 1);
    }

    #[test]
    fn mixed_type_bounds_poison_the_interval() {
        // A string bound against an integer bound is unorderable: the
        // domain degrades and claims nothing.
        let d = dom(&[(CmpOp::Gt, Value::from(5)), (CmpOp::Lt, Value::from("abc"))]);
        assert!(d.is_poisoned());
        assert!(!d.is_empty());
        assert!(!d.implies(CmpOp::Gt, &Value::from(5)));
        assert!(d.to_constraints().is_empty());
        // ... except contradicting equalities, which are sound even
        // across types: nothing equals both 5 and "abc".
        let d = dom(&[(CmpOp::Eq, Value::from(5)), (CmpOp::Eq, Value::from("abc"))]);
        assert!(d.is_empty());
        // Numeric cross-type bounds are comparable, not poison.
        let d = dom(&[(CmpOp::Ge, Value::from(5)), (CmpOp::Le, Value::from(4.5))]);
        assert!(!d.is_poisoned());
        assert!(d.is_empty());
    }

    #[test]
    fn implication_direction_is_sound() {
        let d = dom(&[(CmpOp::Gt, Value::from(3)), (CmpOp::Le, Value::from(7))]);
        // Implied by the interval (3, 7]:
        assert!(d.implies(CmpOp::Gt, &Value::from(2)));
        assert!(d.implies(CmpOp::Ge, &Value::from(3)));
        assert!(d.implies(CmpOp::Gt, &Value::from(3))); // strict lower bound
        assert!(d.implies(CmpOp::Le, &Value::from(7)));
        assert!(d.implies(CmpOp::Lt, &Value::from(8)));
        assert!(d.implies(CmpOp::Ne, &Value::from(3))); // 3 itself excluded
        assert!(d.implies(CmpOp::Ne, &Value::from(10)));
        // Not implied:
        assert!(!d.implies(CmpOp::Lt, &Value::from(7))); // 7 is attainable
        assert!(!d.implies(CmpOp::Gt, &Value::from(4)));
        assert!(!d.implies(CmpOp::Ne, &Value::from(5)));
        assert!(!d.implies(CmpOp::Eq, &Value::from(5)));
        // Point domain implies its own equality.
        let p = dom(&[(CmpOp::Eq, Value::from(5))]);
        assert!(p.implies(CmpOp::Eq, &Value::from(5)));
        assert!(p.implies(CmpOp::Eq, &Value::from(5.0)));
        assert!(p.implies(CmpOp::Le, &Value::from(5)));
        assert!(!p.implies(CmpOp::Lt, &Value::from(5)));
    }

    #[test]
    fn absorb_merges_all_constraints() {
        let mut a = dom(&[(CmpOp::Ge, Value::from(0))]);
        let b = dom(&[(CmpOp::Le, Value::from(9)), (CmpOp::Ne, Value::from(4))]);
        assert!(a.absorb(&b));
        assert!(!a.absorb(&b)); // idempotent once merged
        assert!(a.implies(CmpOp::Ge, &Value::from(0)));
        assert!(a.implies(CmpOp::Le, &Value::from(9)));
        assert!(a.implies(CmpOp::Ne, &Value::from(4)));
    }

    #[test]
    fn to_constraints_round_trips() {
        let d = dom(&[
            (CmpOp::Gt, Value::from(3)),
            (CmpOp::Le, Value::from(7)),
            (CmpOp::Ne, Value::from(5)),
            (CmpOp::Ne, Value::from(100)), // outside — implied, dropped
        ]);
        let cs = d.to_constraints();
        assert_eq!(
            cs,
            vec![
                (CmpOp::Gt, Value::from(3)),
                (CmpOp::Le, Value::from(7)),
                (CmpOp::Ne, Value::from(5)),
            ]
        );
        let p = dom(&[(CmpOp::Ge, Value::from(5)), (CmpOp::Le, Value::from(5))]);
        assert_eq!(p.to_constraints(), vec![(CmpOp::Eq, Value::from(5))]);
        assert!(Domain::top().to_constraints().is_empty());
    }
}
