//! The [`Pattern`] type: `P = (⟨V1, …, Vm⟩, Θ, τ)`.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use ses_event::{Duration, Schema};

use crate::builder::PatternBuilder;
use crate::{CompiledPattern, Condition, PatternError, VarId, Variable};

/// A sequenced event set pattern (Definition 1 of the paper).
///
/// Immutable once built; construct via [`Pattern::builder`]. A pattern is
/// schema-independent — compile it against a concrete [`Schema`] with
/// [`Pattern::compile`] before matching.
#[derive(Debug, Clone)]
pub struct Pattern {
    vars: Vec<Variable>,
    sets: Vec<Vec<VarId>>,
    conditions: Vec<Condition>,
    negations: Vec<crate::Negation>,
    within: Duration,
    by_name: HashMap<Arc<str>, VarId>,
}

impl Pattern {
    /// Starts building a pattern.
    pub fn builder() -> PatternBuilder {
        PatternBuilder::new()
    }

    pub(crate) fn from_parts(
        vars: Vec<Variable>,
        sets: Vec<Vec<VarId>>,
        conditions: Vec<Condition>,
        negations: Vec<crate::Negation>,
        within: Duration,
    ) -> Pattern {
        let by_name = vars
            .iter()
            .enumerate()
            .map(|(i, v)| (Arc::from(v.name()), VarId(i as u16)))
            .collect();
        Pattern {
            vars,
            sets,
            conditions,
            negations,
            within,
            by_name,
        }
    }

    /// Number of event set patterns `m`.
    pub fn num_sets(&self) -> usize {
        self.sets.len()
    }

    /// Total number of event variables `|V|`.
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// The variable ids of event set pattern `Vi` (0-based `i`).
    pub fn set(&self, i: usize) -> &[VarId] {
        &self.sets[i]
    }

    /// All event set patterns in sequence order.
    pub fn sets(&self) -> &[Vec<VarId>] {
        &self.sets
    }

    /// All variables in declaration order (indexable by [`VarId`]).
    pub fn variables(&self) -> &[Variable] {
        &self.vars
    }

    /// The variable with the given id.
    pub fn var(&self, id: VarId) -> &Variable {
        &self.vars[id.index()]
    }

    /// Resolves a variable name.
    pub fn var_id(&self, name: &str) -> Option<VarId> {
        self.by_name.get(name).copied()
    }

    /// The display name of a variable (with `+` suffix for group variables).
    pub fn var_name(&self, id: VarId) -> String {
        self.vars[id.index()].to_string()
    }

    /// The conditions `Θ`.
    pub fn conditions(&self) -> &[Condition] {
        &self.conditions
    }

    /// The negated variables (extension beyond the paper; see
    /// [`crate::Negation`]).
    pub fn negations(&self) -> &[crate::Negation] {
        &self.negations
    }

    /// `true` iff the pattern uses negation.
    pub fn has_negations(&self) -> bool {
        !self.negations.is_empty()
    }

    /// The maximal window `τ`.
    pub fn within(&self) -> Duration {
        self.within
    }

    /// `true` iff event set pattern `Vi` contains at least one group
    /// variable.
    pub fn set_has_group(&self, i: usize) -> bool {
        self.sets[i].iter().any(|v| self.var(*v).is_group())
    }

    /// Number of group variables in event set pattern `Vi`.
    pub fn group_count(&self, i: usize) -> usize {
        self.sets[i]
            .iter()
            .filter(|v| self.var(**v).is_group())
            .count()
    }

    /// Ids of all group variables.
    pub fn group_vars(&self) -> impl Iterator<Item = VarId> + '_ {
        self.vars
            .iter()
            .enumerate()
            .filter(|(_, v)| v.is_group())
            .map(|(i, _)| VarId(i as u16))
    }

    /// Resolves attribute names against `schema`, type-checks all
    /// conditions, and runs the static analysis (Definition 6, Theorems
    /// 1–3).
    pub fn compile(&self, schema: &Schema) -> Result<CompiledPattern, PatternError> {
        CompiledPattern::compile(self.clone(), schema)
    }
}

impl fmt::Display for Pattern {
    /// Pretty-prints in the paper's notation:
    /// `(⟨{c, p+, d}, {b}⟩, {…}, 264 ticks)`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(⟨")?;
        for (i, set) in self.sets.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{{")?;
            for (j, v) in set.iter().enumerate() {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{}", self.var(*v))?;
            }
            write!(f, "}}")?;
            for n in &self.negations {
                if n.after_set() == i {
                    write!(f, ", ¬{}", n.name())?;
                }
            }
        }
        write!(f, "⟩, {{")?;
        let names = |v: VarId| self.var(v).name().to_string();
        for (i, c) in self.conditions.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            f.write_str(&crate::condition::display_condition(c, &names))?;
        }
        write!(f, "}}, {})", self.within)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ses_event::CmpOp;

    fn q1() -> Pattern {
        Pattern::builder()
            .set(|s| s.var("c").plus("p").var("d"))
            .set(|s| s.var("b"))
            .cond_const("c", "L", CmpOp::Eq, "C")
            .cond_vars("c", "ID", CmpOp::Eq, "p", "ID")
            .within(Duration::hours(264))
            .build()
            .unwrap()
    }

    #[test]
    fn accessors() {
        let p = q1();
        assert_eq!(p.num_sets(), 2);
        assert_eq!(p.num_vars(), 4);
        assert_eq!(p.set(0).len(), 3);
        assert_eq!(p.set(1).len(), 1);
        assert_eq!(p.var_id("p"), Some(VarId(1)));
        assert_eq!(p.var_id("nope"), None);
        assert!(p.var(VarId(1)).is_group());
        assert_eq!(p.var(VarId(1)).set_index(), 0);
        assert_eq!(p.var(VarId(3)).set_index(), 1);
        assert_eq!(p.within(), Duration::hours(264));
        assert_eq!(p.conditions().len(), 2);
    }

    #[test]
    fn group_helpers() {
        let p = q1();
        assert!(p.set_has_group(0));
        assert!(!p.set_has_group(1));
        assert_eq!(p.group_count(0), 1);
        assert_eq!(p.group_count(1), 0);
        assert_eq!(p.group_vars().collect::<Vec<_>>(), vec![VarId(1)]);
    }

    #[test]
    fn display_uses_paper_notation() {
        let p = q1();
        let s = p.to_string();
        assert!(s.starts_with("(⟨{c, p+, d}, {b}⟩, {"), "got {s}");
        assert!(s.contains("c.L = 'C'"));
        assert!(s.contains("c.ID = p.ID"));
        assert!(s.ends_with("264 ticks)"));
    }
}
