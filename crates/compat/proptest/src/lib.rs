//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crate registry, so this workspace
//! vendors a small, deterministic property-testing harness exposing the
//! `proptest` API subset its test suites use:
//!
//! - the [`strategy::Strategy`] trait with `prop_map` / `prop_filter`,
//!   ranges, tuples, [`strategy::Just`], `prop_oneof!`, and string
//!   strategies from a practical regex subset (`"[a-z]{1,6}"`, `"."`,
//!   `{m,n}` quantifiers),
//! - [`collection::vec`], [`bool::ANY`], [`option::of`],
//!   [`arbitrary::any`],
//! - the [`proptest!`] macro with `#![proptest_config(..)]`,
//!   `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!`, and
//!   `?`-compatible bodies returning [`test_runner::TestCaseError`],
//! - `.proptest-regressions` files: failing case seeds are appended and
//!   replayed first on the next run (`cc <16-hex-digit seed>` lines).
//!
//! Differences from real proptest, by design:
//!
//! - **No shrinking.** A failure reports the generated case verbatim
//!   plus its seed; rerun with `PROPTEST_SEED=<seed> PROPTEST_CASES=1`
//!   to replay it under a debugger.
//! - **Deterministic by default.** The base seed is derived from the
//!   test's name, so CI runs are reproducible. Set `PROPTEST_SEED` to
//!   explore fresh cases, `PROPTEST_CASES` to change the case count.

pub mod strategy {
    //! Value-generation strategies (no shrinking).

    use super::test_runner::TestRng;
    use std::fmt::Debug;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value: Debug;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Discards generated values failing `pred`, resampling (up to
        /// an attempt cap) until one passes.
        fn prop_filter<F: Fn(&Self::Value) -> bool>(
            self,
            whence: impl Into<String>,
            pred: F,
        ) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter {
                inner: self,
                whence: whence.into(),
                pred,
            }
        }

        /// Type-erases the strategy for heterogeneous composition
        /// (e.g. the arms of `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// Object-safe generation, used behind [`BoxedStrategy`].
    trait DynStrategy<T> {
        fn generate_dyn(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

    impl<T: Debug> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate_dyn(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        inner: S,
        whence: String,
        pred: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..10_000 {
                let v = self.inner.generate(rng);
                if (self.pred)(&v) {
                    return v;
                }
            }
            panic!(
                "prop_filter '{}' rejected 10000 consecutive samples — \
                 strategy and filter are incompatible",
                self.whence
            );
        }
    }

    /// A strategy producing one fixed value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone + Debug>(pub T);

    impl<T: Clone + Debug> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice over type-erased alternatives; the expansion of
    /// `prop_oneof!`.
    pub struct Union<T>(Vec<BoxedStrategy<T>>);

    impl<T> Union<T> {
        /// A union over the given alternatives (must be non-empty).
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union(arms)
        }
    }

    impl<T: Debug> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let arm = rng.below(self.0.len() as u64) as usize;
            self.0[arm].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128 + 1) as u64;
                    if span == 0 {
                        return rng.next_u64() as $t; // full-width range
                    }
                    (lo as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + (self.end - self.start) * rng.unit_f64()
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident),+))*) => {$(
            #[allow(non_snake_case)]
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($s,)+) = self;
                    ($($s.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy!((A)(A, B)(A, B, C)(A, B, C, D)(A, B, C, D, E)(
        A, B, C, D, E, G
    )(A, B, C, D, E, G, H)(A, B, C, D, E, G, H, I));

    /// `&str` regex patterns are strategies over matching strings
    /// (supported subset: literals, `.`, `[..]` classes with ranges,
    /// and `{m}` / `{m,n}` / `?` / `+` / `*` quantifiers).
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            super::string::generate_matching(self, rng)
        }
    }
}

pub mod test_runner {
    //! The deterministic case runner, RNG, and failure plumbing.

    use std::fmt::Debug;
    use std::path::{Path, PathBuf};

    /// Deterministic splitmix64 generator driving all strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator whose output is a pure function of `seed`.
        pub fn from_seed(seed: u64) -> Self {
            TestRng {
                state: seed ^ 0x9e37_79b9_7f4a_7c15,
            }
        }

        /// Next 64-bit word.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[0, span)`; `span` must be non-zero.
        pub fn below(&mut self, span: u64) -> u64 {
            debug_assert!(span > 0);
            ((self.next_u64() as u128 * span as u128) >> 64) as u64
        }

        /// Uniform draw from `[0, 1)` with 53 bits of precision.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Why a single test case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// The property was falsified.
        Fail(String),
        /// The case could not be evaluated (kept for API parity).
        Reject(String),
    }

    impl TestCaseError {
        /// A falsification with the given explanation.
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError::Fail(reason.into())
        }

        /// A rejection with the given explanation.
        pub fn reject(reason: impl Into<String>) -> Self {
            TestCaseError::Reject(reason.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(r) => write!(f, "{r}"),
                TestCaseError::Reject(r) => write!(f, "rejected: {r}"),
            }
        }
    }

    /// Runner configuration, set via `#![proptest_config(..)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// A default configuration running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    fn fnv1a(bytes: &[u8]) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Locates `relative` (a `file!()` path, relative to the workspace
    /// root) by walking up from the current directory — `cargo test`
    /// runs with the *package* root as cwd, which for sub-crates is
    /// below the workspace root.
    fn resolve_source(relative: &str) -> Option<PathBuf> {
        let mut dir = std::env::current_dir().ok()?;
        loop {
            let candidate = dir.join(relative);
            if candidate.is_file() {
                return Some(candidate);
            }
            if !dir.pop() {
                return None;
            }
        }
    }

    fn regression_path(source_file: &str) -> Option<PathBuf> {
        let mut p = resolve_source(source_file)?;
        p.set_extension("proptest-regressions");
        Some(p)
    }

    /// Parses `cc <hex>` lines, folding each hex blob to a 64-bit
    /// replay seed (real-proptest 256-bit hashes fold losslessly enough
    /// to serve as extra deterministic cases).
    fn load_regression_seeds(path: &Path) -> Vec<u64> {
        let Ok(text) = std::fs::read_to_string(path) else {
            return Vec::new();
        };
        text.lines()
            .filter_map(|line| {
                let rest = line.trim().strip_prefix("cc ")?;
                let hex: String = rest.chars().take_while(|c| c.is_ascii_hexdigit()).collect();
                if hex.is_empty() {
                    return None;
                }
                let mut seed = 0u64;
                for c in hex.chars() {
                    seed = seed
                        .rotate_left(4)
                        .wrapping_add(c.to_digit(16).unwrap() as u64);
                }
                Some(seed)
            })
            .collect()
    }

    fn record_regression(source_file: &str, seed: u64, case: &str) {
        let Some(path) = regression_path(source_file) else {
            return;
        };
        let header_needed = !path.exists();
        let one_line = case.replace('\n', " ");
        let mut entry = String::new();
        if header_needed {
            entry.push_str(
                "# Seeds for failure cases the proptest harness generated in the past.\n\
                 # Automatically read and replayed before any novel cases; check in to\n\
                 # share regressions. Format: `cc <16-hex-digit splitmix64 seed>`.\n",
            );
        }
        entry.push_str(&format!("cc {seed:016x} # shrinks to {one_line}\n"));
        use std::io::Write;
        let _ = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .and_then(|mut f| f.write_all(entry.as_bytes()));
    }

    /// Renders a caught panic payload.
    pub fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
        if let Some(s) = payload.downcast_ref::<&str>() {
            format!("panic: {s}")
        } else if let Some(s) = payload.downcast_ref::<String>() {
            format!("panic: {s}")
        } else {
            "panic: <non-string payload>".to_string()
        }
    }

    /// Drives one property: replays recorded regression seeds, then
    /// runs `config.cases` fresh cases. Panics (failing the enclosing
    /// `#[test]`) on the first falsified case, after appending its seed
    /// to the `.proptest-regressions` file next to the test source.
    pub fn run_cases<F>(source_file: &str, test_name: &str, config: &ProptestConfig, mut case: F)
    where
        F: FnMut(&mut TestRng) -> (String, Result<(), TestCaseError>),
    {
        let base_seed = match std::env::var("PROPTEST_SEED") {
            Ok(v) => {
                let v = v.trim();
                u64::from_str_radix(v.trim_start_matches("0x"), 16)
                    .or_else(|_| v.parse())
                    .unwrap_or_else(|_| panic!("unparseable PROPTEST_SEED: {v:?}"))
            }
            Err(_) => fnv1a(test_name.as_bytes()) ^ fnv1a(source_file.as_bytes()),
        };
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(config.cases);

        let replays = regression_path(source_file)
            .map(|p| load_regression_seeds(&p))
            .unwrap_or_default();

        let fresh = (0..cases as u64).map(|i| {
            // Decorrelate per-case seeds from the sequential index.
            base_seed ^ (i.wrapping_mul(0x2545_f491_4f6c_dd1d).rotate_left(17))
        });

        for (replay, seed) in replays
            .into_iter()
            .map(|s| (true, s))
            .chain(fresh.map(|s| (false, s)))
        {
            let mut rng = TestRng::from_seed(seed);
            let (case_desc, outcome) = case(&mut rng);
            if let Err(err) = outcome {
                if !replay {
                    record_regression(source_file, seed, &case_desc);
                }
                panic!(
                    "proptest: property `{test_name}` falsified\n\
                     {err}\n\
                     seed: 0x{seed:016x}{replay_note}\n\
                     minimal-input shrinking is not implemented; failing case:\n\
                     {case_desc}",
                    replay_note = if replay { " (replayed regression)" } else { "" },
                );
            }
        }
    }

    /// Generates one value for debugging / doc examples.
    pub fn sample<S: crate::strategy::Strategy>(strategy: &S, seed: u64) -> S::Value
    where
        S::Value: Debug,
    {
        strategy.generate(&mut TestRng::from_seed(seed))
    }
}

mod string {
    //! Generation of strings matching a practical regex subset.

    use super::test_runner::TestRng;

    #[derive(Debug, Clone)]
    enum CharSet {
        /// `.` — any char except newline.
        Any,
        /// `[..]` — inclusive ranges (singletons are 1-wide ranges).
        Class(Vec<(char, char)>),
        /// A literal character.
        Lit(char),
    }

    #[derive(Debug, Clone)]
    struct Atom {
        set: CharSet,
        min: u32,
        max: u32,
    }

    fn parse(pattern: &str) -> Vec<Atom> {
        let mut chars = pattern.chars().peekable();
        let mut atoms = Vec::new();
        while let Some(c) = chars.next() {
            let set = match c {
                '.' => CharSet::Any,
                '[' => {
                    let mut ranges = Vec::new();
                    let mut pending: Option<char> = None;
                    loop {
                        let Some(d) = chars.next() else {
                            panic!("unterminated character class in regex {pattern:?}");
                        };
                        match d {
                            ']' => {
                                if let Some(p) = pending {
                                    ranges.push((p, p));
                                }
                                break;
                            }
                            '-' if pending.is_some() && chars.peek() != Some(&']') => {
                                let lo = pending.take().unwrap();
                                let hi = unescape(chars.next().unwrap(), &mut chars);
                                assert!(lo <= hi, "inverted class range in regex {pattern:?}");
                                ranges.push((lo, hi));
                            }
                            other => {
                                if let Some(p) = pending.replace(unescape(other, &mut chars)) {
                                    ranges.push((p, p));
                                }
                            }
                        }
                    }
                    assert!(!ranges.is_empty(), "empty character class in {pattern:?}");
                    CharSet::Class(ranges)
                }
                '\\' => CharSet::Lit(unescape('\\', &mut chars)),
                lit => CharSet::Lit(lit),
            };
            let (min, max) = match chars.peek() {
                Some('{') => {
                    chars.next();
                    let mut spec = String::new();
                    for d in chars.by_ref() {
                        if d == '}' {
                            break;
                        }
                        spec.push(d);
                    }
                    match spec.split_once(',') {
                        Some((lo, hi)) => (
                            lo.trim().parse().expect("bad {m,n} in regex"),
                            hi.trim().parse().expect("bad {m,n} in regex"),
                        ),
                        None => {
                            let n = spec.trim().parse().expect("bad {m} in regex");
                            (n, n)
                        }
                    }
                }
                Some('+') => {
                    chars.next();
                    (1, 8)
                }
                Some('*') => {
                    chars.next();
                    (0, 8)
                }
                Some('?') => {
                    chars.next();
                    (0, 1)
                }
                _ => (1, 1),
            };
            assert!(min <= max, "inverted quantifier in regex {pattern:?}");
            atoms.push(Atom { set, min, max });
        }
        atoms
    }

    fn unescape(c: char, chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> char {
        if c != '\\' {
            return c;
        }
        match chars.next().expect("dangling backslash in regex") {
            'n' => '\n',
            't' => '\t',
            'r' => '\r',
            other => other,
        }
    }

    /// A small non-ASCII sample set, so `.` occasionally exercises
    /// multi-byte UTF-8 handling in parsers under fuzz.
    const EXOTIC: [char; 6] = ['é', 'λ', '→', '„', '日', '\u{7f}'];

    fn draw(set: &CharSet, rng: &mut TestRng) -> char {
        match set {
            CharSet::Any => {
                if rng.below(20) == 0 {
                    EXOTIC[rng.below(EXOTIC.len() as u64) as usize]
                } else {
                    char::from_u32(0x20 + rng.below(0x7f - 0x20) as u32).unwrap()
                }
            }
            CharSet::Class(ranges) => {
                let total: u64 = ranges
                    .iter()
                    .map(|&(lo, hi)| (hi as u64) - (lo as u64) + 1)
                    .sum();
                let mut k = rng.below(total);
                for &(lo, hi) in ranges {
                    let width = (hi as u64) - (lo as u64) + 1;
                    if k < width {
                        // In-range by construction (classes in this
                        // workspace never straddle surrogates).
                        return char::from_u32(lo as u32 + k as u32).unwrap();
                    }
                    k -= width;
                }
                unreachable!()
            }
            CharSet::Lit(c) => *c,
        }
    }

    /// Generates a string matching `pattern`.
    pub fn generate_matching(pattern: &str, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for atom in parse(pattern) {
            let n = atom.min + rng.below((atom.max - atom.min + 1) as u64) as u32;
            for _ in 0..n {
                out.push(draw(&atom.set, rng));
            }
        }
        out
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// An inclusive length range for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty collection size range");
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// A strategy for `Vec<S::Value>` with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.max - self.size.min + 1) as u64;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod bool {
    //! Boolean strategies.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// The uniform boolean strategy.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Uniform `true` / `false`.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod option {
    //! `Option` strategies.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// `Some(inner)` half the time, `None` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// See [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            if rng.next_u64() & 1 == 1 {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }
}

pub mod arbitrary {
    //! `any::<T>()` — canonical whole-domain strategies.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::fmt::Debug;
    use std::marker::PhantomData;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Debug + Sized {
        /// Draws one value (edge-biased for integers).
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    // Bias towards boundary values, where integer bugs live.
                    match rng.below(8) {
                        0 => <$t>::MIN,
                        1 => <$t>::MAX,
                        2 => 0,
                        3 => 1,
                        _ => rng.next_u64() as $t,
                    }
                }
            }
        )*};
    }

    arbitrary_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            match rng.below(8) {
                0 => 0.0,
                1 => -0.0,
                2 => f64::MAX,
                3 => f64::MIN_POSITIVE,
                _ => {
                    f64::from_bits(rng.next_u64() >> 12)
                        * if rng.next_u64() & 1 == 1 { -1.0 } else { 1.0 }
                }
            }
        }
    }

    /// The strategy returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct AnyStrategy<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for the whole domain of `T`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Declares property tests. Each `fn name(arg in strategy, ..) { .. }`
/// expands to a `#[test]` running the body over generated cases; see
/// the crate docs for runner semantics.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($config:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $config;
                let __strategy = ( $($strategy,)+ );
                $crate::test_runner::run_cases(
                    file!(),
                    stringify!($name),
                    &__config,
                    |__rng| {
                        let ( $($arg,)+ ) =
                            $crate::strategy::Strategy::generate(&__strategy, __rng);
                        let __case_desc = format!(
                            concat!($(stringify!($arg), " = {:?}\n",)+),
                            $(&$arg,)+
                        );
                        let __outcome = ::std::panic::catch_unwind(
                            ::std::panic::AssertUnwindSafe(
                                move || -> ::std::result::Result<
                                    (),
                                    $crate::test_runner::TestCaseError,
                                > {
                                    $body
                                    #[allow(unreachable_code)]
                                    ::std::result::Result::Ok(())
                                },
                            ),
                        )
                        .unwrap_or_else(|payload| {
                            ::std::result::Result::Err(
                                $crate::test_runner::TestCaseError::fail(
                                    $crate::test_runner::panic_message(payload),
                                ),
                            )
                        });
                        (__case_desc, __outcome)
                    },
                );
            }
        )*
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Fails the current case unless the operands compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `(left == right)`\n  left: {:?}\n right: {:?}",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `(left == right)`: {}\n  left: {:?}\n right: {:?}",
            format!($($fmt)*),
            left,
            right
        );
    }};
}

/// Fails the current case if the operands compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `(left != right)`\n  both: {:?}",
            left
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `(left != right)`: {}\n  both: {:?}",
            format!($($fmt)*),
            left
        );
    }};
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::Strategy::boxed($arm) ),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = TestRng::from_seed(1);
        let strat = (0u8..4, 1i64..3, -1.0f64..1.0);
        for _ in 0..500 {
            let (a, b, c) = strat.generate(&mut rng);
            assert!(a < 4);
            assert!((1..3).contains(&b));
            assert!((-1.0..1.0).contains(&c));
        }
    }

    #[test]
    fn regex_subset_matches_shape() {
        let mut rng = TestRng::from_seed(2);
        for _ in 0..500 {
            let s = crate::strategy::Strategy::generate(&"[a-c]{1,3}", &mut rng);
            assert!((1..=3).contains(&s.chars().count()), "{s:?}");
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)), "{s:?}");

            let t = crate::strategy::Strategy::generate(&"[ -~\n]{0,12}", &mut rng);
            assert!(t.chars().count() <= 12);
            assert!(
                t.chars().all(|c| c == '\n' || (' '..='~').contains(&c)),
                "{t:?}"
            );

            let dot = crate::strategy::Strategy::generate(&".{0,120}", &mut rng);
            assert!(dot.chars().count() <= 120);
        }
    }

    #[test]
    fn vec_and_filter_and_map_compose() {
        let mut rng = TestRng::from_seed(3);
        let strat = crate::collection::vec((0u8..3, 1i64..3), 3..12)
            .prop_filter("nonempty", |v| !v.is_empty())
            .prop_map(|v| v.len());
        for _ in 0..200 {
            let n = strat.generate(&mut rng);
            assert!((3..12).contains(&n));
        }
    }

    #[test]
    fn oneof_unifies_heterogeneous_arms() {
        let mut rng = TestRng::from_seed(4);
        let strat = prop_oneof![
            Just("PATTERN".to_string()),
            Just("(".to_string()),
            "[a-c]{1,3}",
        ];
        let mut saw_just = false;
        let mut saw_regex = false;
        for _ in 0..200 {
            let s = strat.generate(&mut rng);
            match s.as_str() {
                "PATTERN" | "(" => saw_just = true,
                _ => saw_regex = true,
            }
        }
        assert!(saw_just && saw_regex);
    }

    // The macro itself, end-to-end (also exercises `prop_assert*`,
    // `?`-style bodies, and config parsing).
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Doc comments and `#[test]` metas pass through.
        #[test]
        fn macro_end_to_end(xs in crate::collection::vec(0i64..100, 0..8), flip in crate::bool::ANY) {
            prop_assert!(xs.len() < 8);
            let doubled: Vec<i64> = xs.iter().map(|x| x * 2).collect();
            prop_assert_eq!(doubled.len(), xs.len(), "flip = {}", flip);
            let parsed: i64 = "42".parse().map_err(|e| TestCaseError::fail(format!("{e}")))?;
            prop_assert_ne!(parsed, 0);
        }

        #[test]
        fn options_and_any(v in crate::option::of(0i64..10), n in any::<i64>()) {
            if let Some(x) = v {
                prop_assert!((0..10).contains(&x));
            }
            let _ = n.checked_add(1);
        }
    }

    #[test]
    #[should_panic(expected = "falsified")]
    fn failing_property_panics_with_seed() {
        // Point PROPTEST-style regression recording at a nonexistent
        // source so this intentional failure writes nothing.
        crate::test_runner::run_cases(
            "no/such/source.rs",
            "failing_property",
            &ProptestConfig::with_cases(10),
            |rng| {
                let v = crate::strategy::Strategy::generate(&(0i64..100), rng);
                (
                    format!("v = {v:?}"),
                    Err(TestCaseError::fail("always fails")),
                )
            },
        );
    }
}
