//! Offline stand-in for the `bytes` crate.
//!
//! Provides `BytesMut` (growable write buffer with little-endian
//! `put_*` methods), `Bytes` (frozen immutable buffer), and the `Buf`
//! cursor trait implemented for `&[u8]`. Backed by plain `Vec<u8>` —
//! no refcounted slicing — which is all the event-log codec needs.

use std::ops::Deref;

/// An immutable, frozen byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes(Vec<u8>);

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Bytes(Vec::new())
    }

    /// Number of bytes in the buffer.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(v)
    }
}

/// A growable byte buffer with little-endian primitive writers.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut(Vec::new())
    }

    /// Creates an empty buffer with at least `cap` bytes reserved.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut(Vec::with_capacity(cap))
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Freezes the buffer into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes(self.0)
    }

    /// Clears the buffer, retaining capacity.
    pub fn clear(&mut self) {
        self.0.clear();
    }
}

macro_rules! put_le {
    ($($fn_name:ident: $t:ty),*) => {$(
        /// Appends the value in little-endian byte order.
        fn $fn_name(&mut self, v: $t) {
            self.put_slice(&v.to_le_bytes());
        }
    )*};
}

/// A sink for appending bytes (the write-side counterpart of [`Buf`]).
pub trait BufMut {
    /// Appends a byte slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends a single byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    put_le!(
        put_u16_le: u16,
        put_u32_le: u32,
        put_u64_le: u64,
        put_i64_le: i64,
        put_f64_le: f64
    );
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

macro_rules! get_le {
    ($($fn_name:ident: $t:ty),*) => {$(
        /// Reads the next value in little-endian byte order and
        /// advances the cursor. Panics if insufficient bytes remain.
        fn $fn_name(&mut self) -> $t {
            const N: usize = std::mem::size_of::<$t>();
            let mut raw = [0u8; N];
            raw.copy_from_slice(&self.chunk()[..N]);
            self.advance(N);
            <$t>::from_le_bytes(raw)
        }
    )*};
}

/// A read cursor over a byte buffer.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// The unread bytes.
    fn chunk(&self) -> &[u8];

    /// Advances the cursor by `n` bytes. Panics if `n > remaining()`.
    fn advance(&mut self, n: usize);

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Reads the next byte and advances the cursor.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    get_le!(
        get_u16_le: u16,
        get_u32_le: u32,
        get_u64_le: u64,
        get_i64_le: i64,
        get_f64_le: f64
    );
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_widths() {
        let mut w = BytesMut::with_capacity(64);
        w.put_u8(7);
        w.put_u16_le(0xBEEF);
        w.put_u32_le(0xDEAD_BEEF);
        w.put_u64_le(0x0123_4567_89AB_CDEF);
        w.put_i64_le(-42);
        w.put_f64_le(6.5);
        w.put_slice(b"tail");
        let frozen = w.freeze();

        let mut r: &[u8] = &frozen;
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16_le(), 0xBEEF);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), 0x0123_4567_89AB_CDEF);
        assert_eq!(r.get_i64_le(), -42);
        assert_eq!(r.get_f64_le(), 6.5);
        assert!(r.has_remaining());
        assert_eq!(r.remaining(), 4);
        assert_eq!(r, b"tail");
        r.advance(4);
        assert!(!r.has_remaining());
    }
}
