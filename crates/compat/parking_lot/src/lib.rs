//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s non-poisoning
//! API: `read()` / `write()` / `lock()` return guards directly instead
//! of `Result`s. A poisoned std lock (a writer panicked) is recovered
//! rather than propagated, matching `parking_lot`'s behaviour of not
//! tracking poisoning at all.

use std::sync;

/// Reader-writer lock with `parking_lot`'s panic-free locking API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Shared read guard. Alias of the std guard; derefs to `T`.
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive write guard. Alias of the std guard; derefs to `T`.
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new lock holding `value`.
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (the borrow proves uniqueness).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Mutual-exclusion lock with `parking_lot`'s panic-free locking API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// Exclusive guard. Alias of the std guard; derefs to `T`.
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (the borrow proves uniqueness).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write() {
        let lock = RwLock::new(1);
        *lock.write() += 41;
        assert_eq!(*lock.read(), 42);
        assert_eq!(lock.into_inner(), 42);
    }

    #[test]
    fn mutex_lock() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(m.into_inner(), vec![1, 2]);
    }
}
