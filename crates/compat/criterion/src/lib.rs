//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset of the criterion API the benches in this
//! workspace use — `Criterion::benchmark_group`, `sample_size`,
//! `throughput`, `bench_function`, `bench_with_input`, `Bencher::iter`,
//! and the `criterion_group!` / `criterion_main!` macros — over a
//! simple wall-clock measurement loop. No statistical regression
//! analysis, no HTML reports; each benchmark prints one line with
//! min / mean / max per-iteration time (and throughput when set).
//!
//! Measurement scheme: one untimed warm-up call sizes the batch so a
//! sample lasts ≥ ~5 ms, then `sample_size` timed batches run
//! back-to-back (capped to keep any one benchmark under ~2 s).

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-sample time floor: batches are sized so one sample spans this.
const SAMPLE_FLOOR: Duration = Duration::from_millis(5);
/// Soft wall-clock cap for one benchmark's measurement phase.
const BENCH_BUDGET: Duration = Duration::from_secs(2);

/// The benchmark manager handed to `criterion_group!` targets.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("\n{name}");
        BenchmarkGroup {
            _criterion: self,
            sample_size: 20,
            throughput: None,
        }
    }
}

/// Units for reporting processed volume per unit time.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Number of logical elements processed per iteration.
    Elements(u64),
    /// Number of bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// An id with a function name and a parameter rendered via `Display`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            name: name.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    /// An id consisting of a parameter only.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            name: String::new(),
            parameter: Some(parameter.to_string()),
        }
    }

    fn label(&self) -> String {
        match &self.parameter {
            Some(p) if self.name.is_empty() => p.clone(),
            Some(p) => format!("{}/{}", self.name, p),
            None => self.name.clone(),
        }
    }
}

/// Conversion into a [`BenchmarkId`], so benches can pass `&str`
/// labels or structured ids interchangeably.
pub trait IntoBenchmarkId {
    /// Performs the conversion.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            name: self.to_string(),
            parameter: None,
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            name: self,
            parameter: None,
        }
    }
}

/// A group of benchmarks sharing sampling configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Sets the per-iteration processed volume for throughput lines.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs a benchmark closure.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(id.into_benchmark_id(), &mut f);
        self
    }

    /// Runs a benchmark closure with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(id.into_benchmark_id(), &mut |b: &mut Bencher| f(b, input));
        self
    }

    fn run(&mut self, id: BenchmarkId, f: &mut dyn FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            samples_ns: Vec::new(),
        };
        f(&mut bencher);
        bencher.report(&id.label(), self.throughput);
    }

    /// Ends the group (reporting is per-benchmark, so this is a no-op).
    pub fn finish(self) {}
}

/// The timing loop handle passed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    /// Mean per-iteration nanoseconds of each collected sample.
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Untimed warm-up that also sizes the batch.
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let batch = (SAMPLE_FLOOR.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

        let mut samples = self.sample_size;
        // Keep one benchmark's total under the budget.
        let projected = once * batch as u32 * samples as u32;
        if projected > BENCH_BUDGET {
            let affordable = (BENCH_BUDGET.as_nanos() / (once.as_nanos() * batch as u128)).max(2);
            samples = samples.min(affordable as usize);
        }

        self.samples_ns.clear();
        for _ in 0..samples {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            self.samples_ns
                .push(elapsed.as_nanos() as f64 / batch as f64);
        }
    }

    fn report(&self, label: &str, throughput: Option<Throughput>) {
        if self.samples_ns.is_empty() {
            eprintln!("  {label:<40} (no samples — did the closure call iter?)");
            return;
        }
        let min = self
            .samples_ns
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min);
        let max = self.samples_ns.iter().cloned().fold(0.0, f64::max);
        let mean = self.samples_ns.iter().sum::<f64>() / self.samples_ns.len() as f64;
        let mut line = format!(
            "  {label:<40} time: [{} {} {}]",
            fmt_ns(min),
            fmt_ns(mean),
            fmt_ns(max)
        );
        if let Some(t) = throughput {
            let (volume, unit) = match t {
                Throughput::Elements(n) => (n as f64, "elem/s"),
                Throughput::Bytes(n) => (n as f64, "B/s"),
            };
            let per_sec = volume / (mean / 1e9);
            line.push_str(&format!("  thrpt: {} {unit}", fmt_count(per_sec)));
        }
        eprintln!("{line}");
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

fn fmt_count(v: f64) -> String {
    if v >= 1e9 {
        format!("{:.2}G", v / 1e9)
    } else if v >= 1e6 {
        format!("{:.2}M", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.2}K", v / 1e3)
    } else {
        format!("{v:.1}")
    }
}

/// Declares a benchmark group function that runs each target.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running each benchmark group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_group_smoke() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        group.throughput(Throughput::Elements(10));
        group.bench_function("sum", |b| b.iter(|| (0..10u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("sum-to", 100u64), &100u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }
}
