//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to a crate registry, so this
//! workspace vendors the *subset* of the `rand` API it actually uses:
//! a seedable deterministic generator (`rngs::StdRng`), uniform range
//! sampling (`RngExt::random_range`), Bernoulli draws
//! (`RngExt::random_bool`), unit-interval floats (`RngExt::random`),
//! and Fisher–Yates shuffling (`seq::SliceRandom::shuffle`).
//!
//! The generator is xoshiro256** seeded through splitmix64 — the same
//! construction real `StdRng` implementations have used — so workload
//! streams are deterministic per seed and well-mixed, though the exact
//! streams differ from any upstream `rand` version.

/// A source of 64-bit random words.
pub trait RngCore {
    /// Returns the next word of the stream.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256** — deterministic, fast, and statistically strong
    /// enough for synthetic workload generation.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Types drawable uniformly from their "natural" distribution by
/// [`RngExt::random`].
pub trait Random {
    /// Draws one value.
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Random for u64 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Random for i64 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Random for bool {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Random for f64 {
    /// Uniform on `[0, 1)` with 53 bits of precision.
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Types uniformly samplable from a range. Dispatching on the
/// *element* type (not the range type) lets integer literals in
/// `rng.random_range(5..30)` infer their width from the call context.
pub trait SampleUniform: Copy {
    /// Draws one value from `[lo, hi]` expressed as `RangeBounds`
    /// bounds. Panics on an empty or unbounded-below/above range.
    fn sample_bounds<R: RngCore + ?Sized>(
        lo: core::ops::Bound<&Self>,
        hi: core::ops::Bound<&Self>,
        rng: &mut R,
    ) -> Self;
}

/// Uniform draw from `[0, span)` by multiply-shift (Lemire reduction,
/// without the rejection loop — bias is < 2⁻⁶⁴·span, irrelevant here).
fn below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_bounds<R: RngCore + ?Sized>(
                lo: core::ops::Bound<&Self>,
                hi: core::ops::Bound<&Self>,
                rng: &mut R,
            ) -> Self {
                use core::ops::Bound;
                let lo = match lo {
                    Bound::Included(&x) => x as i128,
                    Bound::Excluded(&x) => x as i128 + 1,
                    Bound::Unbounded => <$t>::MIN as i128,
                };
                let hi = match hi {
                    Bound::Included(&x) => x as i128,
                    Bound::Excluded(&x) => x as i128 - 1,
                    Bound::Unbounded => <$t>::MAX as i128,
                };
                assert!(lo <= hi, "empty range in random_range");
                let span = (hi - lo + 1) as u64;
                if span == 0 {
                    // Full-width range: every word is a valid sample.
                    return rng.next_u64() as $t;
                }
                (lo + below(rng, span) as i128) as $t
            }
        }
    )*};
}

int_sample_uniform!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl SampleUniform for f64 {
    fn sample_bounds<R: RngCore + ?Sized>(
        lo: core::ops::Bound<&Self>,
        hi: core::ops::Bound<&Self>,
        rng: &mut R,
    ) -> Self {
        use core::ops::Bound;
        let lo = match lo {
            Bound::Included(&x) | Bound::Excluded(&x) => x,
            Bound::Unbounded => panic!("random_range needs a bounded float range"),
        };
        let hi = match hi {
            Bound::Included(&x) | Bound::Excluded(&x) => x,
            Bound::Unbounded => panic!("random_range needs a bounded float range"),
        };
        assert!(lo < hi, "empty range in random_range");
        lo + (hi - lo) * f64::random(rng)
    }
}

/// The convenience sampling surface (`rand`'s `Rng`, under the name
/// this workspace imports).
pub trait RngExt: RngCore {
    /// Uniform draw from `range`.
    fn random_range<T: SampleUniform>(&mut self, range: impl core::ops::RangeBounds<T>) -> T
    where
        Self: Sized,
    {
        T::sample_bounds(range.start_bound(), range.end_bound(), self)
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to [0, 1]).
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::random(self) < p
    }

    /// Draws a value from the type's natural distribution
    /// (unit-interval for `f64`, full width for integers).
    fn random<T: Random>(&mut self) -> T
    where
        Self: Sized,
    {
        T::random(self)
    }
}

impl<R: RngCore> RngExt for R {}

/// Sequence helpers.
pub mod seq {
    use super::RngCore;

    /// In-place uniform shuffling.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = super::below(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(
                a.random_range(0..1_000_000i64),
                b.random_range(0..1_000_000i64)
            );
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v = rng.random_range(-1..=1);
            assert!((-1i64..=1).contains(&v));
            let u = rng.random_range(3usize..12);
            assert!((3..12).contains(&u));
            let f = rng.random_range(0.95f64..1.05);
            assert!((0.95..1.05).contains(&f));
            let unit: f64 = rng.random();
            assert!((0.0..1.0).contains(&unit));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2200..2800).contains(&hits), "got {hits}");
    }
}
