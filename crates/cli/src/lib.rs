//! `ses-cli`: sequenced event set pattern matching from the command line.
//!
//! ```text
//! ses-cli run --query query.ses --data events.csv --stats
//! ses-cli explain --query query.ses --data events.csv --dot
//! ses-cli generate --workload chemo --out chemo.csv --scale 0.1
//! ses-cli stats --data events.csv --within 264
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod args;
mod commands;
mod serve;

pub use args::Args;
pub use commands::{dispatch, USAGE};
