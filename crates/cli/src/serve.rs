//! `ses-cli serve` and `ses-cli client` — the network front-end over
//! `ses-server` (see `docs/server.md` for the wire protocol).

use std::io::Write;
use std::path::PathBuf;

use ses_metrics::JsonValue;
use ses_server::{Client, OverflowPolicy, Server, ServerConfig};

use crate::args::Args;
use crate::commands::{io_err, load_store, parse_schema_spec, parse_tick};

/// `ses-cli serve`: start a match server and run until SIGINT/SIGTERM
/// or a client's `shutdown` verb.
pub(crate) fn cmd_serve(args: &Args, out: &mut dyn Write) -> Result<(), String> {
    let schema = match (args.get("schema"), args.get("data")) {
        (Some(spec), _) => parse_schema_spec(spec)?,
        (None, Some(path)) => load_store(path)?.relation().schema().clone(),
        (None, None) => {
            return Err(
                "serve: give --schema \"NAME:TYPE,...\" or --data to derive the schema".into(),
            )
        }
    };
    let mut config = ServerConfig::new(schema).from_env();
    config.tick = parse_tick(args)?;
    if let Some(addr) = args.get("listen") {
        config.addr = addr.to_string();
    }
    config.queue_capacity = args.get_parsed("queue", config.queue_capacity)?;
    config.outbound_capacity = args.get_parsed("outbound", config.outbound_capacity)?;
    if let Some(p) = args.get("policy") {
        config.policy = OverflowPolicy::parse(p)?;
    }
    config.checkpoint = args.get("checkpoint").map(PathBuf::from);
    config.event_log = args.get("event-log").map(PathBuf::from);
    config.checkpoint_every = args.get_parsed("checkpoint-every", config.checkpoint_every)?;
    config.keep = args.get_parsed("keep", config.keep)?;
    config.evict = !args.has_flag("no-evict");

    ses_server::signal::install();
    let mut server = Server::start(config)?;
    writeln!(out, "recovery: {}", server.recovery).map_err(io_err)?;
    // The address line is the startup handshake scripts wait for; flush
    // it before blocking in join(). Print the address the listener
    // actually bound, not the configured string.
    writeln!(out, "listening on {}", server.local_addr()).map_err(io_err)?;
    out.flush().map_err(io_err)?;
    server.join()?;
    writeln!(out, "server stopped").map_err(io_err)?;
    Ok(())
}

/// `ses-cli client`: one-shot protocol actions against a running server.
pub(crate) fn cmd_client(args: &Args, out: &mut dyn Write) -> Result<(), String> {
    let addr = args.require("connect")?;
    let action = args
        .positional
        .first()
        .map(String::as_str)
        .ok_or("client: give an action: ping | stats | sync | shutdown | ingest | subscribe")?;
    let mut client = Client::connect(addr)?;
    match action {
        "ping" => {
            let reply = client.ping()?;
            writeln!(out, "{}", JsonValue::Object(reply)).map_err(io_err)
        }
        "stats" => {
            let reply = client.stats()?;
            let stats = reply
                .get("stats")
                .cloned()
                .unwrap_or(JsonValue::Object(reply));
            writeln!(out, "{stats}").map_err(io_err)
        }
        "sync" => {
            let reply = client.sync()?;
            writeln!(out, "{}", JsonValue::Object(reply)).map_err(io_err)
        }
        "shutdown" => {
            let reply = client.shutdown()?;
            writeln!(out, "{}", JsonValue::Object(reply)).map_err(io_err)
        }
        "ingest" => {
            let store = load_store(args.require("data")?)?;
            let mut batch: Vec<(i64, Vec<JsonValue>)> = Vec::with_capacity(512);
            let mut sent = 0usize;
            for (_, e) in store.relation().iter() {
                batch.push((
                    e.ts().ticks(),
                    e.values()
                        .iter()
                        .map(ses_server::protocol::value_json)
                        .collect(),
                ));
                if batch.len() == 512 {
                    client.batch(&batch)?;
                    sent += batch.len();
                    batch.clear();
                }
            }
            if !batch.is_empty() {
                sent += batch.len();
                client.batch(&batch)?;
            }
            let ack = client.sync()?;
            writeln!(
                out,
                "sent {sent} event(s); accepted {} shed {} durable {} consumed {}",
                ack.get("accepted").and_then(JsonValue::as_u64).unwrap_or(0),
                ack.get("shed").and_then(JsonValue::as_u64).unwrap_or(0),
                ack.get("durable").and_then(JsonValue::as_u64).unwrap_or(0),
                ack.get("consumed").and_then(JsonValue::as_u64).unwrap_or(0),
            )
            .map_err(io_err)
        }
        "subscribe" => {
            let name = args.require("name")?;
            let query = args.get("query").unwrap_or("").to_string();
            let cursor: u64 = args.get_parsed("cursor", 0u64)?;
            let count: u64 = args.get_parsed("count", u64::MAX)?;
            let ack = client.subscribe(name, &query, cursor)?;
            writeln!(
                out,
                "subscribed `{name}` at seq {} ({} resend)",
                ack.get("seq").and_then(JsonValue::as_u64).unwrap_or(0),
                ack.get("resend").and_then(JsonValue::as_u64).unwrap_or(0),
            )
            .map_err(io_err)?;
            out.flush().map_err(io_err)?;
            let mut seen = 0u64;
            while seen < count {
                let Some(m) = client.next_match()? else {
                    break;
                };
                writeln!(
                    out,
                    "{} #{}: {}",
                    m.get("sub").and_then(JsonValue::as_str).unwrap_or("?"),
                    m.get("seq").and_then(JsonValue::as_u64).unwrap_or(0),
                    m.get("match").and_then(JsonValue::as_str).unwrap_or(""),
                )
                .map_err(io_err)?;
                out.flush().map_err(io_err)?;
                seen += 1;
            }
            Ok(())
        }
        other => Err(format!(
            "client: unknown action `{other}` (ping | stats | sync | shutdown | ingest | subscribe)"
        )),
    }
}
