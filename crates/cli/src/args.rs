//! Minimal command-line argument parsing (no third-party dependencies).

use std::collections::HashMap;

/// Parsed command line: a subcommand, `--key value` options, and `--flag`
/// switches.
#[derive(Debug, Clone, Default)]
pub struct Args {
    /// The subcommand (first positional argument).
    pub command: Option<String>,
    /// `--key value` options.
    pub options: HashMap<String, String>,
    /// Bare `--flag` switches.
    pub flags: Vec<String>,
    /// Positional arguments after the subcommand.
    pub positional: Vec<String>,
}

/// Option keys that take a value; everything else starting with `--` is a
/// switch.
const VALUED: &[&str] = &[
    "query",
    "data",
    "out",
    "tick",
    "semantics",
    "filter",
    "workload",
    "seed",
    "scale",
    "within",
    "schema",
    "limit",
    "selection",
    "format",
    "partition",
    "threads",
    "shards",
    "from-log",
    "patterns",
    "checkpoint",
    "checkpoint-every",
    "keep",
    "columnar",
    "batch",
    "listen",
    "event-log",
    "queue",
    "outbound",
    "policy",
    "connect",
    "cursor",
    "name",
    "count",
];

impl Args {
    /// Parses an argument vector (without the program name).
    pub fn parse<I, S>(argv: I) -> Result<Args, String>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut args = Args::default();
        let mut iter = argv.into_iter().map(Into::into).peekable();
        while let Some(arg) = iter.next() {
            if let Some(key) = arg.strip_prefix("--") {
                if VALUED.contains(&key) {
                    let Some(value) = iter.next() else {
                        return Err(format!("--{key} requires a value"));
                    };
                    if args.options.insert(key.to_string(), value).is_some() {
                        return Err(format!("--{key} given twice"));
                    }
                } else {
                    args.flags.push(key.to_string());
                }
            } else if args.command.is_none() {
                args.command = Some(arg);
            } else {
                args.positional.push(arg);
            }
        }
        Ok(args)
    }

    /// The value of `--key`, if given.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// The value of `--key`, or an error naming the requirement.
    pub fn require(&self, key: &str) -> Result<&str, String> {
        self.get(key).ok_or_else(|| format!("--{key} is required"))
    }

    /// `true` iff `--flag` was given.
    pub fn has_flag(&self, flag: &str) -> bool {
        self.flags.iter().any(|f| f == flag)
    }

    /// Parses `--key` as `T`, with a default when absent.
    pub fn get_parsed<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{key}: cannot parse `{v}`")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_subcommand_options_and_flags() {
        let a = Args::parse(["run", "--query", "q.ses", "--data", "d.csv", "--stats"]).unwrap();
        assert_eq!(a.command.as_deref(), Some("run"));
        assert_eq!(a.get("query"), Some("q.ses"));
        assert_eq!(a.get("data"), Some("d.csv"));
        assert!(a.has_flag("stats"));
        assert!(!a.has_flag("dot"));
    }

    #[test]
    fn missing_value_and_duplicates_error() {
        assert!(Args::parse(["run", "--query"]).is_err());
        assert!(Args::parse(["run", "--query", "a", "--query", "b"]).is_err());
    }

    #[test]
    fn require_and_parsed() {
        let a = Args::parse(["gen", "--seed", "7"]).unwrap();
        assert_eq!(a.require("seed").unwrap(), "7");
        assert!(a.require("out").is_err());
        assert_eq!(a.get_parsed("seed", 0u64).unwrap(), 7);
        assert_eq!(a.get_parsed("missing", 42u64).unwrap(), 42);
        let bad = Args::parse(["gen", "--seed", "x"]).unwrap();
        assert!(bad.get_parsed("seed", 0u64).is_err());
    }

    #[test]
    fn positional_arguments() {
        let a = Args::parse(["stats", "file1", "file2"]).unwrap();
        assert_eq!(a.positional, vec!["file1", "file2"]);
    }
}
