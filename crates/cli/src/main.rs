//! `ses-cli` entry point.

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let code = match ses_cli::Args::parse(argv) {
        Ok(args) => {
            let mut out = std::io::stdout().lock();
            ses_cli::dispatch(&args, &mut out)
        }
        Err(msg) => {
            eprintln!("error: {msg}\n\n{}", ses_cli::USAGE);
            2
        }
    };
    std::process::exit(code);
}
