//! The `ses-cli` subcommands.
//!
//! Every command writes to a generic `Write` sink so tests can capture
//! output without spawning processes.

use std::io::Write;

use ses_core::{
    EventSelection, FilterMode, MatchSemantics, Matcher, MatcherOptions, MatcherSnapshot,
    MultiMatcher, PartitionMode, PartitionStrategy, Probe, ShardedStreamMatcher, StreamMatcher,
};
use ses_event::{Duration, Relation, Timestamp};
use ses_metrics::{CountingProbe, Stopwatch, Table};
use ses_query::TickUnit;
use ses_store::{CheckpointStore, EventLog, EventStore, LogConfig, MatchLog};

use crate::args::Args;

/// Top-level usage text.
pub const USAGE: &str = "\
ses-cli — sequenced event set pattern matching over CSV event relations

USAGE:
  ses-cli run      --query <file-or-text> --data <file.csv>
                   [--tick hour] [--semantics maximal|definition2|all]
                   [--filter paper|pervariable|off]
                   [--selection next-match|any-match] [--closure]
                   [--propagate] [--limit N] [--stats]
                   [--partition auto|time|ATTR|off] [--threads N]
                   [--columnar auto|on|off]
                   (--propagate runs the static analyzer first: derived
                    constants can rescue the §4.5 filter, see `check`.
                    --partition auto splits the scan per proven partition
                    key and matches partitions in parallel; an explicit
                    ATTR is refused unless the analyzer proves it.
                    --partition time also prefers a proven key but falls
                    back to τ-overlapping time slices when the pattern
                    proves none — sound for any windowed pattern.
                    --columnar controls the batch admission layer:
                    constant conditions are pre-evaluated into bitmask
                    lanes once per batch; auto engages it when the
                    pattern has constant conditions and the input is
                    large enough to amortize the pass)
  ses-cli stream   --query <file-or-text> (--data <file.csv> | --from-log <dir>)
                   [--no-evict] [--limit N] [--stats]
                   [--partition auto|ATTR|off] [--shards N]
                   [--columnar auto|on|off] [--batch N]
                   [--checkpoint <dir> [--checkpoint-every N] [--keep K]]
                   (replays the data as a stream: matches are finalized
                    eagerly at the watermark and old events are evicted
                    unless --no-evict. --partition hash-routes events by
                    the partition key to N independent shards.
                    --batch N replays in micro-batches of N events so
                    the columnar admission layer evaluates constant
                    conditions once per batch — matches are identical
                    to per-event pushes, emitted at batch boundaries.
                    --from-log replays a binary event log (see `import`);
                    with --checkpoint the matcher state is snapshotted
                    every N events (default 1000, keeping the last K
                    checkpoints) and matches are also appended to
                    <dir>/matches.log — `recover` resumes from there)
  ses-cli recover  --query <file-or-text> --from-log <dir> --checkpoint <dir>
                   [--checkpoint-every N] [--keep K] [--limit N] [--stats]
                   [--partition auto|ATTR|off] [--shards N]
                   (restores the newest valid checkpoint — skipping
                    corrupt ones — replays the event log from the
                    snapshot's watermark, and suppresses matches already
                    durably written to <dir>/matches.log, so emission is
                    exactly-once across a crash)
  ses-cli bank     --patterns <file-or-dir> (--data <file.csv> | --from-log <dir>)
                   [--share] [--no-index] [--no-evict] [--limit N] [--stats]
                   [--semantics …] [--selection …] [--filter …]
                   [--checkpoint <dir> [--checkpoint-every N] [--keep K]]
                   [--recover]
                   (runs many queries over one pass of the stream:
                    --patterns is a directory of query files or a single
                    `;`-separated multi-query file; each event is pushed
                    once and a predicate index built from the patterns'
                    constant conditions routes it only to the patterns it
                    could advance — the rest receive a watermark
                    heartbeat. --no-index pushes every event to every
                    pattern; output is identical either way. --share
                    deduplicates provably equivalent patterns and
                    evaluates shared sequencing prefixes once per routed
                    event (preview with `check --patterns`); matches are
                    unchanged. --checkpoint snapshots the whole bank
                    every N events when replaying --from-log, and
                    --recover resumes from the newest valid checkpoint
                    with exactly-once emission. --stats adds a
                    per-pattern routing table, see docs/patternbank.md)
  ses-cli check    (--query <file-or-text> | --patterns <file-or-dir>)
                   [--schema \"NAME:TYPE,...\"] [--data <file.csv>]
                   [--format human|json] [--tick hour]
                   (static analysis: unsatisfiable Θ [SES001], redundant
                    conditions [SES002], filter downgrades [SES003],
                    factorial/exponential bounds [SES004], schema
                    mismatches [SES005]; exits non-zero on errors.
                    The schema comes from --schema, a `-- schema: …`
                    pragma line in the query file, or --data.
                    --patterns lints a whole pattern set instead,
                    grouped by schema pragma: equivalent patterns
                    [SES006], subsumed patterns [SES007], and shared
                    sequencing prefixes [SES008] that `bank --share`
                    evaluates once — plus the sharing plan per group)
  ses-cli explain  --query <file-or-text> --data <file.csv> [--dot|--trace]
  ses-cli generate --workload chemo|finance|rfid|clickstream --out <file.csv>
                   [--seed N] [--scale F]
  ses-cli import   --data <file.csv> --out <log-dir>
  ses-cli stats    --data <file.csv> [--within N]
  ses-cli serve    (--schema \"NAME:TYPE,...\" | --data <file.csv>)
                   [--listen 127.0.0.1:0] [--tick hour]
                   [--queue N] [--outbound N] [--policy block|reject]
                   [--checkpoint <dir> [--event-log <dir>]
                    [--checkpoint-every N] [--keep K]] [--no-evict]
                   (long-running match server over line-delimited JSON:
                    clients ingest events and register standing
                    subscriptions; finalized matches stream back as they
                    expire out of the window. Queues are bounded —
                    --policy block applies backpressure to producers,
                    reject sheds with counters. With --checkpoint the
                    event log, subscription registry, and per-sub match
                    logs make delivery exactly-once across crashes;
                    SIGINT/SIGTERM drains and checkpoints before exit.
                    See docs/server.md for the protocol)
  ses-cli client   --connect HOST:PORT
                   (ping | stats | sync | shutdown
                    | ingest --data <file.csv>
                    | subscribe --name N [--query Q] [--cursor K] [--count M])
                   (protocol client: `ingest` streams a CSV in batches
                    and syncs; `subscribe` registers or re-attaches and
                    prints matches as they arrive — --cursor resumes a
                    durable subscription exactly-once after a crash)

`run`, `stream`, and `bank` accept --format json with --stats to emit
the statistics as one JSON object (same shape as the server's `stats`
verb) instead of human-readable tables.

--data accepts either a CSV file or a binary event-log directory
(created with `import`). --query accepts inline text, a single-query
file, or a `;`-separated multi-query file with optional `name:` prefixes
(evaluated together in one pass over the data).

The query language (THEN NOT x adds a gap constraint):
  PATTERN PERMUTE(c, p+, d) THEN b
  WHERE c.L = 'C' AND d.L = 'D' AND p.L = 'P' AND b.L = 'B'
    AND c.ID = p.ID AND c.ID = d.ID AND d.ID = b.ID
  WITHIN 264 HOURS
";

/// Runs one invocation; returns the process exit code.
pub fn dispatch(args: &Args, out: &mut dyn Write) -> i32 {
    let result = match args.command.as_deref() {
        Some("run") => cmd_run(args, out),
        Some("check") => cmd_check(args, out),
        Some("stream") => cmd_stream(args, out),
        Some("recover") => cmd_recover(args, out),
        Some("bank") => cmd_bank(args, out),
        Some("explain") => cmd_explain(args, out),
        Some("generate") => cmd_generate(args, out),
        Some("import") => cmd_import(args, out),
        Some("stats") => cmd_stats(args, out),
        Some("serve") => crate::serve::cmd_serve(args, out),
        Some("client") => crate::serve::cmd_client(args, out),
        Some("help") | None => {
            let _ = out.write_all(USAGE.as_bytes());
            Ok(())
        }
        Some(other) => Err(format!("unknown command `{other}`\n\n{USAGE}")),
    };
    match result {
        Ok(()) => 0,
        Err(msg) => {
            let _ = writeln!(out, "error: {msg}");
            1
        }
    }
}

/// Reads `--query` either as a file path (when it exists) or as inline
/// query text.
fn load_query(spec: &str) -> Result<String, String> {
    if std::path::Path::new(spec).exists() {
        std::fs::read_to_string(spec).map_err(|e| format!("cannot read `{spec}`: {e}"))
    } else {
        Ok(spec.to_string())
    }
}

pub(crate) fn parse_tick(args: &Args) -> Result<TickUnit, String> {
    Ok(match args.get("tick").unwrap_or("hour") {
        "second" | "seconds" => TickUnit::Second,
        "minute" | "minutes" => TickUnit::Minute,
        "hour" | "hours" => TickUnit::Hour,
        "day" | "days" => TickUnit::Day,
        "abstract" | "ticks" => TickUnit::Abstract,
        other => return Err(format!("--tick: unknown unit `{other}`")),
    })
}

fn parse_semantics(args: &Args) -> Result<MatchSemantics, String> {
    Ok(match args.get("semantics").unwrap_or("maximal") {
        "maximal" => MatchSemantics::Maximal,
        "definition2" | "def2" => MatchSemantics::Definition2,
        "all" | "allruns" => MatchSemantics::AllRuns,
        other => return Err(format!("--semantics: unknown mode `{other}`")),
    })
}

fn parse_selection(args: &Args) -> Result<EventSelection, String> {
    Ok(match args.get("selection").unwrap_or("next-match") {
        "next-match" | "stnm" => EventSelection::SkipTillNextMatch,
        "any-match" | "stam" => EventSelection::SkipTillAnyMatch,
        other => return Err(format!("--selection: unknown strategy `{other}`")),
    })
}

fn parse_filter(args: &Args) -> Result<FilterMode, String> {
    Ok(match args.get("filter").unwrap_or("paper") {
        "paper" => FilterMode::Paper,
        "pervariable" | "per-variable" => FilterMode::PerVariable,
        "off" | "none" => FilterMode::Off,
        other => return Err(format!("--filter: unknown mode `{other}`")),
    })
}

/// Parses `--columnar auto|on|off` (the batch-admission deployment knob).
fn parse_columnar(args: &Args) -> Result<ses_core::ColumnarMode, String> {
    Ok(match args.get("columnar").unwrap_or("auto") {
        "auto" => ses_core::ColumnarMode::Auto,
        "on" => ses_core::ColumnarMode::On,
        "off" => ses_core::ColumnarMode::Off,
        other => return Err(format!("--columnar: expected auto|on|off, got `{other}`")),
    })
}

/// Parses `--partition auto|time|ATTR|off` against the data's schema.
fn parse_partition(args: &Args, schema: &ses_event::Schema) -> Result<PartitionMode, String> {
    Ok(match args.get("partition") {
        None | Some("off") | Some("none") => PartitionMode::Off,
        Some("auto") => PartitionMode::Auto,
        Some("time") => PartitionMode::TimeAuto,
        Some(attr) => PartitionMode::Key(schema.attr_id(attr).ok_or_else(|| {
            format!("--partition: the data has no attribute named `{attr}` (try `auto`)")
        })?),
    })
}

fn matcher_options(args: &Args, schema: &ses_event::Schema) -> Result<MatcherOptions, String> {
    let threads = match args.get("threads") {
        None => None,
        Some(v) => Some(
            v.parse::<usize>()
                .ok()
                .filter(|&n| n > 0)
                .ok_or_else(|| format!("--threads: expected a positive integer, got `{v}`"))?,
        ),
    };
    Ok(MatcherOptions {
        filter: parse_filter(args)?,
        selection: parse_selection(args)?,
        semantics: parse_semantics(args)?,
        derive_equalities: args.has_flag("closure"),
        propagate_constants: args.has_flag("propagate"),
        partition: parse_partition(args, schema)?,
        threads,
        columnar: parse_columnar(args)?,
        ..MatcherOptions::default()
    })
}

/// Loads `--query` as one or more named patterns (`;`-separated file).
fn load_patterns(args: &Args) -> Result<Vec<(String, ses_pattern::Pattern)>, String> {
    let text = load_query(args.require("query")?)?;
    let items =
        ses_query::parse_pattern_file(&text, parse_tick(args)?).map_err(|e| e.to_string())?;
    Ok(items
        .into_iter()
        .enumerate()
        .map(|(i, (name, p))| (name.unwrap_or_else(|| format!("query-{}", i + 1)), p))
        .collect())
}

fn build_matcher(
    args: &Args,
    store: &EventStore,
) -> Result<(Matcher, ses_pattern::Pattern), String> {
    let (_, pattern) = load_patterns(args)?
        .into_iter()
        .next()
        .ok_or_else(|| "no query given".to_string())?;
    let schema = store.relation().schema();
    let matcher = Matcher::with_options(&pattern, schema, matcher_options(args, schema)?)
        .map_err(|e| e.to_string())?;
    Ok((matcher, pattern))
}

/// Loads `--data` from a CSV file or a binary event-log directory.
pub(crate) fn load_store(path: &str) -> Result<EventStore, String> {
    let p = std::path::Path::new(path);
    if p.is_dir() {
        let log = EventLog::open(p, LogConfig::default()).map_err(|e| e.to_string())?;
        let relation = log.scan().map_err(|e| e.to_string())?;
        let name = p
            .file_name()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| "log".into());
        Ok(EventStore::new(name, relation))
    } else {
        EventStore::load_csv(p).map_err(|e| e.to_string())
    }
}

fn cmd_import(args: &Args, out: &mut dyn Write) -> Result<(), String> {
    let store = EventStore::load_csv(args.require("data")?).map_err(|e| e.to_string())?;
    let dir = args.require("out")?;
    let mut log = EventLog::create(dir, store.relation().schema().clone(), LogConfig::default())
        .map_err(|e| e.to_string())?;
    for (_, e) in store.relation().iter() {
        log.append(e.ts(), e.values().to_vec())
            .map_err(|x| x.to_string())?;
    }
    log.sync().map_err(|e| e.to_string())?;
    writeln!(
        out,
        "imported {} events into {dir} ({} segment(s))",
        log.len(),
        log.segment_count()
    )
    .map_err(io_err)?;
    Ok(())
}

fn cmd_run(args: &Args, out: &mut dyn Write) -> Result<(), String> {
    let store = load_store(args.require("data")?)?;
    let patterns = load_patterns(args)?;
    if patterns.len() > 1 {
        return cmd_run_multi(args, out, &store, patterns);
    }
    let (matcher, pattern) = build_matcher(args, &store)?;
    let limit: usize = args.get_parsed("limit", usize::MAX)?;

    let sw = Stopwatch::start();
    let mut probe = CountingProbe::new();
    let matches = match matcher.partition_strategy() {
        // Drive the split paths directly so every worker gets its own
        // counting probe; merging them preserves the full report.
        PartitionStrategy::Key(key) => {
            let (matches, workers) = ses_core::parallel::find_partitioned_with(
                &matcher,
                store.relation(),
                key,
                matcher.options().threads,
                &mut probe,
                CountingProbe::new,
            );
            for w in &workers {
                probe.merge(w);
            }
            matches
        }
        PartitionStrategy::TimeSliced => {
            let (matches, workers) = ses_core::parallel::find_time_sliced_with(
                &matcher,
                store.relation(),
                matcher.options().threads,
                &mut probe,
                CountingProbe::new,
            );
            for w in &workers {
                probe.merge(w);
            }
            matches
        }
        PartitionStrategy::Global => matcher.find_with_probe(store.relation(), &mut probe),
    };
    let elapsed = sw.elapsed_secs();

    for (i, m) in matches.iter().take(limit).enumerate() {
        writeln!(out, "match {}: {}", i + 1, m.display_with(&pattern)).map_err(io_err)?;
        for &(var, ev) in m.bindings() {
            writeln!(
                out,
                "  {}/{} = {}",
                pattern.var_name(var),
                ev,
                store.relation().event(ev)
            )
            .map_err(io_err)?;
        }
    }
    if matches.len() > limit {
        writeln!(
            out,
            "… {} more matches (raise --limit)",
            matches.len() - limit
        )
        .map_err(io_err)?;
    }
    writeln!(out, "{} match(es) in {:.3}s", matches.len(), elapsed).map_err(io_err)?;

    if args.has_flag("stats") {
        let mut t = Table::new(["metric", "value"]);
        t.row(["events read", &probe.events_read.to_string()]);
        t.row(["events filtered", &probe.events_filtered.to_string()]);
        t.row(["instances spawned", &probe.instances_spawned.to_string()]);
        t.row(["instances branched", &probe.instances_branched.to_string()]);
        t.row([
            "transitions evaluated",
            &probe.transitions_evaluated.to_string(),
        ]);
        t.row(["max |Ω|", &probe.omega_max.to_string()]);
        t.row(["raw matches", &probe.matches_emitted.to_string()]);
        t.row(["filter requested", filter_mode_name(probe.filter_requested)]);
        t.row(["filter effective", filter_mode_name(probe.filter_effective)]);
        let lanes = ses_pattern::AdmissionLanes::of(matcher.automaton().pattern());
        let mode = matcher.options().columnar;
        t.row(["columnar mode", columnar_mode_name(mode)]);
        t.row(["columnar lanes", &lanes.lanes().len().to_string()]);
        t.row([
            "columnar active",
            if mode.active(lanes.lanes().len(), store.relation().len()) {
                "yes"
            } else {
                "no"
            },
        ]);
        if probe.filter_downgraded() {
            t.row(["filter downgraded", "yes (SES003: run `ses-cli check`)"]);
        }
        match matcher.partition_strategy() {
            PartitionStrategy::Key(key) => {
                t.row(["partitioned by", store.relation().schema().attr_name(key)]);
                t.row(["partitions", &probe.partition_count().to_string()]);
                t.row([
                    "largest partition",
                    &probe
                        .partition_events
                        .iter()
                        .max()
                        .copied()
                        .unwrap_or(0)
                        .to_string(),
                ]);
                t.row(["key skew", &format!("{:.2}", probe.partition_skew())]);
            }
            PartitionStrategy::TimeSliced => {
                t.row(["partitioned by", "time (no provable key)"]);
                t.row(["time slices", &probe.slice_count().to_string()]);
                t.row([
                    "largest slice",
                    &probe
                        .slice_events
                        .iter()
                        .max()
                        .copied()
                        .unwrap_or(0)
                        .to_string(),
                ]);
                t.row([
                    "overlap events rescanned",
                    &probe
                        .slice_overlap_events(store.relation().len())
                        .to_string(),
                ]);
            }
            PartitionStrategy::Global
                if matches!(args.get("partition"), Some("auto") | Some("time")) =>
            {
                t.row(["partitioned by", "- (no provable key; ran global)"]);
            }
            PartitionStrategy::Global => {}
        }
        emit_stats_tables(args, out, &[("stats", &t)])?;
    }
    Ok(())
}

/// Parses a `--schema` spec like `ID:int,L:str,V:float` into a schema.
pub(crate) fn parse_schema_spec(spec: &str) -> Result<ses_event::Schema, String> {
    let mut b = ses_event::Schema::builder();
    for part in spec.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let (name, ty) = part
            .split_once(':')
            .ok_or_else(|| format!("schema: expected NAME:TYPE, got `{part}`"))?;
        let ty = match ty.trim().to_ascii_lowercase().as_str() {
            "int" => ses_event::AttrType::Int,
            "float" => ses_event::AttrType::Float,
            "str" | "string" => ses_event::AttrType::Str,
            "bool" => ses_event::AttrType::Bool,
            other => return Err(format!("schema: unknown type `{other}`")),
        };
        b = b.attr(name.trim(), ty);
    }
    b.build().map_err(|e| e.to_string())
}

/// Splits query text into (sanitized text, schema pragma): lines starting
/// with `--` are comments for `check`; a `-- schema: NAME:TYPE,…` line
/// declares the schema to analyze against. Comment lines are blanked in
/// place so source positions survive.
fn strip_pragmas(raw: &str) -> (String, Option<String>) {
    let mut pragma = None;
    let lines: Vec<String> = raw
        .lines()
        .map(|line| {
            let trimmed = line.trim_start();
            if let Some(comment) = trimmed.strip_prefix("--") {
                if let Some(spec) = comment.trim_start().strip_prefix("schema:") {
                    pragma = Some(spec.trim().to_string());
                }
                " ".repeat(line.chars().count())
            } else {
                line.to_string()
            }
        })
        .collect();
    (lines.join("\n"), pragma)
}

/// Runs the static analyzer over every query in `--query` and renders the
/// diagnostics (human one-per-line or `--format json`). Exits non-zero
/// when any error-severity diagnostic (SES001 unsatisfiable, SES005
/// schema mismatch) is found.
fn cmd_check(args: &Args, out: &mut dyn Write) -> Result<(), String> {
    if args.get("patterns").is_some() {
        return cmd_check_bank(args, out);
    }
    let raw = load_query(args.require("query")?)?;
    let (text, pragma) = strip_pragmas(&raw);

    let schema = if let Some(spec) = args.get("schema") {
        parse_schema_spec(spec)?
    } else if let Some(spec) = &pragma {
        parse_schema_spec(spec)?
    } else if let Some(data) = args.get("data") {
        load_store(data)?.relation().schema().clone()
    } else {
        return Err(
            "no schema to check against: give --schema, a `-- schema: …` pragma line, or --data"
                .to_string(),
        );
    };

    let json = match args.get("format").unwrap_or("human") {
        "human" | "text" => false,
        "json" => true,
        other => return Err(format!("--format: unknown format `{other}`")),
    };

    let tick = parse_tick(args)?;
    let items = ses_query::parse_file(&text).map_err(|e| e.to_string())?;
    if items.is_empty() {
        return Err("no queries found in --query".to_string());
    }

    let mut errors = 0usize;
    let mut warnings = 0usize;
    let mut json_out = String::from("[");
    for (i, (name, ast)) in items.iter().enumerate() {
        let name = name.clone().unwrap_or_else(|| format!("query-{}", i + 1));
        let pattern = ses_query::analyze(ast, tick).map_err(|e| format!("{name}: {e}"))?;
        let spans = ses_query::condition_spans(ast);
        let analysis = ses_pattern::analyze(&pattern, &schema);
        // Proven partition keys: attributes whose equality graph connects
        // every variable, so `run --partition auto` can parallelize.
        let partition_keys: Vec<String> = pattern
            .compile(&schema)
            .map(|c| {
                c.partition_keys()
                    .iter()
                    .map(|&a| schema.attr_name(a).to_string())
                    .collect()
            })
            .unwrap_or_default();

        // Thread query-source spans onto condition-level diagnostics.
        let mut diags = ses_pattern::Diagnostics::new();
        for mut d in analysis.diagnostics {
            if let Some(ci) = d.condition {
                if let Some(pos) = spans.get(ci) {
                    d = d.with_span(ses_pattern::Span {
                        line: pos.line,
                        col: pos.col,
                    });
                }
            }
            diags.push(d);
        }
        errors += diags
            .iter()
            .filter(|d| d.severity == ses_pattern::Severity::Error)
            .count();
        warnings += diags
            .iter()
            .filter(|d| d.severity == ses_pattern::Severity::Warning)
            .count();

        if json {
            if i > 0 {
                json_out.push(',');
            }
            json_out.push_str("{\"query\":\"");
            json_out.push_str(&name.replace('\\', "\\\\").replace('"', "\\\""));
            json_out.push_str("\",\"satisfiable\":");
            json_out.push_str(if analysis.satisfiable {
                "true"
            } else {
                "false"
            });
            json_out.push_str(",\"partition_keys\":[");
            for (j, k) in partition_keys.iter().enumerate() {
                if j > 0 {
                    json_out.push(',');
                }
                json_out.push('"');
                json_out.push_str(&k.replace('\\', "\\\\").replace('"', "\\\""));
                json_out.push('"');
            }
            json_out.push(']');
            json_out.push_str(",\"diagnostics\":");
            json_out.push_str(&diags.to_json());
            json_out.push('}');
        } else {
            if diags.is_empty() {
                writeln!(out, "{name}: ok").map_err(io_err)?;
            } else {
                writeln!(out, "{name}:").map_err(io_err)?;
                for d in diags.iter() {
                    writeln!(out, "  {d}").map_err(io_err)?;
                }
            }
            if !partition_keys.is_empty() {
                writeln!(
                    out,
                    "  note: partitionable by {} (run --partition auto)",
                    partition_keys.join(", ")
                )
                .map_err(io_err)?;
            }
        }
    }

    if json {
        json_out.push(']');
        writeln!(out, "{json_out}").map_err(io_err)?;
    } else {
        writeln!(
            out,
            "{} quer(ies) checked: {errors} error(s), {warnings} warning(s)",
            items.len()
        )
        .map_err(io_err)?;
    }
    if errors > 0 {
        return Err(format!("{errors} error-severity diagnostic(s)"));
    }
    Ok(())
}

/// Bank lint: analyzes a *set* of patterns (`--patterns <dir|file>`)
/// for cross-pattern redundancy, grouped by schema — the `-- schema: …`
/// pragma in each file, falling back to `--schema`/`--data`. On top of
/// the per-pattern SES001–SES005 findings it reports:
///
/// - `SES006` — a later pattern provably equivalent to an earlier one;
/// - `SES007` — a pattern subsumed by a more general one;
/// - `SES008` — membership in a shared-prefix group `bank --share`
///   evaluates once per routed event.
///
/// SES006–008 are warnings/info: the command still exits 0 unless an
/// error-severity diagnostic (SES001/SES005) is present.
fn cmd_check_bank(args: &Args, out: &mut dyn Write) -> Result<(), String> {
    use ses_pattern::{Diagnostic, DiagnosticCode, PatternRelation, ShareConstraint, SharingPlan};

    let spec = args.require("patterns")?;
    let tick = parse_tick(args)?;
    let json = match args.get("format").unwrap_or("human") {
        "human" | "text" => false,
        "json" => true,
        other => return Err(format!("--format: unknown format `{other}`")),
    };

    // Fallback schema for source files without a pragma line.
    let fallback: Option<(String, ses_event::Schema)> = if let Some(s) = args.get("schema") {
        Some((s.to_string(), parse_schema_spec(s)?))
    } else if let Some(data) = args.get("data") {
        Some((
            format!("--data {data}"),
            load_store(data)?.relation().schema().clone(),
        ))
    } else {
        None
    };

    struct Lint {
        name: String,
        pattern: ses_pattern::Pattern,
        schema_key: String,
        satisfiable: bool,
        diags: ses_pattern::Diagnostics,
    }
    let mut lints: Vec<Lint> = Vec::new();
    for (stem, raw) in load_pattern_sources(spec)? {
        let (_, pragma) = strip_pragmas(&raw);
        let (schema_key, schema) = match (&pragma, &fallback) {
            (Some(p), _) => (p.clone(), parse_schema_spec(p)?),
            (None, Some((k, s))) => (k.clone(), s.clone()),
            (None, None) => {
                return Err(format!(
                    "`{stem}` declares no `-- schema: …` pragma; give --schema or --data \
                     as a fallback"
                ))
            }
        };
        let items =
            ses_query::parse_pattern_file(&raw, tick).map_err(|e| format!("{stem}: {e}"))?;
        let solo = items.len() == 1;
        for (i, (name, pattern)) in items.into_iter().enumerate() {
            let name = name.unwrap_or_else(|| default_pattern_name(&stem, i, solo));
            let analysis = ses_pattern::analyze(&pattern, &schema);
            lints.push(Lint {
                name,
                pattern,
                schema_key: schema_key.clone(),
                satisfiable: analysis.satisfiable,
                diags: analysis.diagnostics,
            });
        }
    }
    if lints.is_empty() {
        return Err("no queries found in --patterns".to_string());
    }

    // Cross-pattern pass, independently per schema group: patterns over
    // different schemas can never share an automaton, so relating them
    // would be meaningless.
    let mut groups: Vec<(String, Vec<usize>)> = Vec::new();
    for (i, l) in lints.iter().enumerate() {
        match groups.iter_mut().find(|(k, _)| *k == l.schema_key) {
            Some((_, members)) => members.push(i),
            None => groups.push((l.schema_key.clone(), vec![i])),
        }
    }

    let mut pending: Vec<(usize, Diagnostic)> = Vec::new();
    let mut plans: Vec<(String, usize, SharingPlan)> = Vec::new();
    for (key, members) in &groups {
        // SES006/SES007 from the conservative pairwise relation; each
        // pattern is flagged at most once per code to keep a bank of n
        // near-duplicates from drowning in O(n²) repeats.
        let mut equiv_flagged = std::collections::HashSet::new();
        let mut subsumed_flagged = std::collections::HashSet::new();
        for (ai, &a) in members.iter().enumerate() {
            for &b in &members[ai + 1..] {
                match ses_pattern::relate(&lints[a].pattern, &lints[b].pattern) {
                    PatternRelation::Equivalent => {
                        if equiv_flagged.insert(b) {
                            pending.push((
                                b,
                                Diagnostic::new(
                                    DiagnosticCode::EquivalentPatterns,
                                    format!(
                                        "provably equivalent to `{}` (up to variable renaming): \
                                         one of the two is redundant; `bank --share` deduplicates \
                                         them into one automaton",
                                        lints[a].name
                                    ),
                                ),
                            ));
                        }
                    }
                    PatternRelation::SubsumedBy => {
                        if subsumed_flagged.insert(a) {
                            pending.push((
                                a,
                                Diagnostic::new(
                                    DiagnosticCode::SubsumedPattern,
                                    format!(
                                        "subsumed by `{}`: every candidate match, restricted to \
                                         the shared variables, is already a candidate match of \
                                         the more general pattern",
                                        lints[b].name
                                    ),
                                ),
                            ));
                        }
                    }
                    PatternRelation::Subsumes => {
                        if subsumed_flagged.insert(b) {
                            pending.push((
                                b,
                                Diagnostic::new(
                                    DiagnosticCode::SubsumedPattern,
                                    format!(
                                        "subsumed by `{}`: every candidate match, restricted to \
                                         the shared variables, is already a candidate match of \
                                         the more general pattern",
                                        lints[a].name
                                    ),
                                ),
                            ));
                        }
                    }
                    PatternRelation::SharedPrefix { .. } | PatternRelation::Unrelated => {}
                }
            }
        }

        // SES008 from the sharing plan `bank --share` would execute
        // (declaration-order prefixes, τ included) rather than the looser
        // pairwise relation, so the lint reports exactly what sharing
        // would do.
        let group_patterns: Vec<&ses_pattern::Pattern> =
            members.iter().map(|&i| &lints[i].pattern).collect();
        let constraints: Vec<ShareConstraint> = members
            .iter()
            .map(|&i| ShareConstraint {
                compat: 0,
                allow_prefix: lints[i].satisfiable,
            })
            .collect();
        let plan = SharingPlan::compute(&group_patterns, &constraints);
        for g in &plan.prefix_groups {
            let first = lints[members[g.members[0]]].name.clone();
            for (pos, &m) in g.members.iter().enumerate() {
                if pos == 0 {
                    continue;
                }
                pending.push((
                    members[m],
                    Diagnostic::new(
                        DiagnosticCode::SharedPrefix,
                        format!(
                            "shares its first {} event set(s) ({} variable(s)) with `{first}`: \
                             `bank --share` evaluates the common prefix once per routed event \
                             ({} patterns in the group)",
                            g.sets,
                            g.vars,
                            g.members.len()
                        ),
                    ),
                ));
            }
        }
        plans.push((key.clone(), members.len(), plan));
    }
    for (idx, d) in pending {
        lints[idx].diags.push(d);
    }

    let errors: usize = lints
        .iter()
        .flat_map(|l| l.diags.iter())
        .filter(|d| d.severity == ses_pattern::Severity::Error)
        .count();
    let warnings: usize = lints
        .iter()
        .flat_map(|l| l.diags.iter())
        .filter(|d| d.severity == ses_pattern::Severity::Warning)
        .count();

    if json {
        let esc = |s: &str| s.replace('\\', "\\\\").replace('"', "\\\"");
        let mut j = String::from("{\"patterns\":[");
        for (i, l) in lints.iter().enumerate() {
            if i > 0 {
                j.push(',');
            }
            j.push_str("{\"query\":\"");
            j.push_str(&esc(&l.name));
            j.push_str("\",\"schema\":\"");
            j.push_str(&esc(&l.schema_key));
            j.push_str("\",\"satisfiable\":");
            j.push_str(if l.satisfiable { "true" } else { "false" });
            j.push_str(",\"diagnostics\":");
            j.push_str(&l.diags.to_json());
            j.push('}');
        }
        j.push_str("],\"groups\":[");
        for (i, (key, n, plan)) in plans.iter().enumerate() {
            if i > 0 {
                j.push(',');
            }
            j.push_str("{\"schema\":\"");
            j.push_str(&esc(key));
            j.push_str("\",\"patterns\":");
            j.push_str(&n.to_string());
            j.push_str(",\"plan\":\"");
            j.push_str(&esc(&plan.describe()));
            j.push_str("\"}");
        }
        j.push_str("]}");
        writeln!(out, "{j}").map_err(io_err)?;
    } else {
        for l in &lints {
            if l.diags.is_empty() {
                writeln!(out, "{}: ok", l.name).map_err(io_err)?;
            } else {
                writeln!(out, "{}:", l.name).map_err(io_err)?;
                for d in l.diags.iter() {
                    writeln!(out, "  {d}").map_err(io_err)?;
                }
            }
        }
        for (key, n, plan) in &plans {
            if *n > 1 {
                writeln!(out, "schema [{key}]: {n} pattern(s), {}", plan.describe())
                    .map_err(io_err)?;
            }
        }
        writeln!(
            out,
            "{} pattern(s) checked in {} schema group(s): {errors} error(s), {warnings} warning(s)",
            lints.len(),
            groups.len()
        )
        .map_err(io_err)?;
    }
    if errors > 0 {
        return Err(format!("{errors} error-severity diagnostic(s)"));
    }
    Ok(())
}

/// Either stream-matcher flavor behind one push/snapshot/finish surface,
/// so `stream` and `recover` share a single replay loop. Boxed: the
/// global matcher is much larger than the sharded handle.
enum AnyStream {
    Global(Box<StreamMatcher>),
    Sharded(ShardedStreamMatcher),
}

/// End-of-run counters captured *before* `finish` consumes the matcher.
enum StreamReport {
    Global {
        retained: usize,
        evicted: usize,
    },
    Sharded {
        key: ses_event::AttrId,
        sizes: Vec<usize>,
        peaks: Vec<usize>,
        retained: usize,
        evicted: usize,
    },
}

impl AnyStream {
    fn push_with_probe(
        &mut self,
        ts: Timestamp,
        values: Vec<ses_event::Value>,
        probe: &mut CountingProbe,
    ) -> Result<Vec<ses_core::Match>, String> {
        match self {
            AnyStream::Global(sm) => sm.push_with_probe(ts, values, probe),
            AnyStream::Sharded(sm) => sm.push_with_probe(ts, values, probe),
        }
        .map_err(|e| e.to_string())
    }

    fn snapshot(&mut self) -> MatcherSnapshot {
        match self {
            AnyStream::Global(sm) => MatcherSnapshot::Stream(sm.snapshot()),
            AnyStream::Sharded(sm) => MatcherSnapshot::Sharded(sm.snapshot()),
        }
    }

    /// Already-consumed events at the snapshot's replay timestamp — the
    /// prefix of the replay scan to skip.
    /// Pushes a micro-batch. The global matcher takes the columnar
    /// batch path; the sharded matcher routes per event (its shards
    /// each see only a subsequence, so batch admission would have to be
    /// re-split anyway).
    fn push_batch_with_probe(
        &mut self,
        events: Vec<ses_event::Event>,
        probe: &mut CountingProbe,
    ) -> Result<Vec<ses_core::Match>, String> {
        match self {
            AnyStream::Global(sm) => sm
                .push_batch_with_probe(events, probe)
                .map_err(|e| e.to_string()),
            AnyStream::Sharded(sm) => {
                let mut out = Vec::new();
                for e in events {
                    out.extend(
                        sm.push_with_probe(e.ts(), e.values().to_vec(), probe)
                            .map_err(|e| e.to_string())?,
                    );
                }
                Ok(out)
            }
        }
    }

    fn ties_at_watermark(&self) -> usize {
        match self {
            AnyStream::Global(sm) => sm.ties_at_watermark(),
            AnyStream::Sharded(sm) => sm.ties_at_watermark(),
        }
    }

    fn report(&self) -> StreamReport {
        match self {
            AnyStream::Global(sm) => StreamReport::Global {
                retained: sm.retained_events(),
                evicted: sm.evicted_events(),
            },
            AnyStream::Sharded(sm) => StreamReport::Sharded {
                key: sm.partition_key(),
                sizes: sm.shard_sizes(),
                peaks: sm.shard_peak_omega(),
                retained: sm.retained_events(),
                evicted: sm.evicted_events(),
            },
        }
    }

    fn finish(self) -> Vec<ses_core::Match> {
        match self {
            AnyStream::Global(sm) => sm.finish(),
            AnyStream::Sharded(sm) => sm.finish(),
        }
    }
}

/// The `--checkpoint` machinery shared by `stream` and `recover`: the
/// checkpoint store, the durable match sink, and the every-N-events
/// cadence. The sink is synced *before* each snapshot is saved, so its
/// line count is always ≥ the checkpoint's emitted high-water mark —
/// the invariant exactly-once suppression relies on.
struct Durability {
    store: CheckpointStore,
    sink: MatchLog,
    every: usize,
    since: usize,
}

impl Durability {
    /// Builds from `--checkpoint DIR [--checkpoint-every N] [--keep K]`;
    /// `None` when `--checkpoint` was not given.
    fn from_args(args: &Args) -> Result<Option<Durability>, String> {
        let Some(dir) = args.get("checkpoint") else {
            return Ok(None);
        };
        if args.get("from-log").is_none() {
            return Err(
                "--checkpoint requires --from-log (recovery replays the event log)".to_string(),
            );
        }
        let every: usize = args.get_parsed("checkpoint-every", 1000)?;
        if every == 0 {
            return Err("--checkpoint-every must be positive".to_string());
        }
        let keep: usize = args.get_parsed("keep", 3)?;
        if keep == 0 {
            return Err("--keep must be positive".to_string());
        }
        let store = CheckpointStore::open(dir, keep).map_err(|e| e.to_string())?;
        let sink = MatchLog::open(std::path::Path::new(dir).join("matches.log"))
            .map_err(|e| e.to_string())?;
        Ok(Some(Durability {
            store,
            sink,
            every,
            since: 0,
        }))
    }

    fn record(&mut self, line: &str) -> Result<(), String> {
        self.sink.append(line).map_err(|e| e.to_string())
    }

    /// Counts one pushed event; saves a checkpoint at the cadence.
    fn tick(&mut self, sm: &mut AnyStream, probe: &mut CountingProbe) -> Result<(), String> {
        self.since += 1;
        if self.since >= self.every {
            self.save_now(sm, probe)?;
        }
        Ok(())
    }

    /// Syncs the sink, then atomically saves a snapshot.
    fn save_now(&mut self, sm: &mut AnyStream, probe: &mut CountingProbe) -> Result<(), String> {
        self.save_snap(probe, sm.snapshot())
    }

    /// [`Durability::tick`] for a pattern bank.
    fn tick_bank(
        &mut self,
        bank: &mut ses_core::PatternBank,
        probe: &mut CountingProbe,
    ) -> Result<(), String> {
        self.since += 1;
        if self.since >= self.every {
            self.save_bank_now(bank, probe)?;
        }
        Ok(())
    }

    /// [`Durability::save_now`] for a pattern bank.
    fn save_bank_now(
        &mut self,
        bank: &mut ses_core::PatternBank,
        probe: &mut CountingProbe,
    ) -> Result<(), String> {
        self.save_snap(probe, MatcherSnapshot::Bank(bank.snapshot()))
    }

    fn save_snap(
        &mut self,
        probe: &mut CountingProbe,
        snap: MatcherSnapshot,
    ) -> Result<(), String> {
        self.since = 0;
        let sw = Stopwatch::start();
        self.sink.sync().map_err(|e| e.to_string())?;
        let info = self.store.save(&snap).map_err(|e| e.to_string())?;
        probe.checkpoint_saved(info.bytes, sw.elapsed().as_nanos() as u64);
        Ok(())
    }
}

/// The event source for `stream`: `--data` (CSV or log directory) or
/// `--from-log` (binary event log replay — the durable source
/// checkpointing requires).
fn load_stream_source(args: &Args) -> Result<Relation, String> {
    match (args.get("from-log"), args.get("data")) {
        (Some(_), Some(_)) => Err("give either --data or --from-log, not both".to_string()),
        (Some(dir), None) => {
            let log = EventLog::open(dir, LogConfig::default()).map_err(|e| e.to_string())?;
            log.scan().map_err(|e| e.to_string())
        }
        (None, Some(path)) => Ok(load_store(path)?.relation().clone()),
        (None, None) => Err("--data or --from-log is required".to_string()),
    }
}

/// Builds the stream matcher `stream`/`recover` cold-starts run:
/// sharded when `--partition` proves a key, global otherwise.
fn build_stream_matcher(
    args: &Args,
    out: &mut dyn Write,
    pattern: &ses_pattern::Pattern,
    schema: &ses_event::Schema,
    options: MatcherOptions,
    evict: bool,
) -> Result<AnyStream, String> {
    if options.partition != PartitionMode::Off {
        let shards: usize = args.get_parsed("shards", 4)?;
        if shards == 0 {
            return Err("--shards must be positive".to_string());
        }
        match ShardedStreamMatcher::with_options(pattern, schema, options.clone(), shards) {
            Ok(sm) => return Ok(AnyStream::Sharded(sm.with_eviction(evict))),
            // Auto/time degrade to a global stream when nothing is provable
            // (time slicing is batch-only); an explicit key the analyzer
            // rejects is a hard error.
            Err(e)
                if matches!(
                    options.partition,
                    PartitionMode::Auto | PartitionMode::TimeAuto
                ) =>
            {
                writeln!(out, "note: {e}; streaming globally").map_err(io_err)?;
            }
            Err(e) => return Err(e.to_string()),
        }
    }
    Ok(AnyStream::Global(Box::new(
        StreamMatcher::with_options(pattern, schema, options)
            .map_err(|e| e.to_string())?
            .with_eviction(evict),
    )))
}

/// Replays `--data` or `--from-log` through the streaming matcher:
/// matches print as the watermark finalizes them, `--stats` reports the
/// eviction counters that demonstrate bounded-memory operation, and
/// `--checkpoint` snapshots the matcher for `recover`.
fn cmd_stream(args: &Args, out: &mut dyn Write) -> Result<(), String> {
    let relation = load_stream_source(args)?;
    let (_, pattern) = load_patterns(args)?
        .into_iter()
        .next()
        .ok_or_else(|| "no query given".to_string())?;
    let evict = !args.has_flag("no-evict");
    let schema = relation.schema().clone();
    let options = matcher_options(args, &schema)?;
    let sm = build_stream_matcher(args, out, &pattern, &schema, options, evict)?;
    let mut dur = Durability::from_args(args)?;
    run_stream(
        args,
        out,
        &relation,
        &pattern,
        sm,
        evict,
        dur.as_mut(),
        0,
        0,
        0,
    )
}

/// Restores the newest valid checkpoint, replays the log suffix, and
/// suppresses matches already durably emitted — exactly-once output
/// across a crash. Without a valid checkpoint it cold-starts from the
/// beginning of the log (replay covers everything).
fn cmd_recover(args: &Args, out: &mut dyn Write) -> Result<(), String> {
    let log_dir = args.require("from-log")?;
    args.require("checkpoint")?;
    let (_, pattern) = load_patterns(args)?
        .into_iter()
        .next()
        .ok_or_else(|| "no query given".to_string())?;
    let log = EventLog::open(log_dir, LogConfig::default()).map_err(|e| e.to_string())?;
    let schema = log.schema().clone();
    let options = matcher_options(args, &schema)?;
    let evict = !args.has_flag("no-evict");
    let mut dur = Durability::from_args(args)?.expect("--checkpoint was required above");

    let loaded = dur.store.load_latest().map_err(|e| e.to_string())?;
    let (sm, replay, skip, emitted_at_ckpt) = match &loaded {
        Some(l) => {
            if l.skipped > 0 {
                writeln!(
                    out,
                    "note: skipped {} corrupt checkpoint(s); falling back to seq {}",
                    l.skipped, l.info.seq
                )
                .map_err(io_err)?;
            }
            let sm = match &l.snapshot {
                MatcherSnapshot::Stream(s) => AnyStream::Global(Box::new(
                    StreamMatcher::restore(&pattern, &schema, options, s)
                        .map_err(|e| e.to_string())?,
                )),
                MatcherSnapshot::Sharded(s) => AnyStream::Sharded(
                    ShardedStreamMatcher::restore(&pattern, &schema, options, s)
                        .map_err(|e| e.to_string())?,
                ),
                MatcherSnapshot::Bank(b) => {
                    let mut names: Vec<&str> =
                        b.patterns.iter().take(3).map(|p| p.name.as_str()).collect();
                    if b.patterns.len() > 3 {
                        names.push("…");
                    }
                    return Err(format!(
                        "checkpoint seq {} holds a pattern-bank snapshot ({} pattern(s): {}), \
                         not a single-query stream; resume it with \
                         `ses-cli bank --patterns … --from-log {log_dir} --checkpoint … --recover`",
                        l.info.seq,
                        b.patterns.len(),
                        names.join(", "),
                    ));
                }
            };
            let replay = match l.snapshot.replay_from() {
                Some(from) => log
                    .scan_range(from, Timestamp::MAX)
                    .map_err(|e| e.to_string())?,
                None => log.scan().map_err(|e| e.to_string())?,
            };
            // Events at the snapshot's last timestamp that were already
            // consumed reappear at the head of the range scan.
            let skip = sm.ties_at_watermark();
            (sm, replay, skip, l.snapshot.emitted())
        }
        None => {
            writeln!(
                out,
                "note: no valid checkpoint; cold-starting from the beginning of the log"
            )
            .map_err(io_err)?;
            let sm = build_stream_matcher(args, out, &pattern, &schema, options, evict)?;
            let replay = log.scan().map_err(|e| e.to_string())?;
            (sm, replay, 0, 0)
        }
    };

    // Deterministic replay re-emits the sink's post-checkpoint lines
    // first; suppressing exactly that many makes emission exactly-once.
    let suppress = dur.sink.lines().saturating_sub(emitted_at_ckpt);
    let start_total = dur.sink.lines() as usize;
    writeln!(
        out,
        "recovering: replaying {} event(s), suppressing {suppress} already-emitted match(es)",
        replay.len().saturating_sub(skip)
    )
    .map_err(io_err)?;
    run_stream(
        args,
        out,
        &replay,
        &pattern,
        sm,
        evict,
        Some(&mut dur),
        skip,
        suppress,
        start_total,
    )
}

/// Loads a `--patterns` spec as `(source name, text)` pairs: a directory
/// of query files read in file-name order, or a single multi-query file /
/// inline text. The source name seeds default pattern names so a
/// directory of anonymous single-query files stays legible.
fn load_pattern_sources(spec: &str) -> Result<Vec<(String, String)>, String> {
    let mut sources: Vec<(String, String)> = Vec::new();
    let path = std::path::Path::new(spec);
    if path.is_dir() {
        let mut files: Vec<std::path::PathBuf> = std::fs::read_dir(path)
            .map_err(|e| format!("cannot read `{spec}`: {e}"))?
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .filter(|p| p.is_file())
            .collect();
        files.sort();
        for f in &files {
            let stem = f
                .file_stem()
                .map(|s| s.to_string_lossy().into_owned())
                .unwrap_or_else(|| "query".into());
            let text = std::fs::read_to_string(f)
                .map_err(|e| format!("cannot read `{}`: {e}", f.display()))?;
            sources.push((stem, text));
        }
        if sources.is_empty() {
            return Err(format!("`{spec}` contains no query files"));
        }
    } else {
        sources.push(("query".into(), load_query(spec)?));
    }
    Ok(sources)
}

/// Default name for the `i`-th pattern of a source file that declared no
/// `name:` prefix.
fn default_pattern_name(stem: &str, i: usize, solo: bool) -> String {
    if solo {
        stem.to_string()
    } else {
        format!("{stem}-{}", i + 1)
    }
}

/// Loads `--patterns` as named patterns: a directory of query files
/// (each optionally `;`-separated with `name:` prefixes) read in
/// file-name order, or a single multi-query file / inline text.
fn load_bank_patterns(args: &Args) -> Result<Vec<(String, ses_pattern::Pattern)>, String> {
    let spec = args
        .get("patterns")
        .or_else(|| args.get("query"))
        .ok_or("--patterns is required (a query file or a directory of query files)".to_string())?;
    let tick = parse_tick(args)?;
    let mut patterns = Vec::new();
    for (stem, text) in load_pattern_sources(spec)? {
        let items =
            ses_query::parse_pattern_file(&text, tick).map_err(|e| format!("{stem}: {e}"))?;
        let solo = items.len() == 1;
        for (i, (name, p)) in items.into_iter().enumerate() {
            let name = name.unwrap_or_else(|| default_pattern_name(&stem, i, solo));
            patterns.push((name, p));
        }
    }
    Ok(patterns)
}

fn index_class_name(class: ses_pattern::IndexClass) -> &'static str {
    match class {
        ses_pattern::IndexClass::Every => "every",
        ses_pattern::IndexClass::Never => "never",
        ses_pattern::IndexClass::Indexed => "indexed",
        ses_pattern::IndexClass::Scanned => "scanned",
    }
}

/// Evaluates many queries in one streaming pass over the data: each
/// event is pushed once and the predicate index routes it only to the
/// patterns it could advance (see `docs/patternbank.md`). `--share`
/// additionally deduplicates equivalent patterns and evaluates shared
/// sequencing prefixes once (run `check --patterns` to preview the
/// plan). With `--from-log` + `--checkpoint` the bank state is
/// snapshotted at the configured cadence, and `--recover` resumes from
/// the newest valid checkpoint with exactly-once emission.
fn cmd_bank(args: &Args, out: &mut dyn Write) -> Result<(), String> {
    let relation = load_stream_source(args)?;
    let patterns = load_bank_patterns(args)?;
    let schema = relation.schema().clone();
    let options = MatcherOptions {
        // The bank runs one stream matcher per pattern; sharding is the
        // single-query `stream` path's concern.
        partition: PartitionMode::Off,
        ..matcher_options(args, &schema)?
    };
    let evict = !args.has_flag("no-evict");
    let mut dur = Durability::from_args(args)?;

    let build_fresh = || -> Result<ses_core::PatternBank, String> {
        let mut builder = ses_core::PatternBank::builder(&schema)
            .with_eviction(evict)
            .with_index(!args.has_flag("no-index"))
            .with_sharing(args.has_flag("share"));
        for (name, p) in &patterns {
            builder = builder
                .register(name.clone(), p, options.clone())
                .map_err(|e| format!("{name}: {e}"))?;
        }
        Ok(builder.build())
    };

    // `--recover`: restore the newest valid bank checkpoint and replay
    // the log suffix, suppressing matches already durably emitted —
    // the bank counterpart of `ses-cli recover`.
    let (mut bank, skip, mut suppress, start_total) = if args.has_flag("recover") {
        let Some(d) = dur.as_mut() else {
            return Err("--recover requires --checkpoint and --from-log".to_string());
        };
        match d.store.load_latest().map_err(|e| e.to_string())? {
            Some(l) => {
                if l.skipped > 0 {
                    writeln!(
                        out,
                        "note: skipped {} corrupt checkpoint(s); falling back to seq {}",
                        l.skipped, l.info.seq
                    )
                    .map_err(io_err)?;
                }
                let snap = match &l.snapshot {
                    MatcherSnapshot::Bank(b) => b,
                    other => {
                        let kind = match other {
                            MatcherSnapshot::Stream(_) => "single-query stream",
                            MatcherSnapshot::Sharded(_) => "sharded stream",
                            MatcherSnapshot::Bank(_) => unreachable!(),
                        };
                        return Err(format!(
                            "checkpoint seq {} holds a {kind} snapshot, not a pattern bank; \
                             resume it with `ses-cli recover`",
                            l.info.seq
                        ));
                    }
                };
                let specs: Vec<(String, ses_pattern::Pattern, MatcherOptions)> = patterns
                    .iter()
                    .map(|(n, p)| (n.clone(), p.clone(), options.clone()))
                    .collect();
                let bank = ses_core::PatternBank::restore(&specs, &schema, snap)
                    .map_err(|e| e.to_string())?;
                // The bank consumes the log in one total order, so the
                // replay point is simply the consumed-event count.
                let skip = bank.consumed_events();
                let suppress = d.sink.lines().saturating_sub(l.snapshot.emitted());
                let start_total = d.sink.lines() as usize;
                writeln!(
                    out,
                    "recovering: replaying {} event(s), suppressing {suppress} \
                     already-emitted match(es)",
                    relation.len().saturating_sub(skip)
                )
                .map_err(io_err)?;
                (bank, skip, suppress, start_total)
            }
            None => {
                writeln!(
                    out,
                    "note: no valid checkpoint; cold-starting from the beginning of the log"
                )
                .map_err(io_err)?;
                (build_fresh()?, 0, 0, 0)
            }
        }
    } else {
        (build_fresh()?, 0, 0, 0)
    };

    let index_on = bank.index_enabled();
    let sharing = bank.sharing_active();
    let plan_summary = bank.sharing_plan().describe();
    let limit: usize = args.get_parsed("limit", usize::MAX)?;
    let sw = Stopwatch::start();
    let mut probe = CountingProbe::new();
    let mut total = start_total;

    let mut emit = |name: &str,
                    pattern: &ses_pattern::Pattern,
                    m: &ses_core::Match,
                    at: &str,
                    total: &mut usize,
                    dur: &mut Option<Durability>,
                    out: &mut dyn Write|
     -> Result<(), String> {
        if suppress > 0 {
            suppress -= 1;
            return Ok(());
        }
        *total += 1;
        let line = format!("{name}: {}", m.display_with(pattern));
        if let Some(d) = dur.as_mut() {
            d.record(&line)?;
        }
        if *total - start_total <= limit {
            writeln!(out, "[{at}] {line}").map_err(io_err)?;
        }
        Ok(())
    };

    ses_server::signal::install();
    let mut interrupted = false;
    for (_, e) in relation.iter().skip(skip) {
        if ses_server::signal::requested() {
            interrupted = true;
            break;
        }
        let emitted = bank
            .push_with_probe(e.ts(), e.values().to_vec(), &mut probe)
            .map_err(|x| x.to_string())?;
        let at = format!("t={}", e.ts());
        for (i, m) in emitted {
            let (name, pattern) = &patterns[i];
            emit(name, pattern, &m, &at, &mut total, &mut dur, out)?;
        }
        if let Some(d) = dur.as_mut() {
            d.tick_bank(&mut bank, &mut probe)?;
        }
    }
    // Final checkpoint before `finish` consumes the bank: a crash
    // during/after the flush replays only the flush itself.
    if let Some(d) = dur.as_mut() {
        d.save_bank_now(&mut bank, &mut probe)?;
    }
    if interrupted {
        // Graceful interrupt: checkpoint taken, sink synced, no
        // premature `finish` flush (see run_stream).
        if let Some(d) = dur.as_mut() {
            d.sink.sync().map_err(|e| e.to_string())?;
        }
        writeln!(
            out,
            "interrupted after {total} match(es); state checkpointed — resume with \
             `ses-cli bank --recover`"
        )
        .map_err(io_err)?;
        return Ok(());
    }
    // `finish` consumes the bank; take the report first and fold the
    // flush's matches into the per-pattern emission counts by hand.
    let stats = bank.stats();
    let consumed = bank.consumed_events();
    let mut emitted_by: Vec<usize> = stats.iter().map(|s| s.emitted).collect();
    for (i, m) in bank.finish() {
        let (name, pattern) = &patterns[i];
        emitted_by[i] += 1;
        emit(name, pattern, &m, "finish", &mut total, &mut dur, out)?;
    }
    if let Some(d) = dur.as_mut() {
        d.sink.sync().map_err(|e| e.to_string())?;
    }
    let elapsed = sw.elapsed_secs();
    let printed = total - start_total;
    if printed > limit {
        writeln!(out, "… {} more matches (raise --limit)", printed - limit).map_err(io_err)?;
    }
    writeln!(
        out,
        "{total} match(es) from {} pattern(s) over {consumed} event(s) in {elapsed:.3}s \
         (index {}, sharing {})",
        patterns.len(),
        if index_on { "on" } else { "off" },
        if sharing { "on" } else { "off" }
    )
    .map_err(io_err)?;

    if args.has_flag("stats") {
        let mut t = Table::new([
            "pattern",
            "class",
            "hits",
            "skips",
            "matches",
            "peak |Ω|",
            "retained",
            "evicted",
        ]);
        for (s, emitted) in stats.iter().zip(&emitted_by) {
            t.row([
                s.name.clone(),
                index_class_name(s.class).to_string(),
                s.hits.to_string(),
                s.skips.to_string(),
                emitted.to_string(),
                s.peak_omega.to_string(),
                s.retained_events.to_string(),
                s.evicted_events.to_string(),
            ]);
        }
        let mut totals = Table::new(["metric", "value"]);
        totals.row(["index", if index_on { "on" } else { "off" }]);
        totals.row(["sharing", if sharing { "on" } else { "off" }]);
        if sharing {
            totals.row(["sharing plan", &plan_summary]);
        }
        totals.row(["routed pushes", &probe.index_hits.to_string()]);
        totals.row(["skipped (heartbeat)", &probe.index_skips.to_string()]);
        totals.row([
            "pushes without index".to_string(),
            (consumed * patterns.len()).to_string(),
        ]);
        if probe.checkpoints > 0 {
            totals.row(["checkpoints saved", &probe.checkpoints.to_string()]);
            totals.row(["checkpoint bytes", &probe.checkpoint_bytes.to_string()]);
        }
        emit_stats_tables(args, out, &[("patterns", &t), ("totals", &totals)])?;
    }
    Ok(())
}

/// The shared push loop: replays `relation` (skipping the first `skip`
/// already-consumed events), suppresses the first `suppress` emissions,
/// records new matches in the durable sink, and checkpoints at the
/// configured cadence. `start_total` continues the match numbering of a
/// run being recovered.
#[allow(clippy::too_many_arguments)]
fn run_stream(
    args: &Args,
    out: &mut dyn Write,
    relation: &Relation,
    pattern: &ses_pattern::Pattern,
    mut sm: AnyStream,
    evict: bool,
    mut dur: Option<&mut Durability>,
    skip: usize,
    mut suppress: u64,
    start_total: usize,
) -> Result<(), String> {
    let limit: usize = args.get_parsed("limit", usize::MAX)?;
    // Graceful shutdown: SIGINT/SIGTERM breaks out of the replay loop
    // below; the normal tail then takes the final checkpoint and syncs
    // the sink, so an interrupted stream resumes exactly-once.
    ses_server::signal::install();
    let mut interrupted = false;
    let sw = Stopwatch::start();
    let mut probe = CountingProbe::new();
    let mut total = start_total;

    let emit = |m: &ses_core::Match,
                at: &str,
                total: &mut usize,
                suppress: &mut u64,
                dur: &mut Option<&mut Durability>,
                out: &mut dyn Write|
     -> Result<(), String> {
        if *suppress > 0 {
            *suppress -= 1;
            return Ok(());
        }
        *total += 1;
        let line = m.display_with(pattern).to_string();
        if let Some(d) = dur.as_deref_mut() {
            d.record(&line)?;
        }
        if *total - start_total <= limit {
            writeln!(out, "[{at}] match {total}: {line}").map_err(io_err)?;
        }
        Ok(())
    };

    let batch: usize = args.get_parsed("batch", 1usize)?;
    if batch == 0 {
        return Err("--batch: expected a positive micro-batch size".into());
    }
    if batch > 1 {
        // Micro-batched replay: each chunk takes the columnar admission
        // path in one `push_batch`; emissions are labeled with the
        // chunk's closing timestamp.
        let events: Vec<ses_event::Event> =
            relation.iter().skip(skip).map(|(_, e)| e.clone()).collect();
        for chunk in events.chunks(batch) {
            if ses_server::signal::requested() {
                interrupted = true;
                break;
            }
            let at = format!("t={}", chunk.last().expect("chunks are non-empty").ts());
            let emitted = sm.push_batch_with_probe(chunk.to_vec(), &mut probe)?;
            for m in &emitted {
                emit(m, &at, &mut total, &mut suppress, &mut dur, out)?;
            }
            if let Some(d) = dur.as_deref_mut() {
                d.tick(&mut sm, &mut probe)?;
            }
        }
    } else {
        for (_, e) in relation.iter().skip(skip) {
            if ses_server::signal::requested() {
                interrupted = true;
                break;
            }
            let emitted = sm.push_with_probe(e.ts(), e.values().to_vec(), &mut probe)?;
            let at = format!("t={}", e.ts());
            for m in &emitted {
                emit(m, &at, &mut total, &mut suppress, &mut dur, out)?;
            }
            if let Some(d) = dur.as_deref_mut() {
                d.tick(&mut sm, &mut probe)?;
            }
        }
    }
    // Final checkpoint before `finish` consumes the matcher: a crash
    // during/after the flush replays only the flush itself.
    if let Some(d) = dur.as_deref_mut() {
        d.save_now(&mut sm, &mut probe)?;
    }
    if interrupted {
        // Graceful interrupt: checkpoint taken, sink synced, but no
        // `finish` — flushing unexpired partial matches would pollute
        // the durable log `recover` resumes from.
        if let Some(d) = dur {
            d.sink.sync().map_err(|e| e.to_string())?;
        }
        writeln!(
            out,
            "interrupted after {total} match(es); state checkpointed — resume with `ses-cli recover`"
        )
        .map_err(io_err)?;
        return Ok(());
    }
    let report = sm.report();
    for m in &sm.finish() {
        emit(m, "finish", &mut total, &mut suppress, &mut dur, out)?;
    }
    if let Some(d) = dur {
        d.sink.sync().map_err(|e| e.to_string())?;
    }
    let elapsed = sw.elapsed_secs();
    let printed = total - start_total;
    if printed > limit {
        writeln!(out, "… {} more matches (raise --limit)", printed - limit).map_err(io_err)?;
    }
    match &report {
        StreamReport::Global { .. } => {
            writeln!(out, "{total} match(es) streamed in {elapsed:.3}s").map_err(io_err)?;
        }
        StreamReport::Sharded { sizes, .. } => {
            writeln!(
                out,
                "{total} match(es) streamed in {elapsed:.3}s across {} shard(s)",
                sizes.len()
            )
            .map_err(io_err)?;
        }
    }

    if args.has_flag("stats") {
        let mut t = Table::new(["metric", "value"]);
        t.row(["events pushed", &probe.events_read.to_string()]);
        match &report {
            StreamReport::Global { retained, evicted } => {
                t.row(["events evicted", &probe.events_evicted.to_string()]);
                t.row(["retained at end", &retained.to_string()]);
                t.row(["evicted at end", &evicted.to_string()]);
                t.row(["peak retained", &probe.retained_max.to_string()]);
                t.row(["max |Ω|", &probe.omega_max.to_string()]);
                t.row(["instances expired", &probe.instances_expired.to_string()]);
                t.row(["eviction", if evict { "on" } else { "off" }]);
                t.row(["filter requested", filter_mode_name(probe.filter_requested)]);
                t.row(["filter effective", filter_mode_name(probe.filter_effective)]);
                let mode = parse_columnar(args)?;
                t.row(["columnar mode", columnar_mode_name(mode)]);
                t.row(["micro-batch", &batch.to_string()]);
                if let Ok(cp) = pattern.compile(relation.schema()) {
                    let lanes = ses_pattern::AdmissionLanes::of(&cp);
                    t.row(["columnar lanes", &lanes.lanes().len().to_string()]);
                    t.row([
                        "columnar active",
                        if mode.active(lanes.lanes().len(), batch) {
                            "yes"
                        } else {
                            "no"
                        },
                    ]);
                }
                if probe.filter_downgraded() {
                    t.row(["filter downgraded", "yes (SES003: run `ses-cli check`)"]);
                }
            }
            StreamReport::Sharded {
                key,
                sizes,
                peaks,
                retained,
                evicted,
            } => {
                let fmt_list =
                    |v: &[usize]| v.iter().map(usize::to_string).collect::<Vec<_>>().join(" ");
                t.row(["sharded by", relation.schema().attr_name(*key)]);
                t.row(["shards", &sizes.len().to_string()]);
                t.row(["shard events", &fmt_list(sizes)]);
                t.row(["per-shard peak |Ω|", &fmt_list(peaks)]);
                t.row(["events evicted", &evicted.to_string()]);
                t.row(["retained at end", &retained.to_string()]);
                t.row(["eviction", if evict { "on" } else { "off" }]);
            }
        }
        if probe.checkpoints > 0 {
            t.row(["checkpoints saved", &probe.checkpoints.to_string()]);
            t.row(["checkpoint bytes", &probe.checkpoint_bytes.to_string()]);
            t.row([
                "checkpoint time",
                &format!("{:.3}s", probe.checkpoint_nanos as f64 / 1e9),
            ]);
        }
        emit_stats_tables(args, out, &[("stats", &t)])?;
    }
    Ok(())
}

/// Evaluates a multi-query file in a single pass over the data.
fn cmd_run_multi(
    args: &Args,
    out: &mut dyn Write,
    store: &EventStore,
    patterns: Vec<(String, ses_pattern::Pattern)>,
) -> Result<(), String> {
    let options = matcher_options(args, store.relation().schema())?;
    let mut multi = MultiMatcher::new();
    let mut by_name = Vec::new();
    for (name, pattern) in patterns {
        let matcher = Matcher::with_options(&pattern, store.relation().schema(), options.clone())
            .map_err(|e| format!("{name}: {e}"))?;
        multi = multi.with(name.clone(), matcher);
        by_name.push((name, pattern));
    }
    let sw = Stopwatch::start();
    let results = multi.find_all(store.relation());
    let elapsed = sw.elapsed_secs();
    let limit: usize = args.get_parsed("limit", usize::MAX)?;
    for ((name, matches), (_, pattern)) in results.iter().zip(&by_name) {
        writeln!(out, "== {name}: {} match(es)", matches.len()).map_err(io_err)?;
        for m in matches.iter().take(limit) {
            writeln!(out, "  {}", m.display_with(pattern)).map_err(io_err)?;
        }
        if matches.len() > limit {
            writeln!(out, "  … {} more (raise --limit)", matches.len() - limit).map_err(io_err)?;
        }
    }
    writeln!(
        out,
        "{} quer(ies) over {} events in {elapsed:.3}s (single pass)",
        results.len(),
        store.len()
    )
    .map_err(io_err)?;
    Ok(())
}

fn cmd_explain(args: &Args, out: &mut dyn Write) -> Result<(), String> {
    let store = load_store(args.require("data")?)?;
    let (matcher, pattern) = build_matcher(args, &store)?;
    let automaton = matcher.automaton();

    if args.has_flag("dot") {
        write!(out, "{}", automaton.to_dot()).map_err(io_err)?;
        return Ok(());
    }
    if args.has_flag("trace") {
        let trace = ses_core::trace_execution(
            automaton,
            store.relation(),
            &ses_core::ExecOptions::default(),
        );
        write!(out, "{}", trace.render(automaton, None)).map_err(io_err)?;
        return Ok(());
    }
    writeln!(out, "pattern: {pattern}").map_err(io_err)?;
    let analysis = automaton.pattern().analysis();
    for (i, class) in analysis.set_classes().iter().enumerate() {
        writeln!(out, "  V{}: predicted |Ω| bound {class}", i + 1).map_err(io_err)?;
    }
    write!(out, "{}", automaton.describe()).map_err(io_err)?;
    Ok(())
}

fn cmd_generate(args: &Args, out: &mut dyn Write) -> Result<(), String> {
    let workload = args.require("workload")?;
    let out_path = args.require("out")?.to_string();
    let seed: u64 = args.get_parsed("seed", 42)?;
    let scale: f64 = args.get_parsed("scale", 1.0)?;

    let relation = match workload {
        "clickstream" => {
            let mut cfg = ses_workload::clickstream::ClickstreamConfig::small();
            cfg.seed = seed;
            cfg.buyers = (cfg.buyers as f64 * scale) as usize;
            cfg.browsers = (cfg.browsers as f64 * scale) as usize;
            ses_workload::clickstream::generate(&cfg)
        }
        "chemo" => ses_workload::chemo::generate(
            &ses_workload::chemo::ChemoConfig::paper_d1()
                .scaled(scale)
                .with_seed(seed),
        ),
        "finance" => {
            let mut cfg = ses_workload::finance::FinanceConfig::small();
            cfg.seed = seed;
            cfg.background_trades = (cfg.background_trades as f64 * scale) as usize;
            ses_workload::finance::generate(&cfg)
        }
        "rfid" => {
            let mut cfg = ses_workload::rfid::RfidConfig::small();
            cfg.seed = seed;
            cfg.complete_parcels = (cfg.complete_parcels as f64 * scale) as usize;
            ses_workload::rfid::generate(&cfg)
        }
        "figure1" => ses_workload::paper::figure1(),
        other => return Err(format!("--workload: unknown workload `{other}`")),
    };
    let store = EventStore::new(workload, relation);
    store.save_csv(&out_path).map_err(|e| e.to_string())?;
    writeln!(out, "wrote {} events to {out_path}", store.len()).map_err(io_err)?;
    Ok(())
}

fn cmd_stats(args: &Args, out: &mut dyn Write) -> Result<(), String> {
    let store = load_store(args.require("data")?)?;
    let within: i64 = args.get_parsed("within", 264)?;
    let stats = store.stats(Duration::ticks(within));
    let mut t = Table::new(["metric", "value"]);
    t.row(["events", &stats.events.to_string()]);
    t.row(["attributes", &stats.attributes.to_string()]);
    t.row([
        "first timestamp",
        &stats.first_ts.map_or("-".into(), |t| t.to_string()),
    ]);
    t.row([
        "last timestamp",
        &stats.last_ts.map_or("-".into(), |t| t.to_string()),
    ]);
    t.row([
        &format!("window size W (τ={within})"),
        &stats.window_size.to_string(),
    ]);
    write!(out, "{t}").map_err(io_err)?;
    Ok(())
}

/// Renders `--stats` tables honoring `--format human|json`. JSON mode
/// emits one object with a key per table — the same shape the server's
/// `stats` verb returns, so dashboards parse both identically.
fn emit_stats_tables(
    args: &Args,
    out: &mut dyn Write,
    tables: &[(&str, &Table)],
) -> Result<(), String> {
    match args.get("format").unwrap_or("human") {
        "human" => {
            for (_, t) in tables {
                write!(out, "\n{t}").map_err(io_err)?;
            }
            Ok(())
        }
        "json" => {
            let mut o = ses_metrics::JsonObject::new();
            for (k, t) in tables {
                o.set(*k, t.to_json());
            }
            writeln!(out, "{o}").map_err(io_err)
        }
        other => Err(format!("--format: expected human|json, got `{other}`")),
    }
}

pub(crate) fn io_err(e: std::io::Error) -> String {
    format!("i/o error: {e}")
}

fn filter_mode_name(m: Option<FilterMode>) -> &'static str {
    match m {
        None => "-",
        Some(FilterMode::Off) => "off",
        Some(FilterMode::Paper) => "paper",
        Some(FilterMode::PerVariable) => "per-variable",
    }
}

fn columnar_mode_name(m: ses_core::ColumnarMode) -> &'static str {
    match m {
        ses_core::ColumnarMode::Auto => "auto",
        ses_core::ColumnarMode::On => "on",
        ses_core::ColumnarMode::Off => "off",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(argv: &[&str]) -> (i32, String) {
        let args = Args::parse(argv.iter().copied()).unwrap();
        let mut out = Vec::new();
        let code = dispatch(&args, &mut out);
        (code, String::from_utf8(out).unwrap())
    }

    fn figure1_csv() -> String {
        let dir = std::env::temp_dir().join("ses-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("figure1-{}.csv", std::process::id()));
        let store = EventStore::new("figure1", ses_workload::paper::figure1());
        store.save_csv(&path).unwrap();
        path.to_string_lossy().into_owned()
    }

    const Q1: &str = "PATTERN PERMUTE(c, p+, d) THEN b \
                      WHERE c.L = 'C' AND d.L = 'D' AND p.L = 'P' AND b.L = 'B' \
                        AND c.ID = p.ID AND c.ID = d.ID AND d.ID = b.ID \
                      WITHIN 264 HOURS";

    #[test]
    fn stats_format_json_emits_one_parseable_object() {
        let data = figure1_csv();
        for argv in [
            vec![
                "run", "--query", Q1, "--data", &data, "--stats", "--format", "json",
            ],
            vec![
                "stream", "--query", Q1, "--data", &data, "--stats", "--format", "json",
            ],
        ] {
            let (code, out) = run(&argv);
            assert_eq!(code, 0, "{out}");
            let json_line = out.lines().last().unwrap();
            let v = ses_server::protocol::parse_json(json_line).expect(json_line);
            let stats = v.as_object().unwrap().get("stats").unwrap();
            assert!(
                stats.as_object().unwrap().get("raw_matches").is_some()
                    || stats.as_object().unwrap().get("events_pushed").is_some(),
                "{json_line}"
            );
        }
        // Unknown format is a hard error, not silent fallback.
        let (code, out) = run(&[
            "run", "--query", Q1, "--data", &data, "--stats", "--format", "xml",
        ]);
        assert_ne!(code, 0);
        assert!(out.contains("expected human|json"), "{out}");
    }

    #[test]
    fn bank_stats_format_json_has_patterns_and_totals() {
        let data = figure1_csv();
        let dir = std::env::temp_dir().join(format!("ses-bankjson-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("q1.ses"), Q1).unwrap();
        let (code, out) = run(&[
            "bank",
            "--patterns",
            dir.to_str().unwrap(),
            "--data",
            &data,
            "--stats",
            "--format",
            "json",
        ]);
        assert_eq!(code, 0, "{out}");
        let json_line = out.lines().last().unwrap();
        let v = ses_server::protocol::parse_json(json_line).expect(json_line);
        let o = v.as_object().unwrap();
        assert!(o.get("patterns").is_some(), "{json_line}");
        assert!(o.get("totals").is_some(), "{json_line}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn help_and_unknown_command() {
        let (code, out) = run(&["help"]);
        assert_eq!(code, 0);
        assert!(out.contains("USAGE"));
        let (code, out) = run(&["bogus"]);
        assert_eq!(code, 1);
        assert!(out.contains("unknown command"));
    }

    #[test]
    fn run_finds_the_papers_matches() {
        let data = figure1_csv();
        let (code, out) = run(&["run", "--query", Q1, "--data", &data, "--stats"]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("2 match(es)"), "{out}");
        assert!(out.contains("c/e1"), "{out}");
        assert!(out.contains("b/e13"), "{out}");
        assert!(out.contains("max |Ω|"), "{out}");
        std::fs::remove_file(&data).ok();
    }

    #[test]
    fn run_with_limit_truncates() {
        let data = figure1_csv();
        let (code, out) = run(&[
            "run",
            "--query",
            Q1,
            "--data",
            &data,
            "--limit",
            "1",
            "--semantics",
            "all",
        ]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("more matches"), "{out}");
        std::fs::remove_file(&data).ok();
    }

    #[test]
    fn stream_replays_data_and_reports_eviction() {
        let data = figure1_csv();
        let (code, out) = run(&["stream", "--query", Q1, "--data", &data, "--stats"]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("2 match(es) streamed"), "{out}");
        assert!(out.contains("events evicted"), "{out}");
        assert!(out.contains("peak retained"), "{out}");
        // Same answer with eviction disabled.
        let (code, out) = run(&["stream", "--query", Q1, "--data", &data, "--no-evict"]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("2 match(es) streamed"), "{out}");
        assert!(out.contains("c/e1"), "{out}");
        std::fs::remove_file(&data).ok();
    }

    /// Match lines of a `bank` run — the `[t=…] name: {…}` and
    /// `[finish] name: {…}` lines, minus timing/stat noise.
    fn match_lines(out: &str) -> Vec<&str> {
        out.lines().filter(|l| l.starts_with('[')).collect()
    }

    #[test]
    fn run_columnar_modes_agree_and_report() {
        let data = figure1_csv();
        let (code, on) = run(&[
            "run",
            "--query",
            Q1,
            "--data",
            &data,
            "--columnar",
            "on",
            "--stats",
        ]);
        assert_eq!(code, 0, "{on}");
        assert!(on.contains("2 match(es)"), "{on}");
        assert!(on.contains("columnar mode"), "{on}");
        assert!(on.contains("columnar active"), "{on}");
        let (code, off) = run(&["run", "--query", Q1, "--data", &data, "--columnar", "off"]);
        assert_eq!(code, 0, "{off}");
        assert!(off.contains("2 match(es)"), "{off}");
        let (code, bad) = run(&["run", "--query", Q1, "--data", &data, "--columnar", "x"]);
        assert_eq!(code, 1);
        assert!(bad.contains("--columnar"), "{bad}");
        std::fs::remove_file(&data).ok();
    }

    #[test]
    fn stream_batched_replay_matches_per_event() {
        let data = figure1_csv();
        let (code, per_event) = run(&["stream", "--query", Q1, "--data", &data]);
        assert_eq!(code, 0, "{per_event}");
        for batch in ["3", "64"] {
            let (code, batched) = run(&[
                "stream",
                "--query",
                Q1,
                "--data",
                &data,
                "--batch",
                batch,
                "--columnar",
                "on",
            ]);
            assert_eq!(code, 0, "{batched}");
            assert!(batched.contains("2 match(es) streamed"), "{batched}");
            // The same match buffers appear (batching may shift the
            // emission label to the chunk's closing timestamp).
            let bufs = |s: &str| {
                let mut v: Vec<String> = s
                    .lines()
                    .filter_map(|l| l.split_once(": ").map(|(_, b)| b.to_string()))
                    .filter(|b| b.starts_with('{'))
                    .collect();
                v.sort();
                v
            };
            assert_eq!(bufs(&per_event), bufs(&batched), "batch {batch}");
        }
        let (code, bad) = run(&["stream", "--query", Q1, "--data", &data, "--batch", "0"]);
        assert_eq!(code, 1);
        assert!(bad.contains("--batch"), "{bad}");
        std::fs::remove_file(&data).ok();
    }

    #[test]
    fn bank_runs_a_directory_of_queries() {
        let data = figure1_csv();
        let dir = std::env::temp_dir().join(format!(
            "ses-cli-bank-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("protocol.ses"), Q1).unwrap();
        std::fs::write(
            dir.join("cd.ses"),
            "PATTERN c THEN d WHERE c.L = 'C' AND d.L = 'D' WITHIN 264 HOURS",
        )
        .unwrap();
        let dir_s = dir.to_string_lossy().into_owned();

        let (code, with_index) = run(&["bank", "--patterns", &dir_s, "--data", &data, "--stats"]);
        assert_eq!(code, 0, "{with_index}");
        // Names default to the file stems, in file-name order.
        assert!(with_index.contains("] cd:"), "{with_index}");
        assert!(with_index.contains("] protocol:"), "{with_index}");
        assert!(
            with_index.contains("(index on, sharing off)"),
            "{with_index}"
        );
        assert!(with_index.contains("routed pushes"), "{with_index}");

        // Index off: identical match lines, every push routed.
        let (code, no_index) = run(&[
            "bank",
            "--patterns",
            &dir_s,
            "--data",
            &data,
            "--no-index",
            "--stats",
        ]);
        assert_eq!(code, 0, "{no_index}");
        assert_eq!(match_lines(&with_index), match_lines(&no_index));
        assert!(no_index.contains("(index off, sharing off)"), "{no_index}");

        std::fs::remove_dir_all(&dir).ok();
        std::fs::remove_file(&data).ok();
    }

    #[test]
    fn bank_accepts_a_named_multi_query_file() {
        let data = figure1_csv();
        let file = std::env::temp_dir().join(format!(
            "ses-cli-bank-file-{}-{:?}.ses",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::write(
            &file,
            format!("protocol: {Q1};\ncd: PATTERN c THEN d WHERE c.L = 'C' AND d.L = 'D' WITHIN 264 HOURS"),
        )
        .unwrap();
        let file_s = file.to_string_lossy().into_owned();
        let (code, out) = run(&[
            "bank",
            "--patterns",
            &file_s,
            "--data",
            &data,
            "--limit",
            "1",
        ]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("more matches"), "{out}");
        assert!(out.contains("pattern(s)"), "{out}");
        // --patterns is required.
        let (code, out) = run(&["bank", "--data", &data]);
        assert_eq!(code, 1);
        assert!(out.contains("--patterns is required"), "{out}");
        std::fs::remove_file(&file).ok();
        std::fs::remove_file(&data).ok();
    }

    /// A pattern directory whose files carry schema pragmas and exercise
    /// every cross-pattern lint: `dup` is `base` with renamed variables
    /// (SES006), `strict` adds a tightening condition (SES007), and
    /// `follow` shares `base`'s leading event set (SES008).
    fn lint_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "ses-cli-lint-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        const PRAGMA: &str = "-- schema: ID:int,L:str,V:float,U:str\n";
        std::fs::write(
            dir.join("a_base.ses"),
            format!(
                "{PRAGMA}base: PATTERN c THEN b WHERE c.L = 'C' AND b.L = 'B' WITHIN 48 HOURS;"
            ),
        )
        .unwrap();
        std::fs::write(
            dir.join("b_dup.ses"),
            format!("{PRAGMA}dup: PATTERN x THEN y WHERE x.L = 'C' AND y.L = 'B' WITHIN 48 HOURS;"),
        )
        .unwrap();
        std::fs::write(
            dir.join("c_strict.ses"),
            format!(
                "{PRAGMA}strict: PATTERN c THEN b \
                 WHERE c.L = 'C' AND b.L = 'B' AND c.V > 10 WITHIN 48 HOURS;"
            ),
        )
        .unwrap();
        std::fs::write(
            dir.join("d_follow.ses"),
            format!(
                "{PRAGMA}follow: PATTERN c THEN d WHERE c.L = 'C' AND d.L = 'D' WITHIN 48 HOURS;"
            ),
        )
        .unwrap();
        dir
    }

    #[test]
    fn check_patterns_lints_cross_pattern_redundancy() {
        let dir = lint_dir("human");
        let dir_s = dir.to_string_lossy().into_owned();

        let (code, out) = run(&["check", "--patterns", &dir_s]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("SES006"), "{out}");
        assert!(out.contains("equivalent to `base`"), "{out}");
        assert!(out.contains("SES007"), "{out}");
        assert!(out.contains("subsumed by `base`"), "{out}");
        assert!(out.contains("SES008"), "{out}");
        assert!(out.contains("prefix group"), "{out}");

        let (code, json) = run(&["check", "--patterns", &dir_s, "--format", "json"]);
        assert_eq!(code, 0, "{json}");
        for code in ["SES006", "SES007", "SES008"] {
            assert!(json.contains(&format!("\"code\":\"{code}\"")), "{json}");
        }
        assert!(json.contains("\"plan\":"), "{json}");

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn check_patterns_groups_by_schema_pragma() {
        let dir = lint_dir("schema");
        // Same query text as `follow` but under a different schema: no
        // cross-schema SES008 may appear for it.
        std::fs::write(
            dir.join("e_other.ses"),
            "-- schema: ID:int,L:str\nother: PATTERN c THEN d \
             WHERE c.L = 'C' AND d.L = 'D' WITHIN 48 HOURS;",
        )
        .unwrap();
        let dir_s = dir.to_string_lossy().into_owned();
        let (code, out) = run(&["check", "--patterns", &dir_s]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("2 schema group(s)"), "{out}");
        assert!(out.contains("other: ok"), "{out}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bank_share_is_push_identical() {
        let data = figure1_csv();
        let dir = std::env::temp_dir().join(format!(
            "ses-cli-share-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            dir.join("cb.ses"),
            "cb: PATTERN c THEN b WHERE c.L = 'C' AND b.L = 'B' WITHIN 264 HOURS;",
        )
        .unwrap();
        std::fs::write(
            dir.join("cd.ses"),
            "cd: PATTERN c THEN d WHERE c.L = 'C' AND d.L = 'D' WITHIN 264 HOURS;",
        )
        .unwrap();
        let dir_s = dir.to_string_lossy().into_owned();

        let (code, plain) = run(&["bank", "--patterns", &dir_s, "--data", &data]);
        assert_eq!(code, 0, "{plain}");
        let (code, shared) = run(&[
            "bank",
            "--patterns",
            &dir_s,
            "--data",
            &data,
            "--share",
            "--stats",
        ]);
        assert_eq!(code, 0, "{shared}");
        assert_eq!(match_lines(&plain), match_lines(&shared));
        assert!(shared.contains("sharing on"), "{shared}");
        assert!(shared.contains("prefix group"), "{shared}");

        std::fs::remove_dir_all(&dir).ok();
        std::fs::remove_file(&data).ok();
    }

    #[test]
    fn bank_checkpoints_and_recovers_exactly_once() {
        let (log_dir, ckpt_dir) = durability_dirs("bank");
        let qdir = std::env::temp_dir().join(format!(
            "ses-cli-bankrec-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&qdir).ok();
        std::fs::create_dir_all(&qdir).unwrap();
        std::fs::write(
            qdir.join("cb.ses"),
            "cb: PATTERN c THEN b WHERE c.L = 'C' AND b.L = 'B' WITHIN 264 HOURS;",
        )
        .unwrap();
        std::fs::write(
            qdir.join("cd.ses"),
            "cd: PATTERN c THEN d WHERE c.L = 'C' AND d.L = 'D' WITHIN 264 HOURS;",
        )
        .unwrap();
        let qdir_s = qdir.to_string_lossy().into_owned();

        let (code, first) = run(&[
            "bank",
            "--patterns",
            &qdir_s,
            "--from-log",
            &log_dir,
            "--checkpoint",
            &ckpt_dir,
            "--checkpoint-every",
            "5",
            "--share",
        ]);
        assert_eq!(code, 0, "{first}");
        let durable = sink_lines(&ckpt_dir);
        assert_eq!(durable.len(), match_lines(&first).len(), "{first}");

        // Re-running with --recover resumes from the final checkpoint:
        // everything durably emitted is suppressed, nothing re-emits.
        let (code, again) = run(&[
            "bank",
            "--patterns",
            &qdir_s,
            "--from-log",
            &log_dir,
            "--checkpoint",
            &ckpt_dir,
            "--share",
            "--recover",
        ]);
        assert_eq!(code, 0, "{again}");
        assert!(again.contains("recovering:"), "{again}");
        assert!(match_lines(&again).is_empty(), "{again}");
        assert_eq!(sink_lines(&ckpt_dir), durable);

        // `recover` refuses the bank checkpoint, naming what it found and
        // where to take it.
        let (code, refusal) = run(&[
            "recover",
            "--query",
            Q1,
            "--from-log",
            &log_dir,
            "--checkpoint",
            &ckpt_dir,
        ]);
        assert_eq!(code, 1, "{refusal}");
        assert!(refusal.contains("pattern-bank snapshot"), "{refusal}");
        assert!(refusal.contains("2 pattern(s): cb, cd"), "{refusal}");
        assert!(refusal.contains("bank --patterns"), "{refusal}");

        // And the mirror image: `bank --recover` refuses a single-query
        // stream checkpoint.
        let (_, ckpt2) = durability_dirs("bankrec2");
        let (code, out) = run(&[
            "stream",
            "--query",
            Q1,
            "--from-log",
            &log_dir,
            "--checkpoint",
            &ckpt2,
        ]);
        assert_eq!(code, 0, "{out}");
        let (code, out) = run(&[
            "bank",
            "--patterns",
            &qdir_s,
            "--from-log",
            &log_dir,
            "--checkpoint",
            &ckpt2,
            "--recover",
        ]);
        assert_eq!(code, 1, "{out}");
        assert!(out.contains("single-query stream"), "{out}");
        assert!(out.contains("`ses-cli recover`"), "{out}");

        std::fs::remove_dir_all(&qdir).ok();
    }

    /// Imports the Figure 1 workload into a fresh event-log directory and
    /// returns `(log_dir, checkpoint_dir)` unique to the calling test.
    fn durability_dirs(tag: &str) -> (String, String) {
        let base = std::env::temp_dir().join(format!(
            "ses-cli-dur-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&base).ok();
        let log_dir = base.join("log").to_string_lossy().into_owned();
        let ckpt_dir = base.join("ckpt").to_string_lossy().into_owned();
        let data = figure1_csv();
        let (code, out) = run(&["import", "--data", &data, "--out", &log_dir]);
        assert_eq!(code, 0, "{out}");
        std::fs::remove_file(&data).ok();
        (log_dir, ckpt_dir)
    }

    fn sink_lines(ckpt_dir: &str) -> Vec<String> {
        let text =
            std::fs::read_to_string(std::path::Path::new(ckpt_dir).join("matches.log")).unwrap();
        text.lines().map(str::to_string).collect()
    }

    #[test]
    fn stream_from_log_matches_csv_run() {
        let (log_dir, _ckpt) = durability_dirs("fromlog");
        let (code, out) = run(&["stream", "--query", Q1, "--from-log", &log_dir]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("2 match(es) streamed"), "{out}");
        assert!(out.contains("c/e1"), "{out}");
        // --data and --from-log are mutually exclusive.
        let (code, out) = run(&[
            "stream",
            "--query",
            Q1,
            "--from-log",
            &log_dir,
            "--data",
            "x.csv",
        ]);
        assert_eq!(code, 1);
        assert!(out.contains("not both"), "{out}");
    }

    #[test]
    fn stream_checkpoint_writes_snapshots_and_durable_matches() {
        let (log_dir, ckpt_dir) = durability_dirs("ckpt");
        let (code, out) = run(&[
            "stream",
            "--query",
            Q1,
            "--from-log",
            &log_dir,
            "--checkpoint",
            &ckpt_dir,
            "--checkpoint-every",
            "3",
            "--stats",
        ]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("2 match(es) streamed"), "{out}");
        assert!(out.contains("checkpoints saved"), "{out}");
        let ckpts: Vec<_> = std::fs::read_dir(&ckpt_dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.path().extension().is_some_and(|x| x == "sesckpt"))
            .collect();
        assert!(!ckpts.is_empty(), "no checkpoint files written");
        assert!(ckpts.len() <= 3, "pruning should keep at most 3");
        assert_eq!(sink_lines(&ckpt_dir).len(), 2, "both matches durable");
    }

    #[test]
    fn stream_checkpoint_requires_from_log() {
        let data = figure1_csv();
        let (code, out) = run(&[
            "stream",
            "--query",
            Q1,
            "--data",
            &data,
            "--checkpoint",
            "/tmp/x",
        ]);
        assert_eq!(code, 1);
        assert!(out.contains("requires --from-log"), "{out}");
        std::fs::remove_file(&data).ok();
    }

    #[test]
    fn recover_after_completed_run_is_exactly_once() {
        let (log_dir, ckpt_dir) = durability_dirs("recover");
        let (code, out) = run(&[
            "stream",
            "--query",
            Q1,
            "--from-log",
            &log_dir,
            "--checkpoint",
            &ckpt_dir,
            "--checkpoint-every",
            "4",
        ]);
        assert_eq!(code, 0, "{out}");
        let reference = sink_lines(&ckpt_dir);
        assert_eq!(reference.len(), 2);

        // Recovering a run that already completed must add nothing: the
        // replayed suffix is suppressed line for line.
        let (code, out) = run(&[
            "recover",
            "--query",
            Q1,
            "--from-log",
            &log_dir,
            "--checkpoint",
            &ckpt_dir,
        ]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("recovering:"), "{out}");
        assert!(out.contains("2 match(es) streamed"), "{out}");
        assert_eq!(sink_lines(&ckpt_dir), reference, "no duplicates, no loss");
    }

    #[test]
    fn recover_without_checkpoint_cold_starts() {
        let (log_dir, ckpt_dir) = durability_dirs("cold");
        let (code, out) = run(&[
            "recover",
            "--query",
            Q1,
            "--from-log",
            &log_dir,
            "--checkpoint",
            &ckpt_dir,
        ]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("no valid checkpoint"), "{out}");
        assert!(out.contains("2 match(es) streamed"), "{out}");
        assert_eq!(sink_lines(&ckpt_dir).len(), 2);
    }

    #[test]
    fn recover_skips_corrupt_checkpoint_and_replays_the_gap() {
        let (log_dir, ckpt_dir) = durability_dirs("corrupt");
        let (code, out) = run(&[
            "stream",
            "--query",
            Q1,
            "--from-log",
            &log_dir,
            "--checkpoint",
            &ckpt_dir,
            "--checkpoint-every",
            "3",
        ]);
        assert_eq!(code, 0, "{out}");
        let reference = sink_lines(&ckpt_dir);

        // Corrupt the newest checkpoint; recovery must fall back to the
        // previous one and still end exactly-once.
        let mut ckpts: Vec<_> = std::fs::read_dir(&ckpt_dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "sesckpt"))
            .collect();
        ckpts.sort();
        assert!(ckpts.len() >= 2, "need two checkpoints for the fallback");
        let newest = ckpts.last().unwrap();
        let mut bytes = std::fs::read(newest).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        std::fs::write(newest, &bytes).unwrap();

        let (code, out) = run(&[
            "recover",
            "--query",
            Q1,
            "--from-log",
            &log_dir,
            "--checkpoint",
            &ckpt_dir,
        ]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("skipped 1 corrupt checkpoint(s)"), "{out}");
        assert!(out.contains("2 match(es) streamed"), "{out}");
        assert_eq!(sink_lines(&ckpt_dir), reference, "no duplicates, no loss");
    }

    #[test]
    fn explain_prints_automaton_and_dot() {
        let data = figure1_csv();
        let (code, out) = run(&["explain", "--query", Q1, "--data", &data]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("9 states"), "{out}");
        assert!(out.contains("predicted |Ω| bound O(1)"), "{out}");
        let (code, out) = run(&["explain", "--query", Q1, "--data", &data, "--dot"]);
        assert_eq!(code, 0);
        assert!(out.starts_with("digraph"));
        // Figure-6-style execution trace.
        let (code, out) = run(&["explain", "--query", Q1, "--data", &data, "--trace"]);
        assert_eq!(code, 0);
        assert!(out.contains("read e1:"), "{out}");
        assert!(out.contains("β = {c/e1"), "{out}");
        std::fs::remove_file(&data).ok();
    }

    #[test]
    fn generate_then_stats_round_trip() {
        let dir = std::env::temp_dir().join("ses-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir
            .join(format!("gen-{}.csv", std::process::id()))
            .to_string_lossy()
            .into_owned();
        let (code, out) = run(&[
            "generate",
            "--workload",
            "rfid",
            "--out",
            &path,
            "--seed",
            "5",
        ]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("wrote"));
        let (code, out) = run(&["stats", "--data", &path, "--within", "3600"]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("window size W"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn import_then_run_from_log_directory() {
        let data = figure1_csv();
        let dir = std::env::temp_dir().join(format!("ses-cli-log-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let dir_s = dir.to_string_lossy().into_owned();

        let (code, out) = run(&["import", "--data", &data, "--out", &dir_s]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("imported 14 events"), "{out}");

        // run / stats straight from the log directory.
        let (code, out) = run(&["run", "--query", Q1, "--data", &dir_s]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("2 match(es)"), "{out}");
        let (code, out) = run(&["stats", "--data", &dir_s, "--within", "264"]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("window size W"), "{out}");

        std::fs::remove_dir_all(&dir).ok();
        std::fs::remove_file(&data).ok();
    }

    #[test]
    fn multi_query_file_single_pass() {
        let data = figure1_csv();
        let file = std::env::temp_dir().join(format!("ses-multi-{}.ses", std::process::id()));
        std::fs::write(
            &file,
            "protocol: PATTERN PERMUTE(c, p+, d) THEN b \
               WHERE c.L = 'C' AND d.L = 'D' AND p.L = 'P' AND b.L = 'B' \
                 AND c.ID = p.ID AND c.ID = d.ID AND d.ID = b.ID \
               WITHIN 264 HOURS;\n\
             bloodcounts: PATTERN bc WHERE bc.L = 'B';",
        )
        .unwrap();
        let (code, out) = run(&["run", "--query", &file.to_string_lossy(), "--data", &data]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("== protocol: 2 match(es)"), "{out}");
        assert!(out.contains("== bloodcounts: 5 match(es)"), "{out}");
        assert!(out.contains("single pass"), "{out}");
        std::fs::remove_file(&file).ok();
        std::fs::remove_file(&data).ok();
    }

    #[test]
    fn check_reports_unsatisfiable_query_and_exits_nonzero() {
        let q = "PATTERN PERMUTE(a, b) \
                 WHERE a.ID > 5 AND a.ID < 3 AND b.L = 'B' \
                 WITHIN 10 TICKS";
        let (code, out) = run(&["check", "--query", q, "--schema", "ID:int,L:str"]);
        assert_eq!(code, 1, "{out}");
        assert!(out.contains("SES001"), "{out}");
        assert!(out.contains("1 error(s)"), "{out}");
    }

    #[test]
    fn check_json_format_carries_codes_and_satisfiability() {
        let q = "PATTERN PERMUTE(a, b) \
                 WHERE a.ID > 5 AND a.ID < 3 AND b.L = 'B' \
                 WITHIN 10 TICKS";
        let (code, out) = run(&[
            "check",
            "--query",
            q,
            "--schema",
            "ID:int,L:str",
            "--format",
            "json",
        ]);
        assert_eq!(code, 1, "{out}");
        assert!(out.contains("\"satisfiable\":false"), "{out}");
        assert!(out.contains("SES001"), "{out}");
    }

    #[test]
    fn check_clean_query_is_ok_with_data_schema() {
        let data = figure1_csv();
        let (code, out) = run(&["check", "--query", Q1, "--data", &data]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("ok"), "{out}");
        assert!(out.contains("0 error(s)"), "{out}");
        std::fs::remove_file(&data).ok();
    }

    #[test]
    fn check_schema_pragma_and_source_spans() {
        let file = std::env::temp_dir().join(format!("ses-check-{}.ses", std::process::id()));
        std::fs::write(
            &file,
            "-- schema: ID:int,L:str\n\
             loose: PATTERN PERMUTE(a) THEN b\n\
             WHERE a.ID > 5 AND a.ID > 3 AND a.L = 'A' AND b.L = 'B'\n\
             WITHIN 10 TICKS;\n",
        )
        .unwrap();
        let (code, out) = run(&["check", "--query", &file.to_string_lossy()]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("loose:"), "{out}");
        // `a.ID > 3` is implied by `a.ID > 5`: SES002 with the source
        // position of the redundant condition (line 3 of the file).
        assert!(out.contains("SES002"), "{out}");
        assert!(out.contains("(at 3:"), "{out}");
        std::fs::remove_file(&file).ok();
    }

    #[test]
    fn check_warns_on_filter_downgrade_and_superpolynomial_class() {
        // `a` and `free` are not mutually exclusive and `free` has no
        // constant condition: SES003 (downgrade) + SES004 (factorial).
        let q = "PATTERN PERMUTE(a, free) \
                 WHERE a.L = 'A' AND free.ID = a.ID \
                 WITHIN 10 TICKS";
        let (code, out) = run(&["check", "--query", q, "--schema", "ID:int,L:str"]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("SES003"), "{out}");
        assert!(out.contains("SES004"), "{out}");
    }

    #[test]
    fn check_without_schema_errors() {
        let (code, out) = run(&["check", "--query", Q1]);
        assert_eq!(code, 1, "{out}");
        assert!(out.contains("no schema"), "{out}");
    }

    #[test]
    fn run_stats_report_filter_modes() {
        let data = figure1_csv();
        let (code, out) = run(&["run", "--query", Q1, "--data", &data, "--stats"]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("filter requested"), "{out}");
        assert!(out.contains("filter effective"), "{out}");
        let (code, out) = run(&["stream", "--query", Q1, "--data", &data, "--stats"]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("filter requested"), "{out}");
        std::fs::remove_file(&data).ok();
    }

    #[test]
    fn propagate_flag_rescues_filter() {
        let data = figure1_csv();
        // `b` has no constant condition of its own: the filter downgrades
        // to off unless --propagate derives `b.ID = 1` through `b.ID = a.ID`.
        let q = "PATTERN PERMUTE(a) THEN b \
                 WHERE a.L = 'C' AND a.ID = 1 AND b.ID = a.ID \
                 WITHIN 264 HOURS";
        let (code, plain) = run(&["run", "--query", q, "--data", &data, "--stats"]);
        assert_eq!(code, 0, "{plain}");
        assert!(plain.contains("filter downgraded"), "{plain}");
        let (code, prop) = run(&[
            "run",
            "--query",
            q,
            "--data",
            &data,
            "--stats",
            "--propagate",
        ]);
        assert_eq!(code, 0, "{prop}");
        assert!(!prop.contains("filter downgraded"), "{prop}");
        // Same matches either way.
        let count = |s: &str| s.matches("match ").count();
        assert_eq!(count(&plain), count(&prop), "{plain}\n{prop}");
        std::fs::remove_file(&data).ok();
    }

    #[test]
    fn bad_query_reports_error() {
        let data = figure1_csv();
        let (code, out) = run(&["run", "--query", "PATTERN", "--data", &data]);
        assert_eq!(code, 1);
        assert!(out.contains("error:"), "{out}");
        std::fs::remove_file(&data).ok();
    }

    #[test]
    fn option_validation_errors() {
        let data = figure1_csv();
        for bad in [
            vec!["run", "--query", Q1, "--data", &data, "--tick", "wat"],
            vec!["run", "--query", Q1, "--data", &data, "--semantics", "wat"],
            vec!["run", "--query", Q1, "--data", &data, "--filter", "wat"],
            vec!["run", "--query", Q1, "--data", &data, "--threads", "0"],
            vec!["run", "--query", Q1, "--data", &data, "--partition", "NOPE"],
            vec!["generate", "--workload", "wat", "--out", "/tmp/x.csv"],
        ] {
            let (code, out) = run(&bad);
            assert_eq!(code, 1, "{out}");
        }
        std::fs::remove_file(&data).ok();
    }

    #[test]
    fn run_partition_auto_matches_global_and_reports_layout() {
        let data = figure1_csv();
        let (code, global) = run(&["run", "--query", Q1, "--data", &data]);
        assert_eq!(code, 0, "{global}");
        let (code, out) = run(&[
            "run",
            "--query",
            Q1,
            "--data",
            &data,
            "--partition",
            "auto",
            "--threads",
            "2",
            "--stats",
        ]);
        assert_eq!(code, 0, "{out}");
        // Q1 correlates every variable on ID, so auto proves ID and the
        // match set is identical to the global scan's.
        assert!(out.contains("2 match(es)"), "{out}");
        assert!(out.contains("c/e1"), "{out}");
        assert!(out.contains("partitioned by"), "{out}");
        assert!(out.contains("ID"), "{out}");
        assert!(out.contains("partitions"), "{out}");
        assert!(out.contains("key skew"), "{out}");
        std::fs::remove_file(&data).ok();
    }

    #[test]
    fn run_refuses_unproven_explicit_partition_key() {
        let data = figure1_csv();
        // L carries no cross-variable equality in Q1.
        let (code, out) = run(&["run", "--query", Q1, "--data", &data, "--partition", "L"]);
        assert_eq!(code, 1, "{out}");
        assert!(out.contains("not a proven partition key"), "{out}");
        std::fs::remove_file(&data).ok();
    }

    #[test]
    fn run_partition_auto_falls_back_when_unprovable() {
        let data = figure1_csv();
        // Uncorrelated query: nothing provable, auto runs global.
        let q = "PATTERN PERMUTE(c) THEN b WHERE c.L = 'C' AND b.L = 'B' WITHIN 264 HOURS";
        let (code, out) = run(&[
            "run",
            "--query",
            q,
            "--data",
            &data,
            "--partition",
            "auto",
            "--stats",
        ]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("no provable key"), "{out}");
        std::fs::remove_file(&data).ok();
    }

    #[test]
    fn run_partition_time_slices_keyless_queries() {
        let data = figure1_csv();
        // Uncorrelated query: no provable key, so `time` engages the
        // τ-overlapping slicer instead of degrading to a global scan.
        let q = "PATTERN PERMUTE(c) THEN b WHERE c.L = 'C' AND b.L = 'B' WITHIN 264 HOURS";
        let (code, global) = run(&["run", "--query", q, "--data", &data]);
        assert_eq!(code, 0, "{global}");
        let (code, out) = run(&[
            "run",
            "--query",
            q,
            "--data",
            &data,
            "--partition",
            "time",
            "--threads",
            "2",
            "--stats",
        ]);
        assert_eq!(code, 0, "{out}");
        let count = |s: &str| s.matches("match ").count();
        assert_eq!(count(&global), count(&out), "{global}\n{out}");
        assert!(out.contains("time (no provable key)"), "{out}");
        assert!(out.contains("time slices"), "{out}");
        assert!(out.contains("largest slice"), "{out}");
        assert!(out.contains("overlap events rescanned"), "{out}");
        std::fs::remove_file(&data).ok();
    }

    #[test]
    fn run_partition_time_still_prefers_a_proven_key() {
        let data = figure1_csv();
        // Q1 proves ID, so `time` routes through the key path — no
        // duplicated seam work when a cheaper strategy exists.
        let (code, out) = run(&[
            "run",
            "--query",
            Q1,
            "--data",
            &data,
            "--partition",
            "time",
            "--stats",
        ]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("2 match(es)"), "{out}");
        assert!(out.contains("partitioned by"), "{out}");
        assert!(out.contains("key skew"), "{out}");
        assert!(!out.contains("time slices"), "{out}");
        std::fs::remove_file(&data).ok();
    }

    #[test]
    fn stream_partition_time_degrades_to_global() {
        let data = figure1_csv();
        // Time slicing is batch-only: a keyless stream falls back to a
        // single global matcher with a notice rather than erroring.
        let q = "PATTERN PERMUTE(c) THEN b WHERE c.L = 'C' AND b.L = 'B' WITHIN 264 HOURS";
        let (code, out) = run(&[
            "stream",
            "--query",
            q,
            "--data",
            &data,
            "--partition",
            "time",
        ]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("streaming globally"), "{out}");
        assert!(out.contains("batch-only"), "{out}");
        std::fs::remove_file(&data).ok();
    }

    #[test]
    fn stream_partition_auto_shards_by_key() {
        let data = figure1_csv();
        let (code, out) = run(&[
            "stream",
            "--query",
            Q1,
            "--data",
            &data,
            "--partition",
            "auto",
            "--shards",
            "3",
            "--stats",
        ]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("2 match(es) streamed"), "{out}");
        assert!(out.contains("3 shard(s)"), "{out}");
        assert!(out.contains("sharded by"), "{out}");
        assert!(out.contains("per-shard peak |Ω|"), "{out}");
        // Unproven explicit key aborts; auto on a keyless query degrades
        // to a global stream with a notice.
        let (code, out) = run(&["stream", "--query", Q1, "--data", &data, "--partition", "L"]);
        assert_eq!(code, 1, "{out}");
        assert!(out.contains("not a proven partition key"), "{out}");
        let q = "PATTERN PERMUTE(c) THEN b WHERE c.L = 'C' AND b.L = 'B' WITHIN 264 HOURS";
        let (code, out) = run(&[
            "stream",
            "--query",
            q,
            "--data",
            &data,
            "--partition",
            "auto",
        ]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("streaming globally"), "{out}");
        std::fs::remove_file(&data).ok();
    }

    #[test]
    fn check_reports_partition_keys() {
        let (code, out) = run(&["check", "--query", Q1, "--schema", "ID:int,L:str"]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("partitionable by ID"), "{out}");
        let (code, out) = run(&[
            "check",
            "--query",
            Q1,
            "--schema",
            "ID:int,L:str",
            "--format",
            "json",
        ]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("\"partition_keys\":[\"ID\"]"), "{out}");
        // A keyless query gets no note and an empty key list.
        let q = "PATTERN PERMUTE(c) THEN b WHERE c.L = 'C' AND b.L = 'B' WITHIN 10 TICKS";
        let (code, out) = run(&["check", "--query", q, "--schema", "ID:int,L:str"]);
        assert_eq!(code, 0, "{out}");
        assert!(!out.contains("partitionable"), "{out}");
    }
}
