//! Regenerates every table and figure of the paper's evaluation (§5).
//!
//! ```text
//! cargo run -p ses-bench --release --bin experiments -- [--exp 1|2|3|all]
//!     [--scale F] [--datasets K] [--nmax N] [--csv DIR]
//! ```
//!
//! `--csv DIR` additionally writes each figure's series as a plottable
//! CSV file (`figure11.csv`, `figure12.csv`, `figure13.csv`).
//!
//! `--scale` (default 0.1) scales the synthetic D1's patient count; 1.0
//! reproduces the paper's `W ≈ 1322` (slow in the nondeterministic
//! regimes). Absolute numbers depend on the synthetic data and hardware;
//! the *shapes* — who wins, by what factor, and the growth trends — are
//! the reproduction targets (see EXPERIMENTS.md).

use ses_bench::datasets::{Datasets, TAU};
use ses_bench::experiments::{run_exp1, run_exp2, run_exp3};
use ses_metrics::{fmt_f64, Table};

struct Options {
    exp: String,
    scale: f64,
    datasets: usize,
    nmax: usize,
    csv_dir: Option<std::path::PathBuf>,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        exp: "all".to_string(),
        scale: 0.1,
        datasets: 5,
        nmax: 6,
        csv_dir: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |name: &str| -> Result<String, String> {
            args.next().ok_or_else(|| format!("--{name} needs a value"))
        };
        match arg.as_str() {
            "--exp" => opts.exp = take("exp")?,
            "--scale" => {
                opts.scale = take("scale")?
                    .parse()
                    .map_err(|_| "--scale: not a number".to_string())?
            }
            "--datasets" => {
                opts.datasets = take("datasets")?
                    .parse()
                    .map_err(|_| "--datasets: not a number".to_string())?
            }
            "--nmax" => {
                opts.nmax = take("nmax")?
                    .parse()
                    .map_err(|_| "--nmax: not a number".to_string())?
            }
            "--csv" => opts.csv_dir = Some(take("csv")?.into()),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if !["1", "2", "3", "all"].contains(&opts.exp.as_str()) {
        return Err(format!("--exp: unknown experiment `{}`", opts.exp));
    }
    if !(2..=6).contains(&opts.nmax) {
        return Err("--nmax must be between 2 and 6".to_string());
    }
    Ok(opts)
}

fn main() {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };

    println!(
        "building data sets (scale {}, {} sets)…",
        opts.scale, opts.datasets
    );
    let datasets = Datasets::build(opts.scale, opts.datasets);
    println!(
        "D1: {} events, W = {} at τ = {} (paper: W = 1322)",
        datasets.d1().len(),
        datasets.window_sizes[0],
        TAU,
    );
    for (i, w) in datasets.window_sizes.iter().enumerate() {
        println!("  D{}: W = {w}", i + 1);
    }
    println!();

    if let Some(dir) = &opts.csv_dir {
        std::fs::create_dir_all(dir).expect("can create the CSV output directory");
    }
    if opts.exp == "1" || opts.exp == "all" {
        experiment1(&datasets, opts.nmax, opts.csv_dir.as_deref());
    }
    if opts.exp == "2" || opts.exp == "all" {
        experiment2(&datasets, opts.csv_dir.as_deref());
    }
    if opts.exp == "3" || opts.exp == "all" {
        experiment3(&datasets, opts.csv_dir.as_deref());
    }
}

/// Writes one plottable CSV series file.
fn write_series(dir: &std::path::Path, name: &str, header: &str, rows: &[String]) {
    let path = dir.join(name);
    let mut body = String::from(header);
    body.push('\n');
    for r in rows {
        body.push_str(r);
        body.push('\n');
    }
    std::fs::write(&path, body).expect("can write series CSV");
    println!("wrote {}", path.display());
}

/// Paper Table 1 (P1 series): |V1|, |Ω|BF, |Ω|SES, ratio, (|V1|−1)!.
const PAPER_TABLE1: [(usize, u64, u64, f64); 5] = [
    (2, 45, 45, 1.0),
    (3, 101, 50, 2.0),
    (4, 341, 56, 6.1),
    (5, 2414, 99, 24.4),
    (6, 14150, 116, 122.0),
];

fn experiment1(datasets: &Datasets, nmax: usize, csv: Option<&std::path::Path>) {
    println!("== Experiment 1 — SES vs brute force (Figure 11, Table 1) ==");
    println!("measured peak |Ω| on D1; BF is the summed bank\n");
    let rows = run_exp1(datasets.d1(), 2..=nmax);

    let mut fig11 = Table::new(["|V1|", "BF P1", "SES P1", "BF P2", "SES P2"]);
    for r in &rows {
        fig11.row([
            r.n.to_string(),
            r.bf_p1.to_string(),
            r.ses_p1.to_string(),
            r.bf_p2.to_string(),
            r.ses_p2.to_string(),
        ]);
    }
    println!("Figure 11 (measured):\n{fig11}");
    if let Some(dir) = csv {
        let lines: Vec<String> = rows
            .iter()
            .map(|r| format!("{},{},{},{},{}", r.n, r.bf_p1, r.ses_p1, r.bf_p2, r.ses_p2))
            .collect();
        write_series(dir, "figure11.csv", "n,bf_p1,ses_p1,bf_p2,ses_p2", &lines);
    }

    let mut t1 = Table::new([
        "|V1|",
        "|Ω|BF",
        "|Ω|SES",
        "ratio",
        "(|V1|-1)!",
        "paper ratio",
    ]);
    for r in &rows {
        let paper = PAPER_TABLE1.iter().find(|p| p.0 == r.n);
        t1.row([
            r.n.to_string(),
            r.bf_p1.to_string(),
            r.ses_p1.to_string(),
            fmt_f64(r.ratio_p1(), 1),
            r.factorial_reference().to_string(),
            paper.map_or("-".into(), |p| fmt_f64(p.3, 1)),
        ]);
    }
    println!("Table 1 (P1; measured vs paper):\n{t1}");
    println!(
        "paper's Table 1 absolutes: BF {:?}, SES {:?}",
        PAPER_TABLE1.map(|p| p.1),
        PAPER_TABLE1.map(|p| p.2),
    );

    // Shape verdicts.
    let last = rows.last().expect("at least one row");
    let first = rows.first().expect("at least one row");
    println!("\nshape checks:");
    println!(
        "  P1 ratio grows ≈ (|V1|-1)!: measured {} at n={} (reference {})  {}",
        fmt_f64(last.ratio_p1(), 1),
        last.n,
        last.factorial_reference(),
        verdict(last.ratio_p1() >= 0.5 * last.factorial_reference() as f64),
    );
    println!(
        "  SES P1 stays near-flat: {} → {}  {}",
        first.ses_p1,
        last.ses_p1,
        verdict(last.ses_p1 < first.ses_p1.max(1) * last.n * last.n),
    );
    println!(
        "  BF ≥ SES everywhere  {}",
        verdict(
            rows.iter()
                .all(|r| r.bf_p1 >= r.ses_p1 && r.bf_p2 >= r.ses_p2)
        ),
    );
    println!();
}

fn experiment2(datasets: &Datasets, csv: Option<&std::path::Path>) {
    println!("== Experiment 2 — |Ω| vs window size (Figure 12) ==");
    println!(
        "P3 = ⟨{{c,d,p+}},{{b}}⟩ same type (Thm 3); P4 = ⟨{{c,d,p}},{{b}}⟩ same type (Thm 2)\n"
    );
    let rows = run_exp2(datasets);
    let mut fig12 = Table::new(["dataset", "W", "SES P3", "SES P4"]);
    for r in &rows {
        fig12.row([
            format!("D{}", r.k),
            r.w.to_string(),
            r.p3.to_string(),
            r.p4.to_string(),
        ]);
    }
    println!("Figure 12 (measured):\n{fig12}");
    if let Some(dir) = csv {
        let lines: Vec<String> = rows
            .iter()
            .map(|r| format!("{},{},{},{}", r.k, r.w, r.p3, r.p4))
            .collect();
        write_series(dir, "figure12.csv", "dataset,w,p3,p4", &lines);
    }
    println!("paper: P3 grows polynomially with W (≈8·10^4 at W = 6610); P4 grows ≈ linearly");

    if rows.len() >= 2 {
        let (f, l) = (&rows[0], &rows[rows.len() - 1]);
        let w_ratio = l.w as f64 / f.w as f64;
        let p3_growth = l.p3 as f64 / f.p3.max(1) as f64;
        let p4_growth = l.p4 as f64 / f.p4.max(1) as f64;
        println!("\nshape checks (W ×{}):", fmt_f64(w_ratio, 1));
        println!(
            "  P3 superlinear in W: growth ×{}  {}",
            fmt_f64(p3_growth, 1),
            verdict(p3_growth > 1.5 * w_ratio),
        );
        println!(
            "  P4 ≲ linear in W: growth ×{}  {}",
            fmt_f64(p4_growth, 1),
            verdict(p4_growth <= 2.0 * w_ratio),
        );
        println!(
            "  P3 dominates P4  {}",
            verdict(rows.iter().all(|r| r.p3 >= r.p4)),
        );
    }
    println!();
}

fn experiment3(datasets: &Datasets, csv: Option<&std::path::Path>) {
    println!("== Experiment 3 — effect of event filtering (Figure 13) ==");
    println!("P5 = mutually exclusive types; P6 = same type with p+; times in seconds\n");
    let rows = run_exp3(datasets);
    let mut fig13 = Table::new([
        "dataset",
        "W",
        "P5 no-filter",
        "P5 filter",
        "P6 no-filter",
        "P6 filter",
    ]);
    for r in &rows {
        fig13.row([
            format!("D{}", r.k),
            r.w.to_string(),
            fmt_f64(r.p5_unfiltered, 4),
            fmt_f64(r.p5_filtered, 4),
            fmt_f64(r.p6_unfiltered, 4),
            fmt_f64(r.p6_filtered, 4),
        ]);
    }
    println!("Figure 13 (measured):\n{fig13}");
    if let Some(dir) = csv {
        let lines: Vec<String> = rows
            .iter()
            .map(|r| {
                format!(
                    "{},{},{},{},{},{}",
                    r.k, r.w, r.p5_unfiltered, r.p5_filtered, r.p6_unfiltered, r.p6_filtered
                )
            })
            .collect();
        write_series(
            dir,
            "figure13.csv",
            "dataset,w,p5_unfiltered,p5_filtered,p6_unfiltered,p6_filtered",
            &lines,
        );
    }
    println!(
        "paper: filtering reduces execution time by ≈ an order of magnitude for both patterns"
    );

    let speedup_p5: Vec<f64> = rows
        .iter()
        .map(|r| r.p5_unfiltered / r.p5_filtered.max(1e-9))
        .collect();
    let speedup_p6: Vec<f64> = rows
        .iter()
        .map(|r| r.p6_unfiltered / r.p6_filtered.max(1e-9))
        .collect();
    let gmean = |xs: &[f64]| (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp();
    println!("\nshape checks:");
    println!(
        "  filter speedup P5: geometric mean ×{}  {}",
        fmt_f64(gmean(&speedup_p5), 1),
        verdict(gmean(&speedup_p5) > 2.0),
    );
    println!(
        "  filter speedup P6: geometric mean ×{}  {}",
        fmt_f64(gmean(&speedup_p6), 1),
        verdict(gmean(&speedup_p6) > 2.0),
    );
    println!();
}

fn verdict(ok: bool) -> &'static str {
    if ok {
        "[shape ✓]"
    } else {
        "[shape ✗]"
    }
}
