//! Server ingestion benchmark: sustained events/s over real TCP with
//! concurrent producer clients, plus queue pressure and in-band latency.
//!
//! ```text
//! cargo run -p ses-bench --release --bin server -- \
//!     [--events N] [--quick] [--durable] [--out FILE.json]
//! ```
//!
//! Each trial starts an in-process `ses-server` on an ephemeral port,
//! registers one standing subscription, and fans N producer threads out
//! over real sockets, each streaming its share of the events in
//! 256-event `batch` frames with a closing `sync` barrier — so the
//! reported rate includes JSON encode, TCP, parse, queue admission,
//! bank matching, and fan-out. A sampler connection pings throughout
//! the run; its round-trip percentiles measure in-band control latency
//! under full ingest load (the queue is serviced in arrival order, so a
//! ping's round trip bounds how stale a freshly enqueued event can be).
//! `--durable` adds the event log + checkpoint path, fsyncs included.
//! Writes `BENCH_server.json`; the CI smoke step runs `--quick`.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ses_event::{AttrType, Schema};
use ses_metrics::JsonValue;
use ses_query::TickUnit;
use ses_server::{Client, Server, ServerConfig};

const QUERY: &str = "PATTERN c THEN d WHERE c.L = 'C' AND d.L = 'D' WITHIN 50 TICKS";

struct Options {
    events: usize,
    durable: bool,
    out: PathBuf,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        events: 200_000,
        durable: false,
        out: "BENCH_server.json".into(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--events" => {
                opts.events = args
                    .next()
                    .ok_or("--events needs a value")?
                    .parse()
                    .map_err(|_| "--events: not a number".to_string())?
            }
            "--quick" => opts.events = 20_000,
            "--durable" => opts.durable = true,
            "--out" => opts.out = args.next().ok_or("--out needs a value")?.into(),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(opts)
}

fn schema() -> Schema {
    Schema::builder()
        .attr("ID", AttrType::Int)
        .attr("L", AttrType::Str)
        .build()
        .unwrap()
}

struct Trial {
    clients: usize,
    events: usize,
    secs: f64,
    events_per_sec: f64,
    matches: u64,
    queue_high_water: u64,
    queue_shed: u64,
    ping_p50_us: u64,
    ping_p99_us: u64,
}

/// One producer's slice: interleaved timestamps so all clients write the
/// same time range (exercising the cross-producer clamp), with a C/D
/// pair every ~500 events per client so the subscription stays hot.
/// Pairs are client-local — a connection's events stay ordered through
/// admission and the monotone clamp, so its own C still precedes its D
/// no matter how the clients race.
fn producer_events(client: usize, clients: usize, total: usize) -> Vec<(i64, Vec<JsonValue>)> {
    let per = total / clients;
    (0..per)
        .map(|j| {
            let ts = (j * clients + client) as i64;
            let label = match j % 500 {
                0 => "C",
                1 => "D",
                _ => "X",
            };
            (ts, vec![JsonValue::Int(ts), JsonValue::Str(label.into())])
        })
        .collect()
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

fn run_trial(clients: usize, total: usize, durable: Option<&PathBuf>) -> Trial {
    let mut config = ServerConfig::new(schema());
    config.tick = TickUnit::Abstract;
    config.queue_capacity = 4096;
    config.checkpoint = durable.cloned();
    let server = Server::start(config).expect("server start");
    let addr = format!("127.0.0.1:{}", server.port());

    let mut subscriber = Client::connect(&addr).unwrap();
    subscriber.subscribe("cd", QUERY, 0).unwrap();

    // In-band latency sampler: pings share the queue with the ingest
    // load, so their round trip tracks end-to-end admission latency.
    let stop = Arc::new(AtomicBool::new(false));
    let sampler = {
        let addr = addr.clone();
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut c = Client::connect(&addr).unwrap();
            c.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
            let mut rtts_us: Vec<u64> = Vec::new();
            while !stop.load(Ordering::Relaxed) {
                let t = Instant::now();
                if c.ping().is_err() {
                    break;
                }
                rtts_us.push(t.elapsed().as_micros() as u64);
                std::thread::sleep(Duration::from_millis(5));
            }
            rtts_us
        })
    };

    let started = Instant::now();
    let workers: Vec<_> = (0..clients)
        .map(|i| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut c = Client::connect(&addr).unwrap();
                c.set_read_timeout(Some(Duration::from_secs(60))).unwrap();
                let events = producer_events(i, clients, total);
                for chunk in events.chunks(256) {
                    c.batch(chunk).unwrap();
                }
                c.sync().unwrap();
            })
        })
        .collect();
    for w in workers {
        w.join().expect("producer thread");
    }
    let secs = started.elapsed().as_secs_f64();
    stop.store(true, Ordering::Relaxed);
    let mut rtts = sampler.join().expect("sampler thread");
    rtts.sort_unstable();

    let mut c = Client::connect(&addr).unwrap();
    let reply = c.stats().unwrap();
    let stats = reply.get("stats").and_then(JsonValue::as_object).unwrap();
    let queue = stats.get("queue").and_then(JsonValue::as_object).unwrap();
    let patterns = stats.get("patterns").and_then(JsonValue::as_array).unwrap();
    let matches = patterns
        .iter()
        .filter_map(|p| p.as_object()?.get("matches")?.as_u64())
        .sum();
    let consumed = stats.get("consumed").and_then(JsonValue::as_u64).unwrap();
    let sent = (total / clients * clients) as u64;
    assert_eq!(consumed, sent, "block policy must not lose events");

    let trial = Trial {
        clients,
        events: sent as usize,
        secs,
        events_per_sec: sent as f64 / secs.max(1e-12),
        matches,
        queue_high_water: queue
            .get("high_water")
            .and_then(JsonValue::as_u64)
            .unwrap_or(0),
        queue_shed: queue.get("shed").and_then(JsonValue::as_u64).unwrap_or(0),
        ping_p50_us: percentile(&rtts, 0.50),
        ping_p99_us: percentile(&rtts, 0.99),
    };
    server.stop().expect("server stop");
    trial
}

fn main() {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("server bench: {e}");
            std::process::exit(2);
        }
    };
    let scratch = opts
        .durable
        .then(|| std::env::temp_dir().join(format!("ses-bench-server-{}", std::process::id())));

    let mut rows = Vec::new();
    for clients in [1, 2, 4, 8] {
        if let Some(dir) = &scratch {
            std::fs::remove_dir_all(dir).ok();
        }
        ses_server::signal::reset();
        let t = run_trial(clients, opts.events, scratch.as_ref());
        println!(
            "{:>2} client(s): {:>9.0} events/s ({} events in {:.3}s), {} match(es), \
             queue high-water {}, ping p50 {}us p99 {}us",
            t.clients,
            t.events_per_sec,
            t.events,
            t.secs,
            t.matches,
            t.queue_high_water,
            t.ping_p50_us,
            t.ping_p99_us,
        );
        rows.push(format!(
            "    {{ \"clients\": {}, \"events\": {}, \"secs\": {:.6}, \
             \"events_per_sec\": {:.1}, \"matches\": {}, \"queue_high_water\": {}, \
             \"queue_shed\": {}, \"ping_p50_us\": {}, \"ping_p99_us\": {} }}",
            t.clients,
            t.events,
            t.secs,
            t.events_per_sec,
            t.matches,
            t.queue_high_water,
            t.queue_shed,
            t.ping_p50_us,
            t.ping_p99_us,
        ));
    }
    if let Some(dir) = &scratch {
        std::fs::remove_dir_all(dir).ok();
    }

    let json = format!(
        "{{\n  \"benchmark\": \"server ingestion over TCP\",\n  \"query\": \"CD pair, 5-tick window\",\n  \
         \"durable\": {},\n  \"batch\": 256,\n  \"queue_capacity\": 4096,\n  \"policy\": \"block\",\n  \
         \"trials\": [\n{}\n  ]\n}}\n",
        scratch.is_some(),
        rows.join(",\n"),
    );
    std::fs::write(&opts.out, &json).expect("can write the report");
    print!("{json}");
    println!("wrote {}", opts.out.display());
}
