//! Quick partitioning benchmark: Q1 throughput on D1, global scan vs
//! the analyzer-proven partition-parallel path.
//!
//! ```text
//! cargo run -p ses-bench --release --bin partitioning -- \
//!     [--scale F] [--iters N] [--threads N] [--out FILE.json]
//! ```
//!
//! Writes a small JSON report (default `BENCH_partitioning.json`) with
//! events/sec for both paths and the speedup — the CI smoke step runs
//! this at `--scale 0.1` and the committed report tracks the ratio.
//! Both paths are asserted to return the same matches before any number
//! is reported.

use ses_bench::datasets::Datasets;
use ses_core::{MatchSemantics, Matcher, MatcherOptions, PartitionMode};
use ses_event::Relation;
use ses_metrics::{CountingProbe, Stopwatch};
use ses_workload::paper;

struct Options {
    scale: f64,
    iters: usize,
    threads: Option<usize>,
    out: std::path::PathBuf,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        scale: 0.1,
        iters: 3,
        threads: None,
        out: "BENCH_partitioning.json".into(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |name: &str| -> Result<String, String> {
            args.next().ok_or_else(|| format!("--{name} needs a value"))
        };
        match arg.as_str() {
            "--scale" => {
                opts.scale = take("scale")?
                    .parse()
                    .map_err(|_| "--scale: not a number".to_string())?
            }
            "--iters" => {
                opts.iters = take("iters")?
                    .parse()
                    .map_err(|_| "--iters: not a number".to_string())?
            }
            "--threads" => {
                opts.threads = Some(
                    take("threads")?
                        .parse()
                        .map_err(|_| "--threads: not a number".to_string())?,
                )
            }
            "--out" => opts.out = take("out")?.into(),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if opts.iters == 0 {
        return Err("--iters must be positive".to_string());
    }
    Ok(opts)
}

/// Best-of-`iters` wall time of `f`.
fn best_secs(iters: usize, mut f: impl FnMut() -> usize) -> (f64, usize) {
    let mut best = f64::INFINITY;
    let mut matches = 0;
    for _ in 0..iters {
        let sw = Stopwatch::start();
        matches = f();
        best = best.min(sw.elapsed_secs());
    }
    (best, matches)
}

fn main() {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };

    let datasets = Datasets::build(opts.scale, 1);
    let d1: &Relation = datasets.d1();
    let events = d1.len();
    let q1 = paper::query_q1();
    let base = MatcherOptions {
        semantics: MatchSemantics::AllRuns,
        ..MatcherOptions::default()
    };
    let global = Matcher::with_options(&q1, d1.schema(), base.clone()).expect("Q1 compiles");
    let auto = Matcher::with_options(
        &q1,
        d1.schema(),
        MatcherOptions {
            partition: PartitionMode::Auto,
            threads: opts.threads,
            ..base
        },
    )
    .expect("Q1 compiles");
    let key = auto.partition_key().expect("the analyzer proves ID for Q1");

    // Same answer first, then the clock.
    let expect = global.find(d1);
    assert_eq!(auto.find(d1), expect, "partitioned answer must be global's");

    let (global_secs, n_global) = best_secs(opts.iters, || global.find(d1).len());
    let (part_secs, n_part) = best_secs(opts.iters, || auto.find(d1).len());
    assert_eq!(n_global, n_part);

    let mut layout = CountingProbe::new();
    ses_core::parallel::find_partitioned_with(&auto, d1, key, opts.threads, &mut layout, || {
        ses_core::NoProbe
    });
    let threads = opts.threads.unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    });

    let eps = |secs: f64| events as f64 / secs.max(1e-12);
    let speedup = global_secs / part_secs.max(1e-12);
    let json = format!(
        "{{\n  \"dataset\": \"D1\",\n  \"scale\": {},\n  \"events\": {},\n  \"matches\": {},\n  \
         \"query\": \"Q1\",\n  \"semantics\": \"all-runs\",\n  \"partition_key\": \"ID\",\n  \
         \"partitions\": {},\n  \"key_skew\": {:.3},\n  \"threads\": {},\n  \
         \"global\": {{ \"secs\": {:.6}, \"events_per_sec\": {:.1} }},\n  \
         \"partitioned\": {{ \"secs\": {:.6}, \"events_per_sec\": {:.1} }},\n  \
         \"speedup\": {:.2}\n}}\n",
        opts.scale,
        events,
        n_global,
        layout.partition_count(),
        layout.partition_skew(),
        threads,
        global_secs,
        eps(global_secs),
        part_secs,
        eps(part_secs),
        speedup,
    );
    std::fs::write(&opts.out, &json).expect("can write the report");
    print!("{json}");
    println!(
        "global {:.1} ev/s vs partitioned {:.1} ev/s — ×{:.2} ({} partitions, {} thread(s)); \
         wrote {}",
        eps(global_secs),
        eps(part_secs),
        speedup,
        layout.partition_count(),
        threads,
        opts.out.display(),
    );
}
