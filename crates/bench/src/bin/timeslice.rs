//! Quick time-slicing benchmark: a keyless ward-wide query on D1,
//! global scan vs the τ-overlapping time-sliced path.
//!
//! ```text
//! cargo run -p ses-bench --release --bin timeslice -- \
//!     [--scale F] [--iters N] [--threads N] [--out FILE.json]
//! ```
//!
//! The query correlates nothing across variables, so
//! `CompiledPattern::partition_keys` proves no key and key partitioning
//! cannot apply — time slicing is the only parallel strategy left.
//! Writes a small JSON report (default `BENCH_timeslice.json`) with
//! events/sec for both paths, the slice layout, the τ-overlap rescans,
//! and the speedup — the CI smoke step runs this at `--scale 0.1` and
//! the committed report tracks the ratio. Both paths are asserted to
//! return the same matches before any number is reported.

use ses_bench::datasets::Datasets;
use ses_core::{MatchSemantics, Matcher, MatcherOptions, PartitionMode, PartitionStrategy};
use ses_event::{CmpOp, Duration, Relation};
use ses_metrics::{CountingProbe, Stopwatch};
use ses_pattern::Pattern;

struct Options {
    scale: f64,
    iters: usize,
    threads: Option<usize>,
    out: std::path::PathBuf,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        scale: 0.1,
        iters: 3,
        threads: None,
        out: "BENCH_timeslice.json".into(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |name: &str| -> Result<String, String> {
            args.next().ok_or_else(|| format!("--{name} needs a value"))
        };
        match arg.as_str() {
            "--scale" => {
                opts.scale = take("scale")?
                    .parse()
                    .map_err(|_| "--scale: not a number".to_string())?
            }
            "--iters" => {
                opts.iters = take("iters")?
                    .parse()
                    .map_err(|_| "--iters: not a number".to_string())?
            }
            "--threads" => {
                opts.threads = Some(
                    take("threads")?
                        .parse()
                        .map_err(|_| "--threads: not a number".to_string())?,
                )
            }
            "--out" => opts.out = take("out")?.into(),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if opts.iters == 0 {
        return Err("--iters must be positive".to_string());
    }
    Ok(opts)
}

/// Ward-wide Ciclofosfamide-then-bloodcount within 48 h, for *any* pair
/// of patients — deliberately uncorrelated so no partition key exists.
fn keyless_query() -> Pattern {
    Pattern::builder()
        .set(|s| s.var("c"))
        .set(|s| s.var("b"))
        .cond_const("c", "L", CmpOp::Eq, "C")
        .cond_const("b", "L", CmpOp::Eq, "B")
        .within(Duration::ticks(48))
        .build()
        .expect("keyless query builds")
}

/// Best-of-`iters` wall time of `f`.
fn best_secs(iters: usize, mut f: impl FnMut() -> usize) -> (f64, usize) {
    let mut best = f64::INFINITY;
    let mut matches = 0;
    for _ in 0..iters {
        let sw = Stopwatch::start();
        matches = f();
        best = best.min(sw.elapsed_secs());
    }
    (best, matches)
}

fn main() {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };

    let datasets = Datasets::build(opts.scale, 1);
    let d1: &Relation = datasets.d1();
    let events = d1.len();
    let query = keyless_query();
    let base = MatcherOptions {
        semantics: MatchSemantics::AllRuns,
        ..MatcherOptions::default()
    };
    let global = Matcher::with_options(&query, d1.schema(), base.clone()).expect("query compiles");
    let sliced = Matcher::with_options(
        &query,
        d1.schema(),
        MatcherOptions {
            partition: PartitionMode::TimeAuto,
            threads: opts.threads,
            ..base
        },
    )
    .expect("query compiles");
    assert_eq!(
        sliced.partition_strategy(),
        PartitionStrategy::TimeSliced,
        "the query must prove no key so TimeAuto slices by time"
    );

    // Same answer first, then the clock.
    let expect = global.find(d1);
    assert_eq!(sliced.find(d1), expect, "sliced answer must be global's");

    let (global_secs, n_global) = best_secs(opts.iters, || global.find(d1).len());
    let (sliced_secs, n_sliced) = best_secs(opts.iters, || sliced.find(d1).len());
    assert_eq!(n_global, n_sliced);

    let mut layout = CountingProbe::new();
    ses_core::parallel::find_time_sliced_with(&sliced, d1, opts.threads, &mut layout, || {
        ses_core::NoProbe
    });
    let threads = opts.threads.unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    });

    let eps = |secs: f64| events as f64 / secs.max(1e-12);
    let speedup = global_secs / sliced_secs.max(1e-12);
    let overlap = layout.slice_overlap_events(events);
    let json = format!(
        "{{\n  \"dataset\": \"D1\",\n  \"scale\": {},\n  \"events\": {},\n  \"matches\": {},\n  \
         \"query\": \"ward C->B (keyless)\",\n  \"semantics\": \"all-runs\",\n  \
         \"slices\": {},\n  \"overlap_events\": {},\n  \"threads\": {},\n  \
         \"global\": {{ \"secs\": {:.6}, \"events_per_sec\": {:.1} }},\n  \
         \"time_sliced\": {{ \"secs\": {:.6}, \"events_per_sec\": {:.1} }},\n  \
         \"speedup\": {:.2}\n}}\n",
        opts.scale,
        events,
        n_global,
        layout.slice_count(),
        overlap,
        threads,
        global_secs,
        eps(global_secs),
        sliced_secs,
        eps(sliced_secs),
        speedup,
    );
    std::fs::write(&opts.out, &json).expect("can write the report");
    print!("{json}");
    println!(
        "global {:.1} ev/s vs time-sliced {:.1} ev/s — ×{:.2} ({} slice(s), {} overlap event(s), \
         {} thread(s)); wrote {}",
        eps(global_secs),
        eps(sliced_secs),
        speedup,
        layout.slice_count(),
        overlap,
        threads,
        opts.out.display(),
    );
}
