//! Quick durability benchmark: checkpoint overhead vs interval, and
//! recovery time vs log length, for Q1 streaming over D1.
//!
//! ```text
//! cargo run -p ses-bench --release --bin durability -- \
//!     [--scale F] [--iters N] [--out FILE.json]
//! ```
//!
//! Overhead is measured end to end against a checkpoint-free stream of
//! the same events: the checkpointed runs sync a real `MatchLog` and
//! save through a real `CheckpointStore` (atomic tmp+rename, keep 3),
//! so the numbers include the fsyncs. Recovery restores a mid-stream
//! checkpoint and replays the `EventLog` suffix, so its cost is the
//! log scan plus re-matching half the events. The match count of every
//! variant is asserted equal to the baseline's before any number is
//! reported. Writes a small JSON report (default
//! `BENCH_durability.json`); the CI smoke step runs this at
//! `--scale 0.1`.

use ses_bench::datasets::Datasets;
use ses_core::{MatcherOptions, MatcherSnapshot, StreamMatcher};
use ses_event::{Event, Relation, Timestamp};
use ses_metrics::Stopwatch;
use ses_store::{CheckpointStore, EventLog, LogConfig, MatchLog};
use ses_workload::paper;

struct Options {
    scale: f64,
    iters: usize,
    out: std::path::PathBuf,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        scale: 0.1,
        iters: 3,
        out: "BENCH_durability.json".into(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |name: &str| -> Result<String, String> {
            args.next().ok_or_else(|| format!("--{name} needs a value"))
        };
        match arg.as_str() {
            "--scale" => {
                opts.scale = take("scale")?
                    .parse()
                    .map_err(|_| "--scale: not a number".to_string())?
            }
            "--iters" => {
                opts.iters = take("iters")?
                    .parse()
                    .map_err(|_| "--iters: not a number".to_string())?
            }
            "--out" => opts.out = take("out")?.into(),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if opts.iters == 0 {
        return Err("--iters must be positive".to_string());
    }
    Ok(opts)
}

/// Streams `events`, checkpointing every `every` pushes when a store is
/// given; returns (matches, checkpoints, bytes).
fn stream_once(
    matcher_of: &impl Fn() -> StreamMatcher,
    events: &[Event],
    dur: Option<(&mut CheckpointStore, &mut MatchLog, usize)>,
) -> (usize, u64, u64) {
    let mut sm = matcher_of();
    let mut matches = 0usize;
    let (mut ckpts, mut bytes) = (0u64, 0u64);
    match dur {
        None => {
            for e in events {
                matches += sm.push(e.ts(), e.values().to_vec()).unwrap().len();
            }
        }
        Some((store, sink, every)) => {
            let mut since = 0usize;
            for e in events {
                for m in sm.push(e.ts(), e.values().to_vec()).unwrap() {
                    let _ = m;
                    matches += 1;
                    sink.append("m").unwrap();
                }
                since += 1;
                if since >= every {
                    since = 0;
                    sink.sync().unwrap();
                    let info = store.save(&MatcherSnapshot::Stream(sm.snapshot())).unwrap();
                    ckpts += 1;
                    bytes += info.bytes;
                }
            }
        }
    }
    matches += sm.finish().len();
    (matches, ckpts, bytes)
}

fn best_secs<T>(iters: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..iters {
        let sw = Stopwatch::start();
        last = Some(f());
        best = best.min(sw.elapsed_secs());
    }
    (best, last.expect("iters > 0"))
}

fn main() {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };

    let datasets = Datasets::build(opts.scale, 1);
    let d1: &Relation = datasets.d1();
    let events: Vec<Event> = d1.iter().map(|(_, e)| e.clone()).collect();
    let q1 = paper::query_q1();
    let matcher_of = || {
        StreamMatcher::with_options(&q1, d1.schema(), MatcherOptions::default())
            .expect("Q1 compiles")
            .with_eviction(true)
    };
    let scratch = std::env::temp_dir().join(format!("ses-bench-dur-{}", std::process::id()));
    std::fs::remove_dir_all(&scratch).ok();

    // Baseline: no durability.
    let (base_secs, (base_matches, _, _)) =
        best_secs(opts.iters, || stream_once(&matcher_of, &events, None));

    // Checkpoint overhead vs interval.
    let mut interval_rows = Vec::new();
    for every in [100usize, 500, 2000] {
        let dir = scratch.join(format!("every-{every}"));
        let (secs, (matches, ckpts, bytes)) = best_secs(opts.iters, || {
            std::fs::remove_dir_all(&dir).ok();
            let mut store = CheckpointStore::open(&dir, 3).unwrap();
            let mut sink = MatchLog::open(dir.join("matches.log")).unwrap();
            stream_once(&matcher_of, &events, Some((&mut store, &mut sink, every)))
        });
        assert_eq!(
            matches, base_matches,
            "checkpointing must not change matches"
        );
        interval_rows.push(format!(
            "    {{ \"every\": {every}, \"secs\": {secs:.6}, \"checkpoints\": {ckpts}, \
             \"bytes\": {bytes}, \"overhead\": {:.4} }}",
            secs / base_secs.max(1e-12) - 1.0
        ));
    }

    // Recovery time vs log length: checkpoint at the halfway point,
    // then time restore + EventLog suffix replay + finish.
    let mut recovery_rows = Vec::new();
    for percent in [25usize, 50, 100] {
        let n = (events.len() * percent) / 100;
        let prefix = &events[..n / 2];
        let dir = scratch.join(format!("recover-{percent}"));
        std::fs::remove_dir_all(&dir).ok();
        let mut log = EventLog::create(&dir, d1.schema().clone(), LogConfig::default()).unwrap();
        for e in &events[..n] {
            log.append(e.ts(), e.values().to_vec()).unwrap();
        }
        log.sync().unwrap();

        let mut store = CheckpointStore::open(&dir, 3).unwrap();
        let mut sm = matcher_of();
        let mut emitted = 0usize;
        for e in prefix {
            emitted += sm.push(e.ts(), e.values().to_vec()).unwrap().len();
        }
        store.save(&MatcherSnapshot::Stream(sm.snapshot())).unwrap();
        drop(sm); // the crash

        let reference = {
            let (m, _, _) = stream_once(&matcher_of, &events[..n], None);
            m
        };
        let (secs, (matches, replayed)) = best_secs(opts.iters, || {
            let loaded = store.load_latest().unwrap().expect("just saved");
            let MatcherSnapshot::Stream(ref s) = loaded.snapshot else {
                panic!("global snapshot expected");
            };
            let mut sm =
                StreamMatcher::restore(&q1, d1.schema(), MatcherOptions::default(), s).unwrap();
            let replay = match loaded.snapshot.replay_from() {
                Some(from) => log.scan_range(from, Timestamp::MAX).unwrap(),
                None => log.scan().unwrap(),
            };
            let skip = sm.ties_at_watermark();
            let mut matches = emitted;
            let mut replayed = 0usize;
            for (_, e) in replay.iter().skip(skip) {
                matches += sm.push(e.ts(), e.values().to_vec()).unwrap().len();
                replayed += 1;
            }
            matches += sm.finish().len();
            (matches, replayed)
        });
        assert_eq!(matches, reference, "recovery must not change matches");
        recovery_rows.push(format!(
            "    {{ \"log_events\": {n}, \"replayed\": {replayed}, \"secs\": {secs:.6} }}"
        ));
    }
    std::fs::remove_dir_all(&scratch).ok();

    let json = format!(
        "{{\n  \"dataset\": \"D1\",\n  \"scale\": {},\n  \"events\": {},\n  \
         \"matches\": {},\n  \"query\": \"Q1\",\n  \"semantics\": \"maximal\",\n  \
         \"baseline\": {{ \"secs\": {:.6}, \"events_per_sec\": {:.1} }},\n  \
         \"checkpoint_overhead\": [\n{}\n  ],\n  \"recovery\": [\n{}\n  ]\n}}\n",
        opts.scale,
        events.len(),
        base_matches,
        base_secs,
        events.len() as f64 / base_secs.max(1e-12),
        interval_rows.join(",\n"),
        recovery_rows.join(",\n"),
    );
    std::fs::write(&opts.out, &json).expect("can write the report");
    print!("{json}");
    println!(
        "baseline {:.3}s; checkpoint overhead measured at 3 intervals; \
         recovery timed at 3 log lengths; wrote {}",
        base_secs,
        opts.out.display(),
    );
}
