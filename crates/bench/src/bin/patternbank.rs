//! Multi-pattern bank benchmark: throughput vs. the number of
//! registered patterns, predicate index on vs. off.
//!
//! ```text
//! cargo run -p ses-bench --release --bin patternbank -- \
//!     [--events N] [--iters N] [--quick] [--out FILE.json]
//! ```
//!
//! For each bank size the same stream is pushed through a
//! [`ses_core::PatternBank`] with the event→pattern predicate index
//! enabled and disabled, and — on a correlated variant of the pattern
//! set where 75% of the patterns open with one shared anchor set —
//! with structural sharing enabled and disabled. Outputs are asserted
//! identical before any number is reported; the committed report
//! (`BENCH_patternbank.json`) tracks the routed-push reduction and the
//! resulting `speedup` per size, plus the `shared_speedup` won by
//! evaluating each shared prefix once. The CI smoke step runs this
//! with `--quick`.

use ses_core::{Match, MatcherOptions, PatternBank};
use ses_event::Relation;
use ses_metrics::Stopwatch;
use ses_pattern::Pattern;
use ses_workload::bank::{schema, BankConfig};

struct Options {
    events: usize,
    iters: usize,
    out: std::path::PathBuf,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        events: 20_000,
        iters: 3,
        out: "BENCH_patternbank.json".into(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |name: &str| -> Result<String, String> {
            args.next().ok_or_else(|| format!("--{name} needs a value"))
        };
        match arg.as_str() {
            "--events" => {
                opts.events = take("events")?
                    .parse()
                    .map_err(|_| "--events: not a number".to_string())?
            }
            "--iters" => {
                opts.iters = take("iters")?
                    .parse()
                    .map_err(|_| "--iters: not a number".to_string())?
            }
            "--quick" => {
                opts.events = 2_000;
                opts.iters = 1;
            }
            "--out" => opts.out = take("out")?.into(),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if opts.iters == 0 || opts.events == 0 {
        return Err("--iters and --events must be positive".to_string());
    }
    Ok(opts)
}

fn build_bank(named: &[(String, Pattern)], use_index: bool, share: bool) -> PatternBank {
    let mut builder = PatternBank::builder(&schema())
        .with_index(use_index)
        .with_sharing(share);
    for (name, p) in named {
        builder = builder
            .register(name.clone(), p, MatcherOptions::default())
            .expect("bank pattern compiles");
    }
    builder.build()
}

/// One full pass; returns the complete per-pattern output and the
/// routed-push count.
fn run_once(
    named: &[(String, Pattern)],
    rel: &Relation,
    use_index: bool,
    share: bool,
) -> (Vec<(usize, Match)>, u64) {
    let mut bank = build_bank(named, use_index, share);
    let mut out = Vec::new();
    for (_, e) in rel.iter() {
        out.extend(
            bank.push(e.ts(), e.values().to_vec())
                .expect("stream is chronological"),
        );
    }
    let hits = bank.total_hits();
    out.extend(bank.finish());
    (out, hits)
}

/// Best-of-`iters` wall time of a full pass.
fn best_secs(
    named: &[(String, Pattern)],
    rel: &Relation,
    use_index: bool,
    share: bool,
    iters: usize,
) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let sw = Stopwatch::start();
        std::hint::black_box(run_once(named, rel, use_index, share));
        best = best.min(sw.elapsed_secs());
    }
    best
}

fn main() {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };

    let mut rows = Vec::new();
    for n in [4usize, 16, 64] {
        let cfg = BankConfig::small()
            .with_patterns(n)
            .with_events(opts.events);
        let rel = ses_workload::bank::generate(&cfg);
        let named = ses_workload::bank::patterns(&cfg);

        // Same answer first, then the clock.
        let (with_index, hits_on) = run_once(&named, &rel, true, false);
        let (without_index, hits_off) = run_once(&named, &rel, false, false);
        assert_eq!(
            with_index, without_index,
            "index changed the answer at {n} patterns"
        );
        assert_eq!(hits_off, (n * opts.events) as u64);
        assert!(
            hits_on < hits_off,
            "the index must strictly reduce per-pattern pushes ({hits_on} vs {hits_off})"
        );

        let on_secs = best_secs(&named, &rel, true, false, opts.iters);
        let off_secs = best_secs(&named, &rel, false, false, opts.iters);
        let eps = |secs: f64| opts.events as f64 / secs.max(1e-12);
        println!(
            "{n:>3} patterns: index on {:.1} ev/s ({hits_on} pushes) vs off {:.1} ev/s \
             ({hits_off} pushes) — ×{:.2}",
            eps(on_secs),
            eps(off_secs),
            off_secs / on_secs.max(1e-12),
        );
        // Correlated variant: 75% of the patterns open with the same
        // anchor set, so `--share` folds them into one prefix pool.
        // Identical answers first, then the clock (index on for both
        // sides — the axis under test is sharing alone).
        let ccfg = cfg.clone().with_overlap(0.75).with_anchor_share(0.4);
        let crel = ses_workload::bank::generate(&ccfg);
        let cnamed = ses_workload::bank::patterns(&ccfg);
        let (shared, _) = run_once(&cnamed, &crel, true, true);
        let (unshared, _) = run_once(&cnamed, &crel, true, false);
        assert_eq!(
            shared, unshared,
            "sharing changed the answer at {n} patterns"
        );
        let sh_secs = best_secs(&cnamed, &crel, true, true, opts.iters);
        let un_secs = best_secs(&cnamed, &crel, true, false, opts.iters);
        let shared_speedup = un_secs / sh_secs.max(1e-12);
        println!(
            "{n:>3} patterns, {} sharing an anchor prefix: shared {:.1} ev/s vs \
             unshared {:.1} ev/s — ×{shared_speedup:.2}",
            ccfg.overlapped_patterns(),
            eps(sh_secs),
            eps(un_secs),
        );
        rows.push(format!(
            "    {{ \"patterns\": {n}, \"events\": {}, \"matches\": {},\n      \
             \"index_on\": {{ \"secs\": {:.6}, \"events_per_sec\": {:.1}, \"routed_pushes\": {hits_on} }},\n      \
             \"index_off\": {{ \"secs\": {:.6}, \"events_per_sec\": {:.1}, \"routed_pushes\": {hits_off} }},\n      \
             \"push_reduction\": {:.3}, \"speedup\": {:.2},\n      \
             \"correlated\": {{ \"overlap\": {:.2}, \"overlapped_patterns\": {}, \"matches\": {},\n        \
             \"shared\": {{ \"secs\": {:.6}, \"events_per_sec\": {:.1} }},\n        \
             \"unshared\": {{ \"secs\": {:.6}, \"events_per_sec\": {:.1} }},\n        \
             \"shared_speedup\": {shared_speedup:.2} }} }}",
            opts.events,
            with_index.len(),
            on_secs,
            eps(on_secs),
            off_secs,
            eps(off_secs),
            1.0 - hits_on as f64 / hits_off as f64,
            off_secs / on_secs.max(1e-12),
            ccfg.overlap,
            ccfg.overlapped_patterns(),
            shared.len(),
            sh_secs,
            eps(sh_secs),
            un_secs,
            eps(un_secs),
        ));
    }

    let json = format!(
        "{{\n  \"workload\": \"bank (disjoint type pairs, ID-correlated; correlated axis shares one anchor prefix)\",\n  \
         \"events\": {},\n  \"iters\": {},\n  \"sizes\": [\n{}\n  ]\n}}\n",
        opts.events,
        opts.iters,
        rows.join(",\n"),
    );
    std::fs::write(&opts.out, &json).expect("can write the report");
    print!("{json}");
    println!("wrote {}", opts.out.display());
}
