//! Columnar hot-path throughput benchmark: batch bitmask admission vs.
//! scalar, a 100M-event streaming tier, and per-push allocation counts.
//!
//! ```text
//! cargo run -p ses-bench --release --bin throughput -- \
//!     [--quick] [--events N] [--iters N] [--out FILE.json]
//! ```
//!
//! Three tiers, all on the chemotherapy workload (Q1's seven `Str`-Eq
//! constant lanes over `L`), all asserting identical matches before any
//! number is reported:
//!
//! 1. **batch find** — whole-relation `Matcher::find` on a
//!    constant-heavy D1-style relation (auxiliary clinical events
//!    dominate, so admission cost dominates), columnar forced on vs.
//!    off, interleaved best-of-`iters`.
//! 2. **streaming** — 100M events by cyclic epoch replay of that
//!    relation (each epoch time-shifted past `τ`, so eviction keeps
//!    memory bounded), pushed in 512-event micro-batches through the
//!    columnar path; a scalar per-event subset gives the normalized
//!    comparison.
//! 3. **allocations** — a counting global allocator (local to this
//!    binary: `ses-core` itself forbids unsafe code) measures per-push
//!    heap allocations in steady state, categorized into idle
//!    (filtered, no selection work fired), advancing, and emitting
//!    pushes. Idle pushes must be allocation-free; the per-event rate
//!    flows through [`ses_core::Probe::allocations`] into the standard
//!    counting probe.
//!
//! The admission tiers (1, 2) run under `AllRuns` semantics to isolate
//! the per-event admission cost from selection. A fourth tier measures
//! the default **Maximal** semantics directly: batch `find` and a
//! streaming run under the indexed adjudicator
//! ([`ses_core::AdjudicationMode::Indexed`]) against the legacy pairwise
//! scan, asserting identical match sets before any clock. (Before the
//! indexed adjudicator, Maximal selection was the recorded `O(R²)` gap:
//! 4.3 s of pairwise adjudication over a 0.03 s engine run.) The
//! allocation tier keeps the deployment-default `Maximal` path, so the
//! allocation-free claim covers the adjudicator's no-op pushes too;
//! pushes where the watermark drains a buffered adjudication group are
//! `advancing` — building that group's indexes allocates by design.
//!
//! The committed report is `BENCH_throughput.json`; CI runs `--quick`
//! and fails if any tier reports `"outputs_identical": false`.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use ses_core::{
    AdjudicationMode, ColumnarMode, Match, MatchSemantics, Matcher, MatcherOptions, Probe,
    StreamMatcher,
};
use ses_event::{Event, Relation};
use ses_metrics::{CountingProbe, Stopwatch};
use ses_pattern::Pattern;
use ses_workload::chemo::ChemoConfig;

/// Counts every heap allocation. Deallocations are deliberately not
/// tracked — the claim under test is "the steady-state push path does
/// not *allocate*", and frees of pooled buffers would only obscure it.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static COUNTING: CountingAlloc = CountingAlloc;

fn allocs_now() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// Streaming micro-batch size: large enough to amortize the lane pass,
/// small enough that emission latency stays in the hundreds of events.
const BATCH: usize = 512;

struct Options {
    /// Total events in the streaming tier.
    stream_events: u64,
    /// Timing repetitions for the batch-find tier (best-of).
    iters: usize,
    /// Scale factor for the batch-find relation.
    find_scale: f64,
    /// Auxiliary clinical events per day in the constant-heavy tiers.
    aux_per_day: f64,
    quick: bool,
    out: std::path::PathBuf,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        stream_events: 100_000_000,
        iters: 5,
        find_scale: 4.0,
        aux_per_day: 100.0,
        quick: false,
        out: "BENCH_throughput.json".into(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |name: &str| -> Result<String, String> {
            args.next().ok_or_else(|| format!("--{name} needs a value"))
        };
        match arg.as_str() {
            "--events" => {
                opts.stream_events = take("events")?
                    .parse()
                    .map_err(|_| "--events: not a number".to_string())?
            }
            "--iters" => {
                opts.iters = take("iters")?
                    .parse()
                    .map_err(|_| "--iters: not a number".to_string())?
            }
            "--quick" => {
                opts.quick = true;
                opts.stream_events = 200_000;
                opts.iters = 2;
                opts.find_scale = 0.25;
            }
            "--aux" => {
                opts.aux_per_day = take("aux")?
                    .parse()
                    .map_err(|_| "--aux: not a number".to_string())?
            }
            "--out" => opts.out = take("out")?.into(),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if opts.iters == 0 || opts.stream_events == 0 {
        return Err("--iters and --events must be positive".to_string());
    }
    Ok(opts)
}

/// The benchmark pattern: Experiment 1's P1 at `|V1| = 6` — six
/// mutually exclusive medication types THEN `b`, i.e. seven distinct
/// `Str`-equality constant lanes on `L`.
fn bench_pattern() -> Pattern {
    ses_workload::paper::exp1_p1(6)
}

/// Constant-heavy D1 variant: the paper's D1 calibration with the
/// auxiliary-event rate raised so ~95% of events satisfy no constant
/// condition — the admission-dominated regime the columnar layer
/// targets (real ward data is similarly aux-dominated) — and patient
/// start times staggered 4× wider, which bounds how many patients
/// overlap one `τ`-window and with them the live-instance count `|Ω|`.
fn constant_heavy_d1(scale: f64, aux_per_day: f64) -> Relation {
    let mut cfg = ChemoConfig::paper_d1().scaled(scale);
    cfg.aux_per_day = aux_per_day;
    cfg.stagger_hours *= 4;
    ses_workload::chemo::generate(&cfg)
}

fn matcher(columnar: ColumnarMode) -> Matcher {
    Matcher::with_options(
        &bench_pattern(),
        &ses_workload::paper::schema(),
        MatcherOptions {
            columnar,
            semantics: MatchSemantics::AllRuns,
            ..MatcherOptions::default()
        },
    )
    .expect("benchmark pattern compiles")
}

/// A matcher under the deployment-default Maximal semantics with an
/// explicit adjudicator implementation.
fn maximal_matcher(adjudication: AdjudicationMode) -> Matcher {
    Matcher::with_options(
        &bench_pattern(),
        &ses_workload::paper::schema(),
        MatcherOptions {
            adjudication,
            semantics: MatchSemantics::Maximal,
            ..MatcherOptions::default()
        },
    )
    .expect("benchmark pattern compiles")
}

fn sorted_find(m: &Matcher, rel: &Relation) -> Vec<Match> {
    let mut out = m.find(rel);
    out.sort();
    out
}

/// Best-of-`iters` wall time for both matchers, *interleaved* — each
/// round times scalar and columnar back to back, so scheduler noise on
/// a shared core hits both sides of the ratio alike.
fn best_find_secs(a: &Matcher, b: &Matcher, rel: &Relation, iters: usize) -> (f64, f64) {
    let mut best = (f64::INFINITY, f64::INFINITY);
    for _ in 0..iters {
        let sw = Stopwatch::start();
        std::hint::black_box(a.find(rel));
        best.0 = best.0.min(sw.elapsed_secs());
        let sw = Stopwatch::start();
        std::hint::black_box(b.find(rel));
        best.1 = best.1.min(sw.elapsed_secs());
    }
    best
}

struct MachineInfo {
    cpu: String,
    cores: usize,
}

fn machine_info() -> MachineInfo {
    let cpu = std::fs::read_to_string("/proc/cpuinfo")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("model name"))
                .and_then(|l| l.split(':').nth(1))
                .map(|v| v.trim().to_string())
        })
        .unwrap_or_else(|| "unknown".into());
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    MachineInfo { cpu, cores }
}

/// Tier 1: whole-relation `find`, columnar vs. scalar.
fn batch_find_tier(opts: &Options) -> (String, bool) {
    let rel = constant_heavy_d1(opts.find_scale, opts.aux_per_day);
    let col = matcher(ColumnarMode::On);
    let sca = matcher(ColumnarMode::Off);

    // Identical answers first, then the clock.
    let col_matches = sorted_find(&col, &rel);
    let sca_matches = sorted_find(&sca, &rel);
    let identical = col_matches == sca_matches;
    assert!(identical, "columnar changed the batch-find answer");

    let (sca_secs, col_secs) = best_find_secs(&sca, &col, &rel, opts.iters);
    let eps = |secs: f64| rel.len() as f64 / secs.max(1e-12);
    let speedup = sca_secs / col_secs.max(1e-12);
    println!(
        "batch find : {} events, {} matches — columnar {:.0} ev/s vs scalar {:.0} ev/s — ×{speedup:.2}",
        rel.len(),
        col_matches.len(),
        eps(col_secs),
        eps(sca_secs),
    );
    let json = format!(
        "  \"batch_find\": {{\n    \
         \"workload\": \"chemo D1 ×{:.1}, aux_per_day={} (constant-heavy), exp1_p1(6): 7 Str-Eq lanes\",\n    \
         \"events\": {}, \"matches\": {}, \"iters\": {}, \"outputs_identical\": {identical},\n    \
         \"columnar\": {{ \"secs\": {col_secs:.6}, \"events_per_sec\": {:.1} }},\n    \
         \"scalar\": {{ \"secs\": {sca_secs:.6}, \"events_per_sec\": {:.1} }},\n    \
         \"speedup\": {speedup:.2}\n  }}",
        opts.find_scale,
        opts.aux_per_day,
        rel.len(),
        col_matches.len(),
        opts.iters,
        eps(col_secs),
        eps(sca_secs),
    );
    (json, identical)
}

/// Pushes `total` events through a stream matcher by cyclic epoch
/// replay of `base`, each epoch shifted past the previous one by more
/// than `τ`. Returns `(matches, probe)`.
fn replay<F: FnMut(&mut StreamMatcher, Vec<Event>, &mut CountingProbe) -> usize>(
    base: &[Event],
    epoch_offset: i64,
    total: u64,
    options: MatcherOptions,
    mut push: F,
) -> (usize, CountingProbe) {
    let mut sm =
        StreamMatcher::with_options(&bench_pattern(), &ses_workload::paper::schema(), options)
            .expect("benchmark pattern compiles")
            .with_eviction(true);
    let mut probe = CountingProbe::new();
    let mut matches = 0usize;
    let mut pushed = 0u64;
    let mut epoch = 0i64;
    'outer: loop {
        let off = epoch * epoch_offset;
        for chunk in base.chunks(BATCH) {
            let remaining = total - pushed;
            let take = (remaining as usize).min(chunk.len());
            let shifted: Vec<Event> = chunk[..take].iter().map(|e| e.shifted(off)).collect();
            pushed += take as u64;
            matches += push(&mut sm, shifted, &mut probe);
            if pushed == total {
                break 'outer;
            }
        }
        epoch += 1;
    }
    matches += sm.finish().len();
    (matches, probe)
}

/// Options for the admission tiers: `AllRuns` isolates the per-event
/// admission cost from selection.
fn stream_options(columnar: ColumnarMode) -> MatcherOptions {
    MatcherOptions {
        columnar,
        semantics: MatchSemantics::AllRuns,
        ..MatcherOptions::default()
    }
}

/// Tier 2: the 100M-event streaming tier.
fn streaming_tier(opts: &Options) -> (String, bool) {
    let rel = constant_heavy_d1(1.0, opts.aux_per_day);
    let base: Vec<Event> = rel.events().to_vec();
    let span = base.last().expect("non-empty").ts().ticks() - base[0].ts().ticks();
    // Past the window τ = 264h, so no instance survives an epoch seam
    // and eviction keeps the retained relation flat.
    let epoch_offset = span + 264 + 1;

    // Answer parity on one epoch: columnar micro-batches vs scalar
    // per-event pushes.
    let one_epoch = base.len() as u64;
    let (m_col, _) = replay(
        &base,
        epoch_offset,
        one_epoch,
        stream_options(ColumnarMode::On),
        |sm, chunk, p| {
            sm.push_batch_with_probe(chunk, p)
                .expect("chronological")
                .len()
        },
    );
    let (m_sca, _) = replay(
        &base,
        epoch_offset,
        one_epoch,
        stream_options(ColumnarMode::Off),
        |sm, chunk, p| {
            chunk
                .into_iter()
                .map(|e| sm.push_event_with_probe(e, p).expect("chronological").len())
                .sum()
        },
    );
    let identical = m_col == m_sca;
    assert!(
        identical,
        "streaming parity broke: {m_col} vs {m_sca} matches"
    );

    // The headline run: `total` events, columnar micro-batches.
    let total = opts.stream_events;
    let sw = Stopwatch::start();
    let (matches, probe) = replay(
        &base,
        epoch_offset,
        total,
        stream_options(ColumnarMode::Auto),
        |sm, chunk, p| {
            sm.push_batch_with_probe(chunk, p)
                .expect("chronological")
                .len()
        },
    );
    let col_secs = sw.elapsed_secs();
    let col_eps = total as f64 / col_secs.max(1e-12);

    // Scalar comparison on a subset (per-event pushes are the
    // pre-columnar deployment shape), normalized to events/sec. The
    // subset must itself be far past the steady-state retained size
    // (several epochs) for the rates to be comparable, so it is only
    // shrunk for truly long runs.
    let subset = if total > 20_000_000 {
        total / 10
    } else {
        total
    };
    let sw = Stopwatch::start();
    let (_, _) = replay(
        &base,
        epoch_offset,
        subset,
        stream_options(ColumnarMode::Off),
        |sm, chunk, p| {
            chunk
                .into_iter()
                .map(|e| sm.push_event_with_probe(e, p).expect("chronological").len())
                .sum()
        },
    );
    let sca_secs = sw.elapsed_secs();
    let sca_eps = subset as f64 / sca_secs.max(1e-12);

    println!(
        "streaming  : {total} events in {col_secs:.1}s — columnar {col_eps:.0} ev/s vs scalar {sca_eps:.0} ev/s \
         (subset of {subset}) — ×{:.2}, peak retained {}",
        col_eps / sca_eps.max(1e-12),
        probe.retained_max,
    );
    let json = format!(
        "  \"streaming\": {{\n    \
         \"workload\": \"chemo D1 aux_per_day={} cyclic epoch replay (epoch offset {epoch_offset} ticks > τ), exp1_p1(6)\",\n    \
         \"events\": {total}, \"batch\": {BATCH}, \"matches\": {matches}, \"outputs_identical\": {identical},\n    \
         \"columnar\": {{ \"secs\": {col_secs:.3}, \"events_per_sec\": {col_eps:.1} }},\n    \
         \"scalar_subset\": {{ \"events\": {subset}, \"secs\": {sca_secs:.3}, \"events_per_sec\": {sca_eps:.1} }},\n    \
         \"speedup\": {:.2},\n    \
         \"peak_retained_events\": {}, \"events_evicted\": {}\n  }}",
        opts.aux_per_day,
        col_eps / sca_eps.max(1e-12),
        probe.retained_max,
        probe.events_evicted,
    );
    (json, identical)
}

/// Pushes `total` events through a Maximal stream matcher with the given
/// adjudicator, collecting every per-push emission so two runs can be
/// compared push for push. Returns `(total matches incl. finish, per-push
/// emissions, secs)`.
fn maximal_replay(
    base: &[Event],
    epoch_offset: i64,
    total: u64,
    adjudication: AdjudicationMode,
) -> (usize, Vec<Match>, f64) {
    let mut emitted: Vec<Match> = Vec::new();
    let sw = Stopwatch::start();
    let (matches, _) = replay(
        base,
        epoch_offset,
        total,
        MatcherOptions {
            adjudication,
            semantics: MatchSemantics::Maximal,
            ..MatcherOptions::default()
        },
        |sm, chunk, p| {
            let ms = sm.push_batch_with_probe(chunk, p).expect("chronological");
            emitted.extend(ms.iter().cloned());
            ms.len()
        },
    );
    (matches, emitted, sw.elapsed_secs())
}

/// Tier 4: the deployment-default **Maximal** semantics, indexed
/// adjudicator vs. the legacy pairwise scan.
///
/// Batch: `Matcher::find` on the same constant-heavy relation as tier 1.
/// An interleaved `AllRuns` run gives the selection-free engine time, so
/// each Maximal time decomposes into engine + adjudication — the
/// `adjudication_secs` figures are that difference. Streaming: one epoch
/// is replayed under both adjudicators and the emission schedules are
/// compared push for push, then a longer indexed-only run gives the
/// headline events/sec. All clocks run after the equality asserts.
fn maximal_tier(opts: &Options) -> (String, bool) {
    let rel = constant_heavy_d1(opts.find_scale, opts.aux_per_day);
    let indexed = maximal_matcher(AdjudicationMode::Indexed);
    let pairwise = maximal_matcher(AdjudicationMode::Pairwise);
    let allruns = matcher(ColumnarMode::Auto);

    // Identical Maximal answers first, then the clock.
    let m_idx = sorted_find(&indexed, &rel);
    let m_pair = sorted_find(&pairwise, &rel);
    let batch_identical = m_idx == m_pair;
    assert!(
        batch_identical,
        "indexed adjudicator changed the Maximal batch answer"
    );
    let raw_matches = allruns.find(&rel).len();

    // Pairwise is timed once: at two-plus orders of magnitude slower
    // (minutes per pass at full scale) the ±30% shared-core noise can't
    // invert the comparison, and repeating it would dominate the whole
    // benchmark's wall clock.
    let mut best = [f64::INFINITY; 3];
    for i in 0..opts.iters {
        for (slot, m) in [(0usize, &allruns), (1, &indexed), (2, &pairwise)] {
            if slot == 2 && i > 0 {
                continue;
            }
            let sw = Stopwatch::start();
            std::hint::black_box(m.find(&rel));
            best[slot] = best[slot].min(sw.elapsed_secs());
        }
    }
    let [all_secs, idx_secs, pair_secs] = best;
    let adj_idx = (idx_secs - all_secs).max(0.0);
    let adj_pair = (pair_secs - all_secs).max(0.0);
    let batch_speedup = pair_secs / idx_secs.max(1e-12);
    println!(
        "maximal    : {} events, {raw_matches} raw → {} maximal — indexed {idx_secs:.3}s \
         (adjudication {adj_idx:.3}s) vs pairwise {pair_secs:.3}s (adjudication {adj_pair:.3}s) — ×{batch_speedup:.1}",
        rel.len(),
        m_idx.len(),
    );

    // Streaming: emission-schedule parity over one epoch, then the
    // headline indexed run.
    let srel = constant_heavy_d1(if opts.quick { 0.25 } else { 1.0 }, opts.aux_per_day);
    let base: Vec<Event> = srel.events().to_vec();
    let span = base.last().expect("non-empty").ts().ticks() - base[0].ts().ticks();
    let epoch_offset = span + 264 + 1;
    let one_epoch = base.len() as u64;

    let (n_idx, sched_idx, _) =
        maximal_replay(&base, epoch_offset, one_epoch, AdjudicationMode::Indexed);
    let (n_pair, sched_pair, epoch_pair_secs) =
        maximal_replay(&base, epoch_offset, one_epoch, AdjudicationMode::Pairwise);
    let stream_identical = n_idx == n_pair && sched_idx == sched_pair;
    assert!(
        stream_identical,
        "indexed adjudicator changed the streaming Maximal schedule: {n_idx} vs {n_pair} matches"
    );
    let epoch_pair_eps = one_epoch as f64 / epoch_pair_secs.max(1e-12);

    let total = if opts.quick {
        opts.stream_events
    } else {
        opts.stream_events / 10
    };
    let (stream_matches, _, stream_secs) =
        maximal_replay(&base, epoch_offset, total, AdjudicationMode::Indexed);
    let stream_eps = total as f64 / stream_secs.max(1e-12);
    println!(
        "maximal str: {total} events in {stream_secs:.1}s — indexed {stream_eps:.0} ev/s vs pairwise \
         {epoch_pair_eps:.0} ev/s (epoch of {one_epoch}) — ×{:.1}",
        stream_eps / epoch_pair_eps.max(1e-12),
    );

    let ok = batch_identical && stream_identical;
    let json = format!(
        "  \"maximal\": {{\n    \
         \"workload\": \"chemo D1 ×{:.1}, aux_per_day={} (constant-heavy), exp1_p1(6), Maximal semantics\",\n    \
         \"batch\": {{\n      \
         \"events\": {}, \"raw_matches\": {raw_matches}, \"matches\": {}, \"iters\": {}, \"pairwise_iters\": 1, \"outputs_identical\": {batch_identical},\n      \
         \"allruns_secs\": {all_secs:.6},\n      \
         \"indexed\": {{ \"secs\": {idx_secs:.6}, \"adjudication_secs\": {adj_idx:.6} }},\n      \
         \"pairwise\": {{ \"secs\": {pair_secs:.6}, \"adjudication_secs\": {adj_pair:.6} }},\n      \
         \"speedup\": {batch_speedup:.2}\n    }},\n    \
         \"streaming\": {{\n      \
         \"events\": {total}, \"batch\": {BATCH}, \"matches\": {stream_matches}, \"outputs_identical\": {stream_identical},\n      \
         \"indexed\": {{ \"secs\": {stream_secs:.3}, \"events_per_sec\": {stream_eps:.1} }},\n      \
         \"pairwise_epoch\": {{ \"events\": {one_epoch}, \"secs\": {epoch_pair_secs:.3}, \"events_per_sec\": {epoch_pair_eps:.1} }},\n      \
         \"speedup\": {:.2}\n    }}\n  }}",
        opts.find_scale,
        opts.aux_per_day,
        rel.len(),
        m_idx.len(),
        opts.iters,
        stream_eps / epoch_pair_eps.max(1e-12),
    );
    (json, ok)
}

/// Tier 3: per-push allocation counts in steady state.
///
/// Replays two epochs per event through `push_event` (pre-built events:
/// the payload `Arc` is shared, so event construction itself is
/// allocation-free). The first epoch is warm-up — relation and
/// instance-pool capacity growth lands there. The second epoch is
/// measured push by push and categorized:
///
/// * `idle` — the §4.5 filter dropped the event and no selection work
///   fired: no match returned or raw-emitted by the expiry sweep, no
///   buffered adjudication group drained, no survivor pruned. These
///   pushes MUST be allocation-free: the engine checks one precomputed
///   verdict and returns.
/// * `advancing` — the event passed the filter but no match emitted,
///   *or* the watermark crossing triggered adjudication of previously
///   buffered groups. Instance transitions may allocate (each binding
///   appends a persistent-buffer node — irreducible without changing
///   the O(1) fork representation), and the indexed adjudicator builds
///   per-group indexes when a group becomes decidable.
/// * `emitting` — a match was returned *or* raw-emitted by the expiry
///   sweep (match materialization allocates by design).
fn allocation_tier(quick: bool) -> (String, bool) {
    let rel = ses_workload::chemo::generate(&if quick {
        ChemoConfig::small()
    } else {
        ChemoConfig::paper_d1()
    });
    let base: Vec<Event> = rel.events().to_vec();
    let span = base.last().expect("non-empty").ts().ticks() - base[0].ts().ticks();
    let epoch_offset = span + 264 + 1;

    let mut sm = StreamMatcher::with_options(
        &bench_pattern(),
        &ses_workload::paper::schema(),
        MatcherOptions::default(),
    )
    .expect("benchmark pattern compiles")
    .with_eviction(true);
    let mut probe = CountingProbe::new();

    // Warm-up epoch: capacity growth happens here.
    for e in &base {
        sm.push_event_with_probe(e.clone(), &mut probe)
            .expect("chronological");
    }
    probe.reset();

    // Measured epoch.
    #[derive(Default)]
    struct Cat {
        pushes: u64,
        allocs: u64,
        max: u64,
    }
    let mut idle = Cat::default();
    let mut advancing = Cat::default();
    let mut emitting = Cat::default();
    for e in &base {
        let filtered_before = probe.events_filtered;
        let raw_before = probe.matches_emitted;
        let pending_before = sm.pending_candidates();
        let killers_before = sm.retained_killers();
        let before = allocs_now();
        let emitted = sm
            .push_event_with_probe(e.shifted(epoch_offset), &mut probe)
            .expect("chronological")
            .len();
        let delta = allocs_now() - before;
        Probe::allocations(&mut probe, delta);
        let adjudicated =
            sm.pending_candidates() != pending_before || sm.retained_killers() != killers_before;
        let cat = if emitted > 0 || probe.matches_emitted > raw_before {
            &mut emitting
        } else if probe.events_filtered > filtered_before && !adjudicated {
            &mut idle
        } else {
            &mut advancing
        };
        cat.pushes += 1;
        cat.allocs += delta;
        cat.max = cat.max.max(delta);
    }
    let zero_alloc_idle = idle.max == 0;
    assert!(
        zero_alloc_idle,
        "idle pushes allocated (max {} per push) — the steady-state path regressed",
        idle.max
    );
    let mean = |c: &Cat| c.allocs as f64 / (c.pushes as f64).max(1.0);
    println!(
        "allocations: per event {:.4} — idle {} pushes ({} allocs, max {}), advancing {} ({:.3}/push), \
         emitting {} ({:.1}/push)",
        probe.allocations_per_event(),
        idle.pushes,
        idle.allocs,
        idle.max,
        advancing.pushes,
        mean(&advancing),
        emitting.pushes,
        mean(&emitting),
    );
    let cat_json = |c: &Cat| {
        format!(
            "{{ \"pushes\": {}, \"allocs\": {}, \"max_per_push\": {}, \"mean_per_push\": {:.4} }}",
            c.pushes,
            c.allocs,
            c.max,
            mean(c)
        )
    };
    let json = format!(
        "  \"allocations\": {{\n    \
         \"workload\": \"chemo {} steady-state epoch after one warm-up epoch, exp1_p1(6), per-event push_event\",\n    \
         \"allocations_per_event\": {:.4}, \"idle_pushes_allocation_free\": {zero_alloc_idle},\n    \
         \"idle\": {},\n    \"advancing\": {},\n    \"emitting\": {}\n  }}",
        if quick { "small" } else { "D1" },
        probe.allocations_per_event(),
        cat_json(&idle),
        cat_json(&advancing),
        cat_json(&emitting),
    );
    (json, zero_alloc_idle)
}

fn main() {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let mi = machine_info();
    println!(
        "machine    : {} ({} cores){}",
        mi.cpu,
        mi.cores,
        if opts.quick { " — quick mode" } else { "" }
    );

    let (find_json, find_ok) = batch_find_tier(&opts);
    let (maximal_json, maximal_ok) = maximal_tier(&opts);
    let (alloc_json, alloc_ok) = allocation_tier(opts.quick);
    let (stream_json, stream_ok) = streaming_tier(&opts);

    let json = format!(
        "{{\n  \"machine\": {{ \"cpu\": \"{}\", \"cores\": {} }},\n  \"quick\": {},\n{find_json},\n{maximal_json},\n{stream_json},\n{alloc_json}\n}}\n",
        mi.cpu.replace('"', "'"),
        mi.cores,
        opts.quick,
    );
    std::fs::write(&opts.out, &json).expect("can write the report");
    println!("wrote {}", opts.out.display());
    if !(find_ok && maximal_ok && alloc_ok && stream_ok) {
        eprintln!("error: a tier reported divergent outputs");
        std::process::exit(1);
    }
}
