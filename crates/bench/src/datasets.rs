//! Experiment data sets: the synthetic substitute for the paper's D1…D5.
//!
//! D1 is the chemotherapy generator calibrated to the paper's window size
//! (`W = 1322` at full scale); Dk duplicates every event k times, exactly
//! as §5.1 describes. Because the nondeterministic regimes are super-
//! linear in `W`, the harness defaults to a scaled-down D1 (`--scale`,
//! default 0.1) — the *shape* of every figure is preserved, only absolute
//! magnitudes shrink. Pass `--scale 1.0` for paper-parity sizes (slow).

use ses_event::{Duration, Relation};
use ses_workload::chemo::{generate, ChemoConfig};

/// The paper's window `τ = 264` hours.
pub const TAU: Duration = Duration::hours(264);

/// The five data sets D1…D5 plus their window sizes.
#[derive(Debug, Clone)]
pub struct Datasets {
    /// D1…D5 in order (Dk duplicates every D1 event k times).
    pub relations: Vec<Relation>,
    /// `W` of each data set at `τ = 264 h`.
    pub window_sizes: Vec<usize>,
}

impl Datasets {
    /// Builds D1…D`max_k` at the given scale factor (1.0 = paper parity,
    /// `W ≈ 1322` for D1).
    pub fn build(scale: f64, max_k: usize) -> Datasets {
        let d1 = generate(&ChemoConfig::paper_d1().scaled(scale));
        let relations: Vec<Relation> = (1..=max_k).map(|k| d1.duplicate(k)).collect();
        let window_sizes = relations.iter().map(|r| r.window_size(TAU)).collect();
        Datasets {
            relations,
            window_sizes,
        }
    }

    /// D1 (the base data set).
    pub fn d1(&self) -> &Relation {
        &self.relations[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_sizes_scale_linearly() {
        let ds = Datasets::build(0.05, 3);
        assert_eq!(ds.relations.len(), 3);
        assert_eq!(ds.window_sizes[1], 2 * ds.window_sizes[0]);
        assert_eq!(ds.window_sizes[2], 3 * ds.window_sizes[0]);
        assert_eq!(ds.d1().len() * 2, ds.relations[1].len());
    }
}
