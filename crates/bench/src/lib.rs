//! Benchmark harness for the paper's evaluation (§5).
//!
//! * [`datasets`] — the synthetic D1…D5 (chemotherapy generator +
//!   duplication), with a scale knob.
//! * [`experiments`] — row computations for Figure 11 + Table 1
//!   (experiment 1), Figure 12 (experiment 2), and Figure 13
//!   (experiment 3).
//!
//! The `experiments` binary prints the series next to the paper's
//! reference values; `cargo bench -p ses-bench` times the same
//! configurations with criterion, plus the ablation benches listed in
//! DESIGN.md.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod datasets;
pub mod experiments;
