//! The three experiments of the paper's §5, as reusable row computations.
//!
//! Each `run_*` function returns the series the corresponding figure or
//! table plots; the `experiments` binary renders them next to the paper's
//! reference values, and the criterion benches time the same
//! configurations.
//!
//! Measurement notes:
//!
//! * `|Ω|` is sampled after each input event and the maximum is reported —
//!   the paper's "maximal number of automaton instances that are
//!   simultaneously active".
//! * The brute-force number is the *sum* over the whole automaton bank at
//!   the same instant (the bank executes in lock-step).
//! * Timings use `MatchSemantics::AllRuns` so they measure `SESExec`
//!   itself, not the Definition-2 post-filter (which the paper's C
//!   implementation does not have).

use ses_baseline::BruteForce;
use ses_core::{FilterMode, MatchSemantics, Matcher, MatcherOptions};
use ses_event::Relation;
use ses_metrics::{CountingProbe, Stopwatch};
use ses_workload::paper;

use crate::datasets::Datasets;

fn engine_options(filter: FilterMode) -> MatcherOptions {
    MatcherOptions {
        filter,
        semantics: MatchSemantics::AllRuns,
        ..MatcherOptions::default()
    }
}

/// Peak |Ω| of the SES automaton on `relation`.
pub fn ses_peak_omega(pattern: &ses_pattern::Pattern, relation: &Relation) -> usize {
    let matcher = Matcher::with_options(
        pattern,
        relation.schema(),
        engine_options(FilterMode::Paper),
    )
    .expect("experiment pattern compiles");
    let mut probe = CountingProbe::new();
    matcher.find_with_probe(relation, &mut probe);
    probe.omega_max
}

/// Peak summed |Ω| of the brute-force bank on `relation`.
pub fn bf_peak_omega(pattern: &ses_pattern::Pattern, relation: &Relation) -> usize {
    let bank = BruteForce::with_options(
        pattern,
        relation.schema(),
        engine_options(FilterMode::Paper),
    )
    .expect("experiment pattern compiles");
    let mut probe = CountingProbe::new();
    bank.find_with_probe(relation, &mut probe);
    probe.omega_max
}

/// Wall-clock seconds for one SES run with the given filter mode.
pub fn ses_runtime(pattern: &ses_pattern::Pattern, relation: &Relation, filter: FilterMode) -> f64 {
    let matcher = Matcher::with_options(pattern, relation.schema(), engine_options(filter))
        .expect("experiment pattern compiles");
    let sw = Stopwatch::start();
    let _ = matcher.find(relation);
    sw.elapsed_secs()
}

// ---------------------------------------------------------------------
// Experiment 1 (Figure 11 + Table 1)
// ---------------------------------------------------------------------

/// One row of Figure 11 / Table 1.
#[derive(Debug, Clone)]
pub struct Exp1Row {
    /// `|V1|` (2…6).
    pub n: usize,
    /// Peak |Ω|, SES automaton, pattern P1 (mutually exclusive).
    pub ses_p1: usize,
    /// Peak summed |Ω|, brute-force bank, pattern P1.
    pub bf_p1: usize,
    /// Peak |Ω|, SES automaton, pattern P2 (same type).
    pub ses_p2: usize,
    /// Peak summed |Ω|, brute-force bank, pattern P2.
    pub bf_p2: usize,
}

impl Exp1Row {
    /// Table 1's ratio `|Ω|BF / |Ω|SES` for P1.
    pub fn ratio_p1(&self) -> f64 {
        self.bf_p1 as f64 / self.ses_p1.max(1) as f64
    }

    /// Table 1's reference column `(|V1| − 1)!`.
    pub fn factorial_reference(&self) -> u64 {
        (1..self.n as u64).product()
    }
}

/// Runs experiment 1 on D1 for `|V1| ∈ ns`.
///
/// Peak-|Ω| measurements are deterministic, so the (independent) sweep
/// points run on scoped worker threads — the brute-force bank at
/// `|V1| = 6` alone steps 720 automata over the whole relation.
pub fn run_exp1(d1: &Relation, ns: impl IntoIterator<Item = usize>) -> Vec<Exp1Row> {
    let ns: Vec<usize> = ns.into_iter().collect();
    let mut rows: Vec<Option<Exp1Row>> = vec![None; ns.len()];
    std::thread::scope(|scope| {
        for (slot, &n) in rows.iter_mut().zip(&ns) {
            scope.spawn(move || {
                let p1 = paper::exp1_p1(n);
                let p2 = paper::exp1_p2(n);
                *slot = Some(Exp1Row {
                    n,
                    ses_p1: ses_peak_omega(&p1, d1),
                    bf_p1: bf_peak_omega(&p1, d1),
                    ses_p2: ses_peak_omega(&p2, d1),
                    bf_p2: bf_peak_omega(&p2, d1),
                });
            });
        }
    });
    rows.into_iter()
        .map(|r| r.expect("every slot filled"))
        .collect()
}

// ---------------------------------------------------------------------
// Experiment 2 (Figure 12)
// ---------------------------------------------------------------------

/// One point of Figure 12.
#[derive(Debug, Clone)]
pub struct Exp2Row {
    /// Data set index (1 = D1 … 5 = D5).
    pub k: usize,
    /// Window size `W` of Dk.
    pub w: usize,
    /// Peak |Ω| for P3 (`{c, d, p+}` — Theorem 3 regime).
    pub p3: usize,
    /// Peak |Ω| for P4 (`{c, d, p}` — Theorem 2 regime).
    pub p4: usize,
}

/// Runs experiment 2 over D1…Dk (data-set points in parallel; |Ω| is a
/// deterministic count, not a timing).
pub fn run_exp2(datasets: &Datasets) -> Vec<Exp2Row> {
    let p3 = paper::exp2_p3();
    let p4 = paper::exp2_p4();
    let mut rows: Vec<Option<Exp2Row>> = vec![None; datasets.relations.len()];
    std::thread::scope(|scope| {
        for (i, (slot, rel)) in rows.iter_mut().zip(&datasets.relations).enumerate() {
            let (p3, p4) = (&p3, &p4);
            let w = datasets.window_sizes[i];
            scope.spawn(move || {
                *slot = Some(Exp2Row {
                    k: i + 1,
                    w,
                    p3: ses_peak_omega(p3, rel),
                    p4: ses_peak_omega(p4, rel),
                });
            });
        }
    });
    rows.into_iter()
        .map(|r| r.expect("every slot filled"))
        .collect()
}

// ---------------------------------------------------------------------
// Experiment 3 (Figure 13)
// ---------------------------------------------------------------------

/// One point of Figure 13.
#[derive(Debug, Clone)]
pub struct Exp3Row {
    /// Data set index (1 = D1 …).
    pub k: usize,
    /// Window size `W` of Dk.
    pub w: usize,
    /// Runtime (s) of P5 (mutually exclusive) without the §4.5 filter.
    pub p5_unfiltered: f64,
    /// Runtime (s) of P5 with the filter.
    pub p5_filtered: f64,
    /// Runtime (s) of P6 (same type, group var) without the filter.
    pub p6_unfiltered: f64,
    /// Runtime (s) of P6 with the filter.
    pub p6_filtered: f64,
}

/// Runs experiment 3 over D1…Dk.
pub fn run_exp3(datasets: &Datasets) -> Vec<Exp3Row> {
    let p5 = paper::exp3_p5();
    let p6 = paper::exp3_p6();
    datasets
        .relations
        .iter()
        .enumerate()
        .map(|(i, rel)| Exp3Row {
            k: i + 1,
            w: datasets.window_sizes[i],
            p5_unfiltered: ses_runtime(&p5, rel, FilterMode::Off),
            p5_filtered: ses_runtime(&p5, rel, FilterMode::Paper),
            p6_unfiltered: ses_runtime(&p6, rel, FilterMode::Off),
            p6_filtered: ses_runtime(&p6, rel, FilterMode::Paper),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_datasets() -> Datasets {
        Datasets::build(0.02, 2)
    }

    #[test]
    fn exp1_shapes_hold_at_tiny_scale() {
        let ds = tiny_datasets();
        let rows = run_exp1(ds.d1(), [2usize, 3]);
        assert_eq!(rows.len(), 2);
        for row in &rows {
            // The bank never needs fewer instances than the single
            // automaton, and the P1 gap grows with (n−1)!.
            assert!(row.bf_p1 >= row.ses_p1, "{row:?}");
            assert!(row.bf_p2 >= row.ses_p2, "{row:?}");
        }
        assert!(rows[1].ratio_p1() > rows[0].ratio_p1());
        assert_eq!(rows[0].factorial_reference(), 1);
        assert_eq!(rows[1].factorial_reference(), 2);
    }

    #[test]
    fn exp2_group_variable_dominates() {
        let ds = tiny_datasets();
        let rows = run_exp2(&ds);
        assert_eq!(rows.len(), 2);
        for row in &rows {
            assert!(row.p3 >= row.p4, "group regime must dominate: {row:?}");
        }
        // P3 grows with W.
        assert!(rows[1].p3 > rows[0].p3);
    }

    #[test]
    fn exp3_runs_and_produces_positive_times() {
        let ds = tiny_datasets();
        let rows = run_exp3(&ds);
        for row in &rows {
            assert!(row.p5_unfiltered > 0.0);
            assert!(row.p6_filtered > 0.0);
        }
    }
}
