//! Ablation: the per-event variable precheck.
//!
//! Without the precheck, every simultaneous instance re-evaluates each
//! transition's constant conditions against the same event; with it, a
//! 64-bit "which variables can this event bind" mask is computed once per
//! event and transitions are gated by a single bit test. The win grows
//! with `|Ω|` — this bench measures it in the Theorem-3 regime where
//! thousands of instances are live.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use ses_bench::datasets::Datasets;
use ses_core::{MatchSemantics, Matcher, MatcherOptions};
use ses_workload::paper;

fn bench_precheck(c: &mut Criterion) {
    let datasets = Datasets::build(0.05, 2);
    let schema = datasets.d1().schema().clone();

    let mut group = c.benchmark_group("precheck");
    group.sample_size(10);
    for (pname, pattern) in [("Q1", paper::query_q1()), ("P6", paper::exp3_p6())] {
        for (mode, precheck) in [("on", true), ("off", false)] {
            let matcher = Matcher::with_options(
                &pattern,
                &schema,
                MatcherOptions {
                    type_precheck: precheck,
                    semantics: MatchSemantics::AllRuns,
                    ..MatcherOptions::default()
                },
            )
            .unwrap();
            group.bench_with_input(
                BenchmarkId::new(pname, mode),
                &datasets.relations[1],
                |b, rel| b.iter(|| matcher.find(rel).len()),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_precheck);
criterion_main!(benches);
