//! Ablation: filter benefit as a function of event-type selectivity.
//!
//! The §4.5 filter pays off proportionally to the fraction of stream
//! events no pattern variable can ever bind. Sweeping the generator's
//! auxiliary-event rate moves that fraction, mapping out when the filter
//! is worth its per-event check.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use ses_core::{FilterMode, MatchSemantics, Matcher, MatcherOptions};
use ses_workload::chemo::{generate, ChemoConfig};
use ses_workload::paper;

fn bench_selectivity(c: &mut Criterion) {
    let schema = paper::schema();
    let mut group = c.benchmark_group("filter_selectivity");
    group.sample_size(10);
    for aux_per_day in [0.0f64, 1.0, 3.0] {
        let mut cfg = ChemoConfig::paper_d1().scaled(0.05);
        cfg.aux_per_day = aux_per_day;
        let rel = generate(&cfg);
        for (fname, filter) in [("off", FilterMode::Off), ("paper", FilterMode::Paper)] {
            let matcher = Matcher::with_options(
                &paper::exp3_p6(),
                &schema,
                MatcherOptions {
                    filter,
                    semantics: MatchSemantics::AllRuns,
                    ..MatcherOptions::default()
                },
            )
            .unwrap();
            group.bench_with_input(
                BenchmarkId::new(fname, format!("aux{aux_per_day}")),
                &rel,
                |b, rel| b.iter(|| matcher.find(rel).len()),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_selectivity);
criterion_main!(benches);
