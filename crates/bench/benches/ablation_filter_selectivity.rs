//! Ablation: filter benefit as a function of event-type selectivity.
//!
//! The §4.5 filter pays off proportionally to the fraction of stream
//! events no pattern variable can ever bind. Sweeping the generator's
//! auxiliary-event rate moves that fraction, mapping out when the filter
//! is worth its per-event check.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use ses_core::{FilterMode, MatchSemantics, Matcher, MatcherOptions};
use ses_event::{CmpOp, Duration};
use ses_pattern::Pattern;
use ses_workload::chemo::{generate, ChemoConfig};
use ses_workload::paper;

fn bench_selectivity(c: &mut Criterion) {
    let schema = paper::schema();
    let mut group = c.benchmark_group("filter_selectivity");
    group.sample_size(10);
    for aux_per_day in [0.0f64, 1.0, 3.0] {
        let mut cfg = ChemoConfig::paper_d1().scaled(0.05);
        cfg.aux_per_day = aux_per_day;
        let rel = generate(&cfg);
        for (fname, filter) in [("off", FilterMode::Off), ("paper", FilterMode::Paper)] {
            let matcher = Matcher::with_options(
                &paper::exp3_p6(),
                &schema,
                MatcherOptions {
                    filter,
                    semantics: MatchSemantics::AllRuns,
                    ..MatcherOptions::default()
                },
            )
            .unwrap();
            group.bench_with_input(
                BenchmarkId::new(fname, format!("aux{aux_per_day}")),
                &rel,
                |b, rel| b.iter(|| matcher.find(rel).len()),
            );
        }
    }
    group.finish();
}

/// P6 reshaped so `d`'s type arrives only through a variable link
/// (`d.L = c.L`): without analysis the §4.5 filter silently downgrades
/// to `Off`; the analyzer's constant propagation derives `d.L = 'V'`
/// and restores it.
fn derived_constant_pattern() -> Pattern {
    Pattern::builder()
        .set(|s| s.var("c").var("d"))
        .set(|s| s.var("b"))
        .cond_const("c", "L", CmpOp::Eq, paper::SHARED_TYPE)
        .cond_vars("d", "L", CmpOp::Eq, "c", "L")
        .cond_const("b", "L", CmpOp::Eq, "B")
        .within(Duration::hours(264))
        .build()
        .expect("derived-constant pattern is valid")
}

/// Ablation: the same selectivity sweep on a pattern whose filter
/// constants are only *derivable*. Compares the silent downgrade
/// (`downgraded`) against `--propagate` (`propagated`), which should
/// approach the hand-written-constant case as the auxiliary rate grows.
fn bench_derived_constants(c: &mut Criterion) {
    let schema = paper::schema();
    let mut group = c.benchmark_group("filter_derived_constants");
    group.sample_size(10);
    for aux_per_day in [0.0f64, 1.0, 3.0] {
        let mut cfg = ChemoConfig::paper_d1().scaled(0.05);
        cfg.aux_per_day = aux_per_day;
        let rel = generate(&cfg);
        for (fname, propagate) in [("downgraded", false), ("propagated", true)] {
            let matcher = Matcher::with_options(
                &derived_constant_pattern(),
                &schema,
                MatcherOptions {
                    filter: FilterMode::Paper,
                    semantics: MatchSemantics::AllRuns,
                    propagate_constants: propagate,
                    ..MatcherOptions::default()
                },
            )
            .unwrap();
            group.bench_with_input(
                BenchmarkId::new(fname, format!("aux{aux_per_day}")),
                &rel,
                |b, rel| b.iter(|| matcher.find(rel).len()),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_selectivity, bench_derived_constants);
criterion_main!(benches);
