//! Experiment 2 (paper §5.4, Figure 12): |Ω| growth with the window size
//! `W` for P3 (group variable, Theorem 3) vs P4 (no group variable,
//! Theorem 2), on the duplicated data sets D1…D3.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use ses_bench::datasets::Datasets;
use ses_core::{MatchSemantics, Matcher, MatcherOptions};
use ses_workload::paper;

fn bench_exp2(c: &mut Criterion) {
    let datasets = Datasets::build(0.05, 3);
    let schema = datasets.d1().schema().clone();
    let options = MatcherOptions {
        semantics: MatchSemantics::AllRuns,
        ..MatcherOptions::default()
    };
    let p3 = Matcher::with_options(&paper::exp2_p3(), &schema, options.clone()).unwrap();
    let p4 = Matcher::with_options(&paper::exp2_p4(), &schema, options).unwrap();

    let mut group = c.benchmark_group("exp2");
    group.sample_size(10);
    for (i, rel) in datasets.relations.iter().enumerate() {
        let w = datasets.window_sizes[i];
        group.throughput(Throughput::Elements(rel.len() as u64));
        group.bench_with_input(BenchmarkId::new("P3-group", w), rel, |b, rel| {
            b.iter(|| p3.find(rel).len())
        });
        group.bench_with_input(BenchmarkId::new("P4-singleton", w), rel, |b, rel| {
            b.iter(|| p4.find(rel).len())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_exp2);
criterion_main!(benches);
