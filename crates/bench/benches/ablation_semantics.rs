//! Ablation: cost of the Definition-2 semantics post-filter.
//!
//! `AllRuns` is the raw Algorithm-1 output; `Definition2` adds the
//! condition-4/5 filters (swap validity + prefix agreement); `Maximal`
//! adds global subset removal. The gap between `AllRuns` and the others
//! prices the declarative guarantees on a match-heavy workload.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use ses_bench::datasets::Datasets;
use ses_core::{MatchSemantics, Matcher, MatcherOptions};
use ses_workload::paper;

fn bench_semantics(c: &mut Criterion) {
    let datasets = Datasets::build(0.05, 2);
    let d2 = &datasets.relations[1];
    let schema = d2.schema().clone();

    let mut group = c.benchmark_group("semantics");
    group.sample_size(10);
    for (pname, pattern) in [("Q1", paper::query_q1()), ("P6", paper::exp3_p6())] {
        for (sname, semantics) in [
            ("allruns", MatchSemantics::AllRuns),
            ("definition2", MatchSemantics::Definition2),
            ("maximal", MatchSemantics::Maximal),
        ] {
            let matcher = Matcher::with_options(
                &pattern,
                &schema,
                MatcherOptions {
                    semantics,
                    ..MatcherOptions::default()
                },
            )
            .unwrap();
            group.bench_with_input(BenchmarkId::new(pname, sname), d2, |b, rel| {
                b.iter(|| matcher.find(rel).len())
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_semantics);
criterion_main!(benches);
