//! Ablation: condition-based correlation vs pre-partitioned scans.
//!
//! Query Q1 correlates events per patient via `ID`-equality conditions; a
//! MATCH_RECOGNIZE-style `PARTITION BY ID` can instead split the relation
//! up front and run the matcher per partition. Both give the same answer
//! (asserted in `tests/pipeline.rs`); this bench prices the difference —
//! partitioning shrinks every per-event instance loop but pays the
//! split and per-partition scheduling.

use criterion::{criterion_group, criterion_main, Criterion};

use ses_bench::datasets::Datasets;
use ses_core::{MatchSemantics, Matcher, MatcherOptions};
use ses_store::EventStore;
use ses_workload::paper;

fn bench_partitioning(c: &mut Criterion) {
    let datasets = Datasets::build(0.1, 1);
    let d1 = datasets.d1().clone();
    let schema = d1.schema().clone();
    let matcher = Matcher::with_options(
        &paper::query_q1(),
        &schema,
        MatcherOptions {
            semantics: MatchSemantics::AllRuns,
            ..MatcherOptions::default()
        },
    )
    .unwrap();
    let id_attr = schema.attr_id("ID").expect("chemo schema has ID");

    let mut group = c.benchmark_group("partitioning");
    group.sample_size(10);
    group.bench_function("global-correlated", |b| b.iter(|| matcher.find(&d1).len()));
    group.bench_function("partition-then-match", |b| {
        b.iter(|| {
            let store = EventStore::new("d1", d1.clone());
            store
                .partition_by(id_attr)
                .iter()
                .map(|(_, part)| matcher.find(part.relation()).len())
                .sum::<usize>()
        })
    });
    // Pre-partitioned (split cost amortized away, e.g. a partitioned
    // store maintained incrementally).
    let parts: Vec<_> = EventStore::new("d1", d1.clone()).partition_by(id_attr);
    group.bench_function("prepartitioned-match", |b| {
        b.iter(|| {
            parts
                .iter()
                .map(|(_, part)| matcher.find(part.relation()).len())
                .sum::<usize>()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_partitioning);
criterion_main!(benches);
