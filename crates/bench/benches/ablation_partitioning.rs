//! Ablation: condition-based correlation vs partitioned scans.
//!
//! Query Q1 correlates events per patient via `ID`-equality conditions; a
//! MATCH_RECOGNIZE-style `PARTITION BY ID` can instead split the relation
//! up front and run the matcher per partition. Both give the same answer
//! (asserted in `tests/pipeline.rs` and `tests/parallel_vs_global.rs`);
//! this bench prices the difference — partitioning shrinks every
//! per-event instance loop but pays the split and per-partition
//! scheduling. Variants:
//!
//! - `global-correlated`: one scan, `|Ω|` spans all patients.
//! - `partition-then-match`: split into *owned* per-partition relations
//!   (event clones) and match each — the old clone-based strategy,
//!   split measured inside the loop.
//! - `prepartitioned-match`: split cost amortized away (e.g. a
//!   partitioned store maintained incrementally).
//! - `parallel-auto`: the engine's own partitioned path
//!   (`PartitionMode::Auto`: proven key, zero-copy index-vector split,
//!   LPT-scheduled workers) — and a pinned single-thread variant that
//!   isolates the `|Ω|`-shrink effect from thread parallelism.

use criterion::{criterion_group, criterion_main, Criterion};

use ses_bench::datasets::Datasets;
use ses_core::{MatchSemantics, Matcher, MatcherOptions, PartitionMode};
use ses_store::EventStore;
use ses_workload::paper;

fn bench_partitioning(c: &mut Criterion) {
    let datasets = Datasets::build(0.1, 1);
    let d1 = datasets.d1().clone();
    let schema = d1.schema().clone();
    let options = MatcherOptions {
        semantics: MatchSemantics::AllRuns,
        ..MatcherOptions::default()
    };
    let matcher = Matcher::with_options(&paper::query_q1(), &schema, options.clone()).unwrap();
    let auto = Matcher::with_options(
        &paper::query_q1(),
        &schema,
        MatcherOptions {
            partition: PartitionMode::Auto,
            ..options
        },
    )
    .unwrap();
    assert!(
        auto.partition_key().is_some(),
        "Q1 must prove ID as a partition key"
    );
    let id_attr = schema.attr_id("ID").expect("chemo schema has ID");
    // Construction is hoisted out of every `b.iter()` closure: the store
    // wrapper and the relation clone are setup, not the measured
    // operation (cloning D1 inside the loop used to dominate the
    // partition-then-match numbers).
    let store = EventStore::new("d1", d1.clone());

    let mut group = c.benchmark_group("partitioning");
    group.sample_size(10);
    group.bench_function("global-correlated", |b| b.iter(|| matcher.find(&d1).len()));
    group.bench_function("partition-then-match", |b| {
        b.iter(|| {
            store
                .partition_by(id_attr)
                .iter()
                .map(|(_, part)| matcher.find(part.relation()).len())
                .sum::<usize>()
        })
    });
    let parts: Vec<_> = store.partition_by(id_attr);
    group.bench_function("prepartitioned-match", |b| {
        b.iter(|| {
            parts
                .iter()
                .map(|(_, part)| matcher.find(part.relation()).len())
                .sum::<usize>()
        })
    });
    group.bench_function("parallel-auto", |b| b.iter(|| auto.find(&d1).len()));
    group.bench_function("parallel-auto-1thread", |b| {
        b.iter(|| {
            ses_core::parallel::find_partitioned_with(
                &auto,
                &d1,
                auto.partition_key().unwrap(),
                Some(1),
                &mut ses_core::NoProbe,
                || ses_core::NoProbe,
            )
            .0
            .len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_partitioning);
criterion_main!(benches);
