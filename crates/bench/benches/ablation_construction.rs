//! Ablation: automaton construction cost.
//!
//! The powerset construction allocates `Σi 2^|Vi|` states; this bench
//! measures build time as the first event set pattern grows, and compares
//! it against the brute-force bank's `|V1|!` chain compilations — the
//! compile-time side of the paper's §5.2 argument.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use ses_baseline::BruteForce;
use ses_core::Matcher;
use ses_event::CmpOp;
use ses_pattern::Pattern;
use ses_workload::paper;

fn pattern(n: usize) -> Pattern {
    let mut b = Pattern::builder();
    b = b.set(move |s| {
        for i in 0..n {
            s.var(format!("v{i}"));
        }
        s
    });
    b = b.set(|s| s.var("b"));
    for i in 0..n {
        b = b.cond_const(
            format!("v{i}"),
            "L",
            CmpOp::Eq,
            paper::MEDICATION_TYPES[i % paper::MEDICATION_TYPES.len()],
        );
    }
    b = b.cond_const("b", "L", CmpOp::Eq, "B");
    b.within(ses_event::Duration::hours(264)).build().unwrap()
}

fn bench_construction(c: &mut Criterion) {
    let schema = paper::schema();
    let mut group = c.benchmark_group("construction");
    for n in [2usize, 4, 6, 8, 10, 12] {
        let p = pattern(n);
        group.bench_with_input(BenchmarkId::new("ses-powerset", n), &p, |b, p| {
            b.iter(|| {
                Matcher::compile(p, &schema)
                    .unwrap()
                    .automaton()
                    .num_states()
            })
        });
        if n <= 6 {
            // |V1|! chains explode quickly; cap where the bank stays sane.
            group.bench_with_input(BenchmarkId::new("bruteforce-chains", n), &p, |b, p| {
                b.iter(|| BruteForce::compile(p, &schema).unwrap().num_automata())
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_construction);
criterion_main!(benches);
