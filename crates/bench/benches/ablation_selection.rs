//! Ablation: event selection strategy.
//!
//! `SkipTillNextMatch` is the paper's greedy Algorithm 2;
//! `SkipTillAnyMatch` (this implementation's extension) additionally
//! retains the source instance whenever a transition fires, making
//! candidate generation complete w.r.t. `Γ` — at an exponential
//! worst-case `|Ω|`. This bench prices that completeness on the
//! deterministic Q1 and the nondeterministic P6.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use ses_bench::datasets::Datasets;
use ses_core::{EventSelection, MatchSemantics, Matcher, MatcherOptions};
use ses_workload::paper;

fn bench_selection(c: &mut Criterion) {
    // Small data: any-match is exponential on nondeterministic patterns.
    let datasets = Datasets::build(0.02, 1);
    let d1 = datasets.d1();
    let schema = d1.schema().clone();

    let mut group = c.benchmark_group("selection");
    group.sample_size(10);
    for (pname, pattern) in [("Q1", paper::query_q1()), ("P6", paper::exp3_p6())] {
        for (sname, selection) in [
            ("next-match", EventSelection::SkipTillNextMatch),
            ("any-match", EventSelection::SkipTillAnyMatch),
        ] {
            let matcher = Matcher::with_options(
                &pattern,
                &schema,
                MatcherOptions {
                    selection,
                    semantics: MatchSemantics::AllRuns,
                    ..MatcherOptions::default()
                },
            )
            .unwrap();
            group.bench_with_input(BenchmarkId::new(pname, sname), d1, |b, rel| {
                b.iter(|| matcher.find(rel).len())
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_selection);
criterion_main!(benches);
