//! Ablation: batch matching vs push-based streaming, with and without
//! watermark eviction.
//!
//! `Matcher::find` iterates an existing relation; `StreamMatcher::push`
//! pays per-event call overhead plus eager adjudication. This bench
//! prices the streaming surcharge on the chemotherapy workload with Q1,
//! and shows that eviction (the bounded-memory mode) does not regress
//! push throughput — compaction is amortized by hysteresis.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use ses_core::{MatchSemantics, Matcher, MatcherOptions, StreamMatcher};
use ses_workload::chemo::{generate, ChemoConfig};
use ses_workload::paper;

fn bench_streaming(c: &mut Criterion) {
    let relation = generate(&ChemoConfig::paper_d1().scaled(0.05));
    let schema = relation.schema().clone();
    let q1 = paper::query_q1();
    let options = MatcherOptions {
        semantics: MatchSemantics::AllRuns,
        ..MatcherOptions::default()
    };
    let matcher = Matcher::with_options(&q1, &schema, options.clone()).unwrap();

    let push_all = |evict: bool| {
        let mut sm = StreamMatcher::with_options(&q1, &schema, options.clone())
            .unwrap()
            .with_eviction(evict);
        let mut emitted = 0usize;
        for e in relation.events() {
            emitted += sm.push(e.ts(), e.values().to_vec()).unwrap().len();
        }
        emitted + sm.finish().len()
    };

    let mut group = c.benchmark_group("streaming");
    group.sample_size(10);
    group.throughput(Throughput::Elements(relation.len() as u64));
    group.bench_function("batch", |b| b.iter(|| matcher.find(&relation).len()));
    group.bench_function("push-evict-on", |b| b.iter(|| push_all(true)));
    group.bench_function("push-evict-off", |b| b.iter(|| push_all(false)));
    group.finish();
}

criterion_group!(benches, bench_streaming);
criterion_main!(benches);
