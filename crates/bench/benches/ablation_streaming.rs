//! Ablation: batch matching vs push-based streaming.
//!
//! `Matcher::find` iterates an existing relation; `StreamMatcher::push`
//! pays per-event call overhead plus relation growth. This bench prices
//! the streaming surcharge on the chemotherapy workload with Q1.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use ses_core::{Matcher, MatcherOptions, MatchSemantics, StreamMatcher};
use ses_workload::chemo::{generate, ChemoConfig};
use ses_workload::paper;

fn bench_streaming(c: &mut Criterion) {
    let relation = generate(&ChemoConfig::paper_d1().scaled(0.05));
    let schema = relation.schema().clone();
    let q1 = paper::query_q1();
    let options = MatcherOptions {
        semantics: MatchSemantics::AllRuns,
        ..MatcherOptions::default()
    };
    let matcher = Matcher::with_options(&q1, &schema, options.clone()).unwrap();

    let mut group = c.benchmark_group("streaming");
    group.sample_size(10);
    group.throughput(Throughput::Elements(relation.len() as u64));
    group.bench_function("batch", |b| b.iter(|| matcher.find(&relation).len()));
    group.bench_function("push-per-event", |b| {
        b.iter(|| {
            let mut sm =
                StreamMatcher::with_options(&q1, &schema, options.clone()).unwrap();
            let mut emitted = 0usize;
            for e in relation.events() {
                emitted += sm.push(e.ts(), e.values().to_vec()).unwrap().len();
            }
            emitted + sm.finish().len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_streaming);
criterion_main!(benches);
