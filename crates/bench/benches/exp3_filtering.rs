//! Experiment 3 (paper §5.5, Figure 13): runtime effect of the §4.5
//! event filter, for P5 (mutually exclusive) and P6 (same type, group
//! variable) — including the strictly stronger per-variable filter this
//! implementation adds.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use ses_bench::datasets::Datasets;
use ses_core::{FilterMode, MatchSemantics, Matcher, MatcherOptions};
use ses_workload::paper;

fn bench_exp3(c: &mut Criterion) {
    let datasets = Datasets::build(0.05, 2);
    let d2 = &datasets.relations[1];
    let schema = d2.schema().clone();

    let mut group = c.benchmark_group("exp3");
    group.sample_size(10);
    for (pname, pattern) in [("P5", paper::exp3_p5()), ("P6", paper::exp3_p6())] {
        for (fname, filter) in [
            ("nofilter", FilterMode::Off),
            ("paper", FilterMode::Paper),
            ("pervariable", FilterMode::PerVariable),
        ] {
            let matcher = Matcher::with_options(
                &pattern,
                &schema,
                MatcherOptions {
                    filter,
                    semantics: MatchSemantics::AllRuns,
                    ..MatcherOptions::default()
                },
            )
            .unwrap();
            group.bench_with_input(BenchmarkId::new(pname, fname), d2, |b, rel| {
                b.iter(|| matcher.find(rel).len())
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_exp3);
criterion_main!(benches);
