//! Ablation: storage backends — CSV text vs the binary event log.
//!
//! The paper read its relation from Oracle over OCI; our substitutes are
//! a typed-header CSV file and the segmented binary log. This bench
//! prices write-out and full-scan for both on the chemotherapy workload.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use ses_store::{read_csv, write_csv, EventLog, LogConfig};
use ses_workload::chemo::{generate, ChemoConfig};

fn bench_storage(c: &mut Criterion) {
    let relation = generate(&ChemoConfig::paper_d1().scaled(0.1));
    let events = relation.len() as u64;

    let mut group = c.benchmark_group("storage");
    group.sample_size(10);
    group.throughput(Throughput::Elements(events));

    group.bench_with_input(BenchmarkId::new("write", "csv"), &relation, |b, rel| {
        b.iter(|| {
            let mut buf = Vec::new();
            write_csv(rel, &mut buf).unwrap();
            buf.len()
        })
    });
    group.bench_with_input(BenchmarkId::new("write", "log"), &relation, |b, rel| {
        let base = std::env::temp_dir().join("ses-bench-log-write");
        let mut n = 0usize;
        b.iter(|| {
            n += 1;
            let dir = base.join(n.to_string());
            std::fs::remove_dir_all(&dir).ok();
            let mut log =
                EventLog::create(&dir, rel.schema().clone(), LogConfig::default()).unwrap();
            for (_, e) in rel.iter() {
                log.append(e.ts(), e.values().to_vec()).unwrap();
            }
            let len = log.len();
            drop(log);
            std::fs::remove_dir_all(&dir).ok();
            len
        })
    });

    // Scan benchmarks read pre-written artifacts.
    let mut csv_buf = Vec::new();
    write_csv(&relation, &mut csv_buf).unwrap();
    group.bench_with_input(BenchmarkId::new("scan", "csv"), &csv_buf, |b, buf| {
        b.iter(|| read_csv(&buf[..]).unwrap().len())
    });

    let log_dir = std::env::temp_dir().join("ses-bench-log-scan");
    std::fs::remove_dir_all(&log_dir).ok();
    let mut log =
        EventLog::create(&log_dir, relation.schema().clone(), LogConfig::default()).unwrap();
    for (_, e) in relation.iter() {
        log.append(e.ts(), e.values().to_vec()).unwrap();
    }
    log.sync().unwrap();
    group.bench_function(BenchmarkId::new("scan", "log"), |b| {
        b.iter(|| log.scan().unwrap().len())
    });
    group.finish();
    std::fs::remove_dir_all(&log_dir).ok();
}

criterion_group!(benches, bench_storage);
criterion_main!(benches);
