//! Durable subscription registry.
//!
//! The checkpoint carries matcher *state*; this file carries matcher
//! *identity* — the ordered list of `(name, query)` pairs registered so
//! far, which is exactly the `specs` argument `PatternBank::restore`
//! demands. The registry is rewritten atomically (tmp + rename) on every
//! change, and the subscribe protocol persists it *before* saving the
//! checkpoint and acking the client, so:
//!
//! * registry length ≥ checkpoint pattern count, always;
//! * the checkpointed patterns are a prefix of the registry (banks only
//!   append);
//! * a crash between registry write and checkpoint save leaves an
//!   unacked tail entry, which restart re-subscribes at the restored
//!   watermark — the client never saw an ack, so re-subscribing is the
//!   contract.

use std::io::Write;
use std::path::{Path, PathBuf};

/// One registered subscription.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubSpec {
    /// Registration name (unique).
    pub name: String,
    /// Query text in the `ses-query` language.
    pub query: String,
}

/// The on-disk registry: `name\tquery` per line, `\`/`\n`/`\t` escaped.
#[derive(Debug)]
pub struct Registry {
    path: PathBuf,
    entries: Vec<SubSpec>,
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c => out.push(c),
        }
    }
    out
}

fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => out.push('\n'),
                Some('t') => out.push('\t'),
                Some('\\') => out.push('\\'),
                Some(other) => out.push(other),
                None => break,
            }
        } else {
            out.push(c);
        }
    }
    out
}

impl Registry {
    /// Loads the registry at `path`, or an empty one if absent.
    pub fn load(path: impl Into<PathBuf>) -> Result<Registry, String> {
        let path = path.into();
        let mut entries = Vec::new();
        match std::fs::read_to_string(&path) {
            Ok(text) => {
                for (i, line) in text.lines().enumerate() {
                    if line.is_empty() {
                        continue;
                    }
                    let Some((name, query)) = line.split_once('\t') else {
                        return Err(format!(
                            "{}: line {} is not `name\\tquery`",
                            path.display(),
                            i + 1
                        ));
                    };
                    entries.push(SubSpec {
                        name: unescape(name),
                        query: unescape(query),
                    });
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(format!("{}: {e}", path.display())),
        }
        Ok(Registry { path, entries })
    }

    /// The registered subscriptions, in registration order.
    pub fn entries(&self) -> &[SubSpec] {
        &self.entries
    }

    /// Looks up a subscription by name.
    pub fn find(&self, name: &str) -> Option<&SubSpec> {
        self.entries.iter().find(|e| e.name == name)
    }

    /// Appends a subscription and durably rewrites the file (atomic
    /// tmp + rename, fsynced) before returning.
    pub fn add(&mut self, name: &str, query: &str) -> Result<(), String> {
        self.entries.push(SubSpec {
            name: name.to_string(),
            query: query.to_string(),
        });
        self.persist()
    }

    fn persist(&self) -> Result<(), String> {
        let fail = |e: std::io::Error| format!("{}: {e}", self.path.display());
        if let Some(dir) = self.path.parent() {
            std::fs::create_dir_all(dir).map_err(fail)?;
        }
        let tmp = self.path.with_extension("tmp");
        let mut f = std::fs::File::create(&tmp).map_err(fail)?;
        for e in &self.entries {
            writeln!(f, "{}\t{}", escape(&e.name), escape(&e.query)).map_err(fail)?;
        }
        f.sync_all().map_err(fail)?;
        std::fs::rename(&tmp, &self.path).map_err(fail)?;
        Ok(())
    }

    /// Conventional registry path inside a checkpoint directory.
    pub fn default_path(checkpoint_dir: &Path) -> PathBuf {
        checkpoint_dir.join("subs.registry")
    }

    /// Conventional per-subscription match-log path. The file is keyed
    /// by registration *index* (stable across restarts because banks
    /// only append), so subscription names stay free-form.
    pub fn match_log_path(checkpoint_dir: &Path, index: usize) -> PathBuf {
        checkpoint_dir.join(format!("sub-{index:05}.matches.log"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "ses-registry-{name}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("subs.registry")
    }

    #[test]
    fn round_trips_entries_with_escaping() {
        let path = tmp("roundtrip");
        let mut r = Registry::load(&path).unwrap();
        assert!(r.entries().is_empty());
        r.add("q1", "PATTERN a WHERE a.L = 'C'\nWITHIN 5 TICKS")
            .unwrap();
        r.add("q\t2", "PATTERN b").unwrap();
        let r2 = Registry::load(&path).unwrap();
        assert_eq!(r2.entries(), r.entries());
        assert_eq!(
            r2.find("q1").unwrap().query,
            "PATTERN a WHERE a.L = 'C'\nWITHIN 5 TICKS"
        );
        assert_eq!(r2.find("q\t2").unwrap().name, "q\t2");
        assert!(r2.find("missing").is_none());
        std::fs::remove_dir_all(path.parent().unwrap()).ok();
    }

    #[test]
    fn missing_file_is_an_empty_registry() {
        let path = tmp("missing");
        let r = Registry::load(&path).unwrap();
        assert!(r.entries().is_empty());
        std::fs::remove_dir_all(path.parent().unwrap()).ok();
    }
}
