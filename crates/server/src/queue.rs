//! Bounded MPSC queues with observable backpressure.
//!
//! `std::sync::mpsc` hides its depth; backpressure you cannot observe is
//! backpressure you cannot tune, so the server runs its own minimal
//! bounded queue on `Mutex` + `Condvar`. Every enqueue reports the
//! resulting depth (the maximum over those samples is the high-water
//! mark the `stats` verb serves) and a full queue either blocks the
//! producer ([`OverflowPolicy::Block`]) or sheds the item and counts it
//! ([`OverflowPolicy::Reject`]).

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

/// What a producer experiences when the queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverflowPolicy {
    /// Block the producing thread until space frees up — lossless, and
    /// the stall propagates down the TCP connection to the client.
    Block,
    /// Drop the item, count it, and tell the producer — lossy under
    /// overload but never stalls the connection.
    Reject,
}

impl OverflowPolicy {
    /// Parses `"block"` / `"reject"`.
    pub fn parse(s: &str) -> Result<OverflowPolicy, String> {
        match s {
            "block" => Ok(OverflowPolicy::Block),
            "reject" | "shed" => Ok(OverflowPolicy::Reject),
            other => Err(format!("unknown overflow policy `{other}` (block|reject)")),
        }
    }
}

/// Outcome of a [`BoundedQueue::pop_timeout`] call.
#[derive(Debug, PartialEq, Eq)]
pub enum Popped<T> {
    /// An item was dequeued.
    Item(T),
    /// The timeout elapsed with the queue still open and empty.
    TimedOut,
    /// The queue is closed and drained — end of stream.
    Closed,
}

/// Counters a queue accumulates over its lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Items accepted onto the queue.
    pub enqueued: u64,
    /// Items shed because the queue was full under [`OverflowPolicy::Reject`].
    pub shed: u64,
    /// Maximum depth ever observed right after an enqueue.
    pub high_water: usize,
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
    stats: QueueStats,
}

/// A bounded multi-producer queue; consumers block on [`BoundedQueue::pop`].
pub struct BoundedQueue<T> {
    capacity: usize,
    inner: Mutex<Inner<T>>,
    /// Signalled when an item arrives or the queue closes.
    nonempty: Condvar,
    /// Signalled when an item leaves (space for blocked producers).
    nonfull: Condvar,
}

impl<T> BoundedQueue<T> {
    /// A queue holding at most `capacity` items (minimum 1).
    pub fn new(capacity: usize) -> BoundedQueue<T> {
        BoundedQueue {
            capacity: capacity.max(1),
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                closed: false,
                stats: QueueStats::default(),
            }),
            nonempty: Condvar::new(),
            nonfull: Condvar::new(),
        }
    }

    fn lock(&self) -> MutexGuard<'_, Inner<T>> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Blocking enqueue: waits for space, returns the depth after the
    /// push, or `None` if the queue closed while waiting (item dropped).
    pub fn push(&self, item: T) -> Option<usize> {
        let mut inner = self.lock();
        while inner.items.len() >= self.capacity && !inner.closed {
            inner = self
                .nonfull
                .wait(inner)
                .unwrap_or_else(PoisonError::into_inner);
        }
        if inner.closed {
            return None;
        }
        inner.items.push_back(item);
        let depth = inner.items.len();
        inner.stats.enqueued += 1;
        inner.stats.high_water = inner.stats.high_water.max(depth);
        drop(inner);
        self.nonempty.notify_one();
        Some(depth)
    }

    /// Non-blocking enqueue: `Ok(depth)` on success, `Err(item)` back to
    /// the caller when full or closed. A full-queue rejection is counted
    /// as shed.
    pub fn try_push(&self, item: T) -> Result<usize, T> {
        let mut inner = self.lock();
        if inner.closed {
            return Err(item);
        }
        if inner.items.len() >= self.capacity {
            inner.stats.shed += 1;
            return Err(item);
        }
        inner.items.push_back(item);
        let depth = inner.items.len();
        inner.stats.enqueued += 1;
        inner.stats.high_water = inner.stats.high_water.max(depth);
        drop(inner);
        self.nonempty.notify_one();
        Ok(depth)
    }

    /// Blocking dequeue: `None` once the queue is closed *and* drained.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.lock();
        loop {
            if let Some(item) = inner.items.pop_front() {
                drop(inner);
                self.nonfull.notify_one();
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self
                .nonempty
                .wait(inner)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Dequeue with a timeout so the consumer can interleave periodic
    /// work (checkpoint cadence, shutdown checks).
    pub fn pop_timeout(&self, timeout: Duration) -> Popped<T> {
        let mut inner = self.lock();
        loop {
            if let Some(item) = inner.items.pop_front() {
                drop(inner);
                self.nonfull.notify_one();
                return Popped::Item(item);
            }
            if inner.closed {
                return Popped::Closed;
            }
            let (guard, res) = self
                .nonempty
                .wait_timeout(inner, timeout)
                .unwrap_or_else(PoisonError::into_inner);
            inner = guard;
            if res.timed_out() {
                return Popped::TimedOut;
            }
        }
    }

    /// Closes the queue: producers fail fast, the consumer drains what
    /// remains and then sees end-of-stream.
    pub fn close(&self) {
        self.lock().closed = true;
        self.nonempty.notify_all();
        self.nonfull.notify_all();
    }

    /// `true` once [`BoundedQueue::close`] ran.
    pub fn is_closed(&self) -> bool {
        self.lock().closed
    }

    /// Items currently queued.
    pub fn depth(&self) -> usize {
        self.lock().items.len()
    }

    /// Lifetime counters.
    pub fn stats(&self) -> QueueStats {
        self.lock().stats
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn fifo_and_depth_reporting() {
        let q = BoundedQueue::new(4);
        assert_eq!(q.push(1), Some(1));
        assert_eq!(q.push(2), Some(2));
        assert_eq!(q.depth(), 2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        let s = q.stats();
        assert_eq!(s.enqueued, 2);
        assert_eq!(s.high_water, 2);
        assert_eq!(s.shed, 0);
    }

    #[test]
    fn reject_policy_sheds_when_full() {
        let q = BoundedQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.try_push(3), Err(3));
        assert_eq!(q.try_push(4), Err(4));
        let s = q.stats();
        assert_eq!(s.shed, 2);
        assert_eq!(s.enqueued, 2);
        assert_eq!(s.high_water, 2);
        // Space frees up, acceptance resumes.
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.try_push(5), Ok(2));
    }

    #[test]
    fn block_policy_waits_for_space() {
        let q = Arc::new(BoundedQueue::new(1));
        q.push(0).unwrap();
        let producer = {
            let q = Arc::clone(&q);
            thread::spawn(move || q.push(1))
        };
        // The producer is blocked; popping unblocks it.
        thread::sleep(Duration::from_millis(20));
        assert_eq!(q.pop(), Some(0));
        assert_eq!(producer.join().unwrap(), Some(1));
        assert_eq!(q.pop(), Some(1));
    }

    #[test]
    fn close_drains_then_ends() {
        let q = Arc::new(BoundedQueue::new(8));
        q.push("a").unwrap();
        q.push("b").unwrap();
        q.close();
        assert_eq!(q.push("c"), None, "closed queue refuses producers");
        assert_eq!(q.pop(), Some("a"));
        assert_eq!(q.pop(), Some("b"));
        assert_eq!(q.pop(), None, "drained and closed");
        assert!(q.try_push("d").is_err());
    }

    #[test]
    fn pop_timeout_distinguishes_empty_from_closed() {
        let q: BoundedQueue<i32> = BoundedQueue::new(2);
        assert_eq!(q.pop_timeout(Duration::from_millis(5)), Popped::TimedOut);
        q.close();
        assert_eq!(q.pop_timeout(Duration::from_millis(5)), Popped::Closed);
    }

    #[test]
    fn close_wakes_a_blocked_producer() {
        let q = Arc::new(BoundedQueue::new(1));
        q.push(0).unwrap();
        let producer = {
            let q = Arc::clone(&q);
            thread::spawn(move || q.push(1))
        };
        thread::sleep(Duration::from_millis(20));
        q.close();
        assert_eq!(producer.join().unwrap(), None);
    }
}
