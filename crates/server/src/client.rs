//! Line-protocol client used by `ses-cli client`, the benchmarks, and
//! the integration tests.
//!
//! One TCP connection, synchronous request/response plus asynchronous
//! match delivery. Replies and match lines share the wire, so reads go
//! through [`Client::read_reply`] (skips/collects match lines until a
//! non-match object arrives) or [`Client::read_line`] (raw next object).

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

use ses_metrics::{JsonObject, JsonValue};

use crate::protocol;

/// A connected protocol client.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    /// Match lines received while waiting for a command reply.
    pub pending_matches: Vec<JsonObject>,
}

fn obj(value: JsonValue) -> Result<JsonObject, String> {
    match value {
        JsonValue::Object(o) => Ok(o),
        other => Err(format!("expected JSON object, got {other}")),
    }
}

impl Client {
    /// Connects to `addr` (e.g. `127.0.0.1:4735`).
    pub fn connect(addr: &str) -> Result<Client, String> {
        let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
        stream.set_nodelay(true).ok();
        let writer = stream.try_clone().map_err(|e| e.to_string())?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
            pending_matches: Vec::new(),
        })
    }

    /// Sets (or clears) the read timeout for subsequent reads.
    pub fn set_read_timeout(&mut self, timeout: Option<Duration>) -> Result<(), String> {
        self.reader
            .get_ref()
            .set_read_timeout(timeout)
            .map_err(|e| e.to_string())
    }

    /// Sends one raw protocol line.
    pub fn send_line(&mut self, line: &str) -> Result<(), String> {
        self.writer
            .write_all(line.as_bytes())
            .and_then(|_| self.writer.write_all(b"\n"))
            .and_then(|_| self.writer.flush())
            .map_err(|e| e.to_string())
    }

    /// Reads the next protocol object (reply or match).
    /// `Ok(None)` means the server closed the connection.
    pub fn read_line(&mut self) -> Result<Option<JsonObject>, String> {
        let mut line = String::new();
        loop {
            line.clear();
            match self.reader.read_line(&mut line) {
                Ok(0) => return Ok(None),
                Ok(_) => {
                    let trimmed = line.trim();
                    if trimmed.is_empty() {
                        continue;
                    }
                    return obj(protocol::parse_json(trimmed)?).map(Some);
                }
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    return Err("timeout".to_string());
                }
                Err(e) => return Err(e.to_string()),
            }
        }
    }

    /// Reads until a non-match object arrives; match lines seen on the
    /// way are appended to [`Client::pending_matches`].
    pub fn read_reply(&mut self) -> Result<JsonObject, String> {
        loop {
            let Some(object) = self.read_line()? else {
                return Err("connection closed".to_string());
            };
            if object.get("op").and_then(JsonValue::as_str) == Some("match") {
                self.pending_matches.push(object);
                continue;
            }
            return Ok(object);
        }
    }

    /// Reads a reply and fails on `{"ok": false}`.
    pub fn expect_ok(&mut self) -> Result<JsonObject, String> {
        let reply = self.read_reply()?;
        if reply.get("ok").and_then(JsonValue::as_bool) == Some(true) {
            Ok(reply)
        } else {
            Err(format!(
                "server error: {}",
                reply
                    .get("error")
                    .and_then(JsonValue::as_str)
                    .unwrap_or("unknown")
            ))
        }
    }

    /// Ingests one event (fire-and-forget; pair with [`Client::sync`]).
    pub fn ingest(&mut self, ts: i64, values: &[JsonValue]) -> Result<(), String> {
        let rendered: Vec<String> = values.iter().map(|v| v.to_string()).collect();
        self.send_line(&format!(
            "{{\"op\":\"ingest\",\"ts\":{ts},\"values\":[{}]}}",
            rendered.join(",")
        ))
    }

    /// Ingests a batch of events in one wire message.
    pub fn batch(&mut self, events: &[(i64, Vec<JsonValue>)]) -> Result<(), String> {
        let mut body = String::from("{\"op\":\"batch\",\"events\":[");
        for (i, (ts, values)) in events.iter().enumerate() {
            if i > 0 {
                body.push(',');
            }
            let rendered: Vec<String> = values.iter().map(|v| v.to_string()).collect();
            body.push_str(&format!("[{ts},[{}]]", rendered.join(",")));
        }
        body.push_str("]}");
        self.send_line(&body)
    }

    /// Barrier: all prior ingests from this connection are consumed and
    /// (when durability is on) fsynced once the reply returns.
    pub fn sync(&mut self) -> Result<JsonObject, String> {
        self.send_line("{\"op\":\"sync\"}")?;
        self.expect_ok()
    }

    /// Liveness + watermark probe.
    pub fn ping(&mut self) -> Result<JsonObject, String> {
        self.send_line("{\"op\":\"ping\"}")?;
        self.expect_ok()
    }

    /// Server statistics snapshot.
    pub fn stats(&mut self) -> Result<JsonObject, String> {
        self.send_line("{\"op\":\"stats\"}")?;
        self.expect_ok()
    }

    /// Registers (or re-attaches to) the named subscription and resumes
    /// delivery after `cursor` already-seen matches.
    pub fn subscribe(
        &mut self,
        name: &str,
        query: &str,
        cursor: u64,
    ) -> Result<JsonObject, String> {
        self.send_line(&format!(
            "{{\"op\":\"subscribe\",\"name\":{},\"query\":{},\"cursor\":{cursor}}}",
            JsonValue::Str(name.to_string()),
            JsonValue::Str(query.to_string()),
        ))?;
        self.expect_ok()
    }

    /// Asks the server to drain, checkpoint, and exit.
    pub fn shutdown(&mut self) -> Result<JsonObject, String> {
        self.send_line("{\"op\":\"shutdown\"}")?;
        self.expect_ok()
    }

    /// Pops a match line: pending buffer first, then the wire.
    /// `Ok(None)` on connection close.
    pub fn next_match(&mut self) -> Result<Option<JsonObject>, String> {
        if !self.pending_matches.is_empty() {
            return Ok(Some(self.pending_matches.remove(0)));
        }
        loop {
            let Some(object) = self.read_line()? else {
                return Ok(None);
            };
            if object.get("op").and_then(JsonValue::as_str) == Some("match") {
                return Ok(Some(object));
            }
            // Non-match object while waiting for matches (e.g. a stale
            // reply) — ignore it.
        }
    }
}
