//! # ses-server — long-running sequenced-event-set match server
//!
//! A std-only TCP server that keeps a [`ses_core::PatternBank`] alive
//! across many producer and subscriber connections:
//!
//! * **Wire protocol** — line-delimited JSON, one request or reply per
//!   line ([`protocol`]). Verbs: `ingest`, `batch`, `sync`, `subscribe`,
//!   `stats`, `ping`, `shutdown`.
//! * **Backpressure** — every queue is bounded ([`queue::BoundedQueue`]).
//!   Producers either block (the default) or are shed with counters
//!   under the `reject` policy; slow subscribers are disconnected when
//!   their outbound queue fills and resume via their durable cursor.
//! * **Durable subscriptions** — with `--checkpoint DIR` the server
//!   journals events ([`ses_store::SharedEventLog`]), registers
//!   subscriptions in a crash-safe registry ([`registry::Registry`]),
//!   appends each finalized match to a per-subscription
//!   [`ses_store::MatchLog`], and snapshots the bank. A killed and
//!   restarted server replays the log suffix and suppresses matches
//!   already durable, so every subscriber sees each match exactly once.
//! * **Graceful shutdown** — SIGINT/SIGTERM or the `shutdown` verb
//!   drain the queue, sync every sink, and write a final checkpoint
//!   ([`signal`]).
//!
//! See `docs/server.md` for the protocol reference and the
//! exactly-once argument.

pub mod client;
pub mod protocol;
pub mod queue;
pub mod registry;
mod router;
pub mod server;
pub mod signal;

pub use client::Client;
pub use queue::{BoundedQueue, OverflowPolicy, Popped, QueueStats};
pub use registry::{Registry, SubSpec};
pub use server::{Server, ServerConfig};
