//! Server assembly: TCP acceptor, per-connection threads, lifecycle.
//!
//! Thread model (std-only; the workspace has no async runtime):
//!
//! ```text
//! acceptor ──spawns──▶ reader (per conn) ──Msg──▶ bounded core queue
//!                      writer (per conn) ◀─lines── router (one thread)
//! ```
//!
//! The reader parses line-JSON requests and enqueues `Msg`s; under the
//! `block` policy a full core queue stalls the reader (backpressure
//! propagates down TCP to the client), under `reject` events are shed
//! and counted. The writer drains the connection's bounded outbound
//! queue; a subscriber that cannot keep up fills it and is disconnected
//! — its durable cursor lets it resume exactly where it left off.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

use ses_event::Schema;
use ses_query::TickUnit;

use crate::protocol::{self, Request};
use crate::queue::{BoundedQueue, OverflowPolicy};
use crate::router::{Conn, ConnTable, Msg, Router};
use crate::signal;

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks a free port (see [`Server::port`]).
    pub addr: String,
    /// Event schema every ingested row must satisfy.
    pub schema: Schema,
    /// Tick unit for parsing subscription queries.
    pub tick: TickUnit,
    /// Core ingest queue bound.
    pub queue_capacity: usize,
    /// Per-connection outbound queue bound.
    pub outbound_capacity: usize,
    /// What producers experience when the core queue is full.
    pub policy: OverflowPolicy,
    /// Durability root: checkpoints, subscription registry, and
    /// per-subscription match logs live here. `None` = memory-only.
    pub checkpoint: Option<PathBuf>,
    /// Event log directory; defaults to `<checkpoint>/events`.
    pub event_log: Option<PathBuf>,
    /// Checkpoint cadence in consumed events.
    pub checkpoint_every: usize,
    /// Checkpoints retained.
    pub keep: usize,
    /// Evict expired events from pattern relations (bounded memory).
    pub evict: bool,
    /// Crash injection: abort the process after consuming this many
    /// post-restart events (the recovery suite's kill points; read from
    /// `SES_KILL_AFTER` by [`ServerConfig::from_env`]).
    pub kill_after: Option<u64>,
}

impl ServerConfig {
    /// Defaults: loopback on an ephemeral port, blocking backpressure,
    /// memory-only.
    pub fn new(schema: Schema) -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            schema,
            tick: TickUnit::Abstract,
            queue_capacity: 1024,
            outbound_capacity: 1024,
            policy: OverflowPolicy::Block,
            checkpoint: None,
            event_log: None,
            checkpoint_every: 1000,
            keep: 3,
            evict: true,
            kill_after: None,
        }
    }

    /// Applies environment overrides (currently `SES_KILL_AFTER`).
    pub fn from_env(mut self) -> ServerConfig {
        if let Ok(v) = std::env::var("SES_KILL_AFTER") {
            if let Ok(n) = v.parse::<u64>() {
                self.kill_after = Some(n);
            }
        }
        self
    }
}

/// A running server instance (in-process handle).
pub struct Server {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    router: Option<JoinHandle<Result<(), String>>>,
    queue: Arc<BoundedQueue<Msg>>,
    /// Human-readable recovery summary from startup.
    pub recovery: String,
}

impl Server {
    /// Restores durable state, replays the event-log suffix, binds the
    /// listener, and spawns the acceptor and router threads.
    pub fn start(config: ServerConfig) -> Result<Server, String> {
        let shutdown = Arc::new(AtomicBool::new(false));
        let queue = Arc::new(BoundedQueue::new(config.queue_capacity));
        let conns: Arc<Mutex<ConnTable>> = Arc::new(Mutex::new(ConnTable::default()));

        let (router, recovery) = Router::recover(
            &config,
            Arc::clone(&queue),
            Arc::clone(&conns),
            Arc::clone(&shutdown),
        )?;

        let listener =
            TcpListener::bind(&config.addr).map_err(|e| format!("bind {}: {e}", config.addr))?;
        let addr = listener.local_addr().map_err(|e| e.to_string())?;
        listener.set_nonblocking(true).map_err(|e| e.to_string())?;

        let router_handle = std::thread::Builder::new()
            .name("ses-router".into())
            .spawn(move || router.run())
            .map_err(|e| e.to_string())?;

        let acceptor_handle = {
            let shutdown = Arc::clone(&shutdown);
            let queue = Arc::clone(&queue);
            let conns = Arc::clone(&conns);
            let schema = config.schema.clone();
            let policy = config.policy;
            let outbound = config.outbound_capacity;
            std::thread::Builder::new()
                .name("ses-acceptor".into())
                .spawn(move || {
                    accept_loop(listener, shutdown, queue, conns, schema, policy, outbound)
                })
                .map_err(|e| e.to_string())?
        };

        Ok(Server {
            addr,
            shutdown,
            acceptor: Some(acceptor_handle),
            router: Some(router_handle),
            queue,
            recovery,
        })
    }

    /// The bound port (useful with `addr = 127.0.0.1:0`).
    pub fn port(&self) -> u16 {
        self.addr.port()
    }

    /// The actual bound address (host and port the listener resolved
    /// to, not the configured string).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests graceful shutdown and waits for the router to drain,
    /// checkpoint, and exit.
    pub fn stop(mut self) -> Result<(), String> {
        self.shutdown.store(true, Ordering::SeqCst);
        self.join()
    }

    /// Waits for the server to exit (shutdown verb, signal, or
    /// [`Server::stop`]).
    pub fn join(&mut self) -> Result<(), String> {
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        let result = match self.router.take() {
            Some(h) => h.join().map_err(|_| "router panicked".to_string())?,
            None => Ok(()),
        };
        self.queue.close();
        result
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        let _ = self.join();
    }
}

#[allow(clippy::too_many_arguments)]
fn accept_loop(
    listener: TcpListener,
    shutdown: Arc<AtomicBool>,
    queue: Arc<BoundedQueue<Msg>>,
    conns: Arc<Mutex<ConnTable>>,
    schema: Schema,
    policy: OverflowPolicy,
    outbound: usize,
) {
    loop {
        if shutdown.load(Ordering::SeqCst) || signal::requested() {
            return;
        }
        match listener.accept() {
            Ok((stream, _addr)) => {
                let conn = conns
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .insert(outbound);
                spawn_connection(
                    stream,
                    conn,
                    Arc::clone(&conns),
                    Arc::clone(&queue),
                    Arc::clone(&shutdown),
                    schema.clone(),
                    policy,
                );
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(_) => {
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    }
}

fn spawn_connection(
    stream: TcpStream,
    conn: Arc<Conn>,
    conns: Arc<Mutex<ConnTable>>,
    queue: Arc<BoundedQueue<Msg>>,
    shutdown: Arc<AtomicBool>,
    schema: Schema,
    policy: OverflowPolicy,
) {
    let drop_entry = |conn: &Arc<Conn>, conns: &Arc<Mutex<ConnTable>>| {
        conn.disconnect();
        conns
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .remove(conn.id);
    };
    let write_stream = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => {
            drop_entry(&conn, &conns);
            return;
        }
    };
    // Writer: drain the outbound queue to the socket.
    {
        let conn = Arc::clone(&conn);
        let _ = std::thread::Builder::new()
            .name(format!("ses-conn-{}-w", conn.id))
            .spawn(move || writer_loop(write_stream, conn));
    }
    // Reader: parse requests, enqueue messages. The reader owns the
    // table entry — it removes it on exit so connection churn does not
    // grow the table (ids are never reused, see `ConnTable`).
    let name = format!("ses-conn-{}-r", conn.id);
    let spawned = std::thread::Builder::new().name(name).spawn(move || {
        reader_loop(stream, &conn, &queue, &shutdown, &schema, policy);
        drop_entry(&conn, &conns);
    });
    let _ = spawned;
}

fn writer_loop(stream: TcpStream, conn: Arc<Conn>) {
    let mut stream = stream;
    while let Some(line) = conn.out.pop() {
        if stream.write_all(line.as_bytes()).is_err() || stream.write_all(b"\n").is_err() {
            conn.disconnect();
            return;
        }
        // Flush only when the queue runs dry — batches bursts.
        if conn.out.depth() == 0 && stream.flush().is_err() {
            conn.disconnect();
            return;
        }
    }
    let _ = stream.flush();
}

fn reader_loop(
    stream: TcpStream,
    conn: &Arc<Conn>,
    queue: &Arc<BoundedQueue<Msg>>,
    shutdown: &Arc<AtomicBool>,
    schema: &Schema,
    policy: OverflowPolicy,
) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        if shutdown.load(Ordering::SeqCst) || signal::requested() {
            return;
        }
        if !conn.alive.load(Ordering::SeqCst) {
            return;
        }
        match reader.read_line(&mut line) {
            Ok(0) => {
                // Peer closed. `line` may still hold a prefix carried
                // over from a timed-out read whose remainder never
                // arrived; a request without its newline is the same
                // best-effort final line as the `Ok(_)`-at-EOF case.
                let trimmed = line.trim();
                if !trimmed.is_empty() {
                    handle_line(trimmed, conn, queue, schema, policy);
                }
                return;
            }
            Ok(_) => {
                let trimmed = line.trim();
                if !trimmed.is_empty() && !handle_line(trimmed, conn, queue, schema, policy) {
                    return;
                }
                // Clear only after the line is fully read and handled.
                line.clear();
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                // The timed-out read may have left a partial line in
                // `line`; keep it — the next read_line appends the rest.
                continue;
            }
            Err(_) => {
                return;
            }
        }
    }
}

/// Handles one request line; `false` ends the connection.
fn handle_line(
    line: &str,
    conn: &Arc<Conn>,
    queue: &Arc<BoundedQueue<Msg>>,
    schema: &Schema,
    policy: OverflowPolicy,
) -> bool {
    let request = match protocol::parse_request(line) {
        Ok(r) => r,
        Err(e) => {
            conn.send(protocol::error("parse", e));
            return true;
        }
    };
    match request {
        Request::Ingest { ts, values } => ingest_one(ts, &values, conn, queue, schema, policy),
        Request::Batch { events } => {
            for (ts, values) in events {
                if !ingest_one(ts, &values, conn, queue, schema, policy) {
                    return false;
                }
            }
            true
        }
        Request::Sync => control(queue, Msg::Sync { conn: conn.id }),
        Request::Ping => control(queue, Msg::Ping { conn: conn.id }),
        Request::Stats => control(queue, Msg::Stats { conn: conn.id }),
        Request::Shutdown => control(queue, Msg::Shutdown { conn: conn.id }),
        Request::Subscribe {
            name,
            query,
            cursor,
        } => control(
            queue,
            Msg::Subscribe {
                conn: conn.id,
                name,
                query,
                cursor,
            },
        ),
    }
}

/// Control messages always block — they are rare, must not be shed, and
/// their queue position is their ordering guarantee.
fn control(queue: &Arc<BoundedQueue<Msg>>, msg: Msg) -> bool {
    queue.push(msg).is_some()
}

fn ingest_one(
    ts: i64,
    values: &[ses_metrics::JsonValue],
    conn: &Arc<Conn>,
    queue: &Arc<BoundedQueue<Msg>>,
    schema: &Schema,
    policy: OverflowPolicy,
) -> bool {
    let typed = match protocol::event_values(schema, values) {
        Ok(v) => v,
        Err(e) => {
            conn.send(protocol::error("ingest", e));
            return true;
        }
    };
    let msg = Msg::Event {
        ts,
        values: typed,
        conn: conn.id,
    };
    match policy {
        OverflowPolicy::Block => {
            if queue.push(msg).is_none() {
                return false; // server shutting down
            }
            conn.accepted.fetch_add(1, Ordering::SeqCst);
        }
        OverflowPolicy::Reject => match queue.try_push(msg) {
            Ok(_) => {
                conn.accepted.fetch_add(1, Ordering::SeqCst);
            }
            Err(_) => {
                conn.shed.fetch_add(1, Ordering::SeqCst);
            }
        },
    }
    true
}
