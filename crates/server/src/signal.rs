//! Process-wide graceful-shutdown flag, wired to SIGINT/SIGTERM.
//!
//! The workspace is std-only, so instead of a signal-handling crate this
//! installs a classic `signal(2)` handler that flips one `AtomicBool`.
//! Everything a handler may legally do — and all the server needs: the
//! accept loop, the router, and `ses-cli stream` poll [`requested`] and
//! drain gracefully (finish in-flight pushes, sync sinks, write a final
//! checkpoint) instead of dying mid-write.

use std::sync::atomic::{AtomicBool, Ordering};

static SHUTDOWN: AtomicBool = AtomicBool::new(false);

const SIGINT: i32 = 2;
const SIGTERM: i32 = 15;

extern "C" fn on_signal(_sig: i32) {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

extern "C" {
    // Provided by libc on every supported platform; `usize` stands in
    // for the handler function pointer (the ABI passes it untyped).
    fn signal(signum: i32, handler: usize) -> usize;
}

/// Installs the SIGINT/SIGTERM handlers (idempotent).
pub fn install() {
    unsafe {
        signal(SIGINT, on_signal as *const () as usize);
        signal(SIGTERM, on_signal as *const () as usize);
    }
}

/// `true` once a termination signal arrived or [`trigger`] ran.
pub fn requested() -> bool {
    SHUTDOWN.load(Ordering::SeqCst)
}

/// Requests shutdown programmatically (the `shutdown` protocol verb and
/// in-process tests use this instead of raising a real signal).
pub fn trigger() {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

/// Clears the flag — for tests that start several servers in one process.
pub fn reset() {
    SHUTDOWN.store(false, Ordering::SeqCst);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trigger_and_reset_toggle_the_flag() {
        reset();
        assert!(!requested());
        trigger();
        assert!(requested());
        reset();
        assert!(!requested());
    }

    #[test]
    fn install_is_idempotent() {
        install();
        install();
    }
}
