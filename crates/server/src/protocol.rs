//! The server's wire protocol: line-delimited JSON over TCP.
//!
//! Every message — in either direction — is one JSON object on one
//! line. Client requests carry an `"op"`; server replies echo it with
//! `"ok": true|false`, and asynchronous match deliveries use
//! `"op": "match"`. The full verb reference lives in `docs/server.md`.
//!
//! ```text
//! → {"op":"ingest","ts":42,"values":[7,"C"]}
//! → {"op":"sync"}
//! ← {"ok":true,"op":"sync","accepted":1,"shed":0,"durable":1}
//! → {"op":"subscribe","name":"q1","query":"PATTERN …","cursor":0}
//! ← {"ok":true,"op":"subscribe","sub":"q1","id":0,"resend":0}
//! ← {"op":"match","sub":"q1","seq":1,"match":"{a: 0@42, …}"}
//! ```
//!
//! Parsing builds the same [`JsonValue`] tree the rendering side uses
//! (`ses-metrics`), so there is exactly one JSON dialect in the
//! workspace and zero third-party dependencies.

use ses_event::{AttrType, Schema, Timestamp, Value};
use ses_metrics::{JsonObject, JsonValue};

/// A parsed client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness / progress probe.
    Ping,
    /// One event: timestamp ticks plus one value per schema attribute.
    Ingest {
        /// Event timestamp in ticks.
        ts: i64,
        /// Attribute values in schema order.
        values: Vec<JsonValue>,
    },
    /// Many events in one line (amortizes parsing on the hot path).
    Batch {
        /// `(ts, values)` pairs in stream order.
        events: Vec<(i64, Vec<JsonValue>)>,
    },
    /// Barrier: ack once everything this connection ingested before the
    /// sync has been consumed, reporting durable/shed counts.
    Sync,
    /// Register (or re-attach to) a standing pattern subscription.
    Subscribe {
        /// Subscription name — the durable identity across reconnects.
        name: String,
        /// Query text in the `ses-query` language.
        query: String,
        /// Match lines already processed by this client; the server
        /// resends everything after this cursor.
        cursor: u64,
    },
    /// Server-wide statistics (queues, patterns, durability).
    Stats,
    /// Graceful shutdown: drain, sync, final checkpoint, exit.
    Shutdown,
}

/// Parses one request line.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let v = parse_json(line)?;
    let o = v.as_object().ok_or("request must be a JSON object")?;
    let op = o
        .get("op")
        .and_then(JsonValue::as_str)
        .ok_or("request must have a string `op`")?;
    match op {
        "ping" => Ok(Request::Ping),
        "sync" => Ok(Request::Sync),
        "stats" => Ok(Request::Stats),
        "shutdown" => Ok(Request::Shutdown),
        "ingest" => {
            let ts = o
                .get("ts")
                .and_then(JsonValue::as_i64)
                .ok_or("ingest: integer `ts` required")?;
            let values = o
                .get("values")
                .and_then(JsonValue::as_array)
                .ok_or("ingest: array `values` required")?;
            Ok(Request::Ingest {
                ts,
                values: values.to_vec(),
            })
        }
        "batch" => {
            let events = o
                .get("events")
                .and_then(JsonValue::as_array)
                .ok_or("batch: array `events` required")?;
            let mut out = Vec::with_capacity(events.len());
            for e in events {
                let pair = e.as_array().ok_or("batch: each event is [ts, [values…]]")?;
                if pair.len() != 2 {
                    return Err("batch: each event is [ts, [values…]]".into());
                }
                let ts = pair[0].as_i64().ok_or("batch: integer ts required")?;
                let values = pair[1]
                    .as_array()
                    .ok_or("batch: value array required")?
                    .to_vec();
                out.push((ts, values));
            }
            Ok(Request::Batch { events: out })
        }
        "subscribe" => {
            let name = o
                .get("name")
                .and_then(JsonValue::as_str)
                .ok_or("subscribe: string `name` required")?;
            let query = o
                .get("query")
                .and_then(JsonValue::as_str)
                .ok_or("subscribe: string `query` required")?;
            let cursor = o.get("cursor").and_then(JsonValue::as_u64).unwrap_or(0);
            Ok(Request::Subscribe {
                name: name.to_string(),
                query: query.to_string(),
                cursor,
            })
        }
        other => Err(format!("unknown op `{other}`")),
    }
}

/// Converts a JSON value row into typed event values under `schema`.
pub fn event_values(schema: &Schema, raw: &[JsonValue]) -> Result<Vec<Value>, String> {
    let attrs = schema.attrs();
    if raw.len() != attrs.len() {
        return Err(format!(
            "expected {} value(s) for the schema, got {}",
            attrs.len(),
            raw.len()
        ));
    }
    attrs
        .iter()
        .zip(raw)
        .map(|(a, v)| {
            let fail = || format!("attribute `{}` expects {}", a.name, a.ty);
            Ok(match a.ty {
                AttrType::Int => Value::Int(v.as_i64().ok_or_else(fail)?),
                AttrType::Float => Value::Float(v.as_f64().ok_or_else(fail)?),
                AttrType::Str => Value::from(v.as_str().ok_or_else(fail)?),
                AttrType::Bool => Value::Bool(v.as_bool().ok_or_else(fail)?),
            })
        })
        .collect()
}

/// Renders typed event values back to the JSON the client would send —
/// the client helper uses this to encode CSV rows for ingestion.
pub fn value_json(v: &Value) -> JsonValue {
    match v {
        Value::Int(i) => JsonValue::Int(*i),
        Value::Float(x) => JsonValue::Float(*x),
        Value::Str(s) => JsonValue::Str(s.to_string()),
        Value::Bool(b) => JsonValue::Bool(*b),
    }
}

/// `{"ok":true,"op":…}` reply scaffold.
pub fn ok(op: &str) -> JsonObject {
    JsonObject::new().with("ok", true).with("op", op)
}

/// `{"ok":false,"op":…,"error":…}` reply.
pub fn error(op: &str, message: impl Into<String>) -> String {
    JsonObject::new()
        .with("ok", false)
        .with("op", op)
        .with("error", message.into())
        .to_string()
}

/// One asynchronous match delivery line.
pub fn match_line(sub: &str, seq: u64, rendered: &str) -> String {
    JsonObject::new()
        .with("op", "match")
        .with("sub", sub)
        .with("seq", seq)
        .with("match", rendered)
        .to_string()
}

/// Renders a timestamp as a JSON value (`null` when absent).
pub fn ts_json(ts: Option<Timestamp>) -> JsonValue {
    match ts {
        Some(t) => JsonValue::Int(t.ticks()),
        None => JsonValue::Null,
    }
}

// ---------------------------------------------------------------------
// JSON parsing
// ---------------------------------------------------------------------

/// Parses one JSON document (trailing whitespace allowed).
pub fn parse_json(input: &str) -> Result<JsonValue, String> {
    let bytes = input.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing characters at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(format!("unexpected `{}` at byte {}", c as char, self.pos)),
            None => Err("unexpected end of input".into()),
        }
    }

    fn literal(&mut self, word: &str, v: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut o = JsonObject::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(o));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            o.set(key, v);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(o));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            self.pos += 4;
                            // Surrogate pairs: only the BMP round-trips;
                            // the escaper never emits surrogates, so a
                            // lone one is simply replaced.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("unknown escape `\\{}`", other as char)),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte safe).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| "invalid UTF-8")?;
                    let c = s.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut float = false;
        if self.peek() == Some(b'.') {
            float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if float {
            text.parse::<f64>()
                .map(JsonValue::Float)
                .map_err(|_| format!("invalid number `{text}`"))
        } else if let Ok(i) = text.parse::<i64>() {
            Ok(JsonValue::Int(i))
        } else {
            text.parse::<u64>()
                .map(JsonValue::UInt)
                .map_err(|_| format!("invalid number `{text}`"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_rendering() {
        let cases = [
            r#"{"op":"ping"}"#,
            r#"{"ok":true,"op":"sync","accepted":3,"shed":0,"durable":3}"#,
            r#"{"a":[1,-2,3.5,"x",null,false],"b":{"c":"d\ne"}}"#,
            r#"[]"#,
            r#"{}"#,
        ];
        for c in cases {
            let v = parse_json(c).unwrap();
            assert_eq!(v.to_string(), c, "round trip of {c}");
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in ["", "{", "{\"a\":}", "[1,]", "tru", "1 2", "\"unterminated"] {
            assert!(parse_json(bad).is_err(), "{bad:?} must fail");
        }
    }

    #[test]
    fn requests_parse() {
        assert_eq!(parse_request(r#"{"op":"ping"}"#).unwrap(), Request::Ping);
        assert_eq!(
            parse_request(r#"{"op":"ingest","ts":5,"values":[1,"C"]}"#).unwrap(),
            Request::Ingest {
                ts: 5,
                values: vec![JsonValue::Int(1), JsonValue::Str("C".into())],
            }
        );
        let batch = parse_request(r#"{"op":"batch","events":[[1,[1,"A"]],[2,[2,"B"]]]}"#).unwrap();
        match batch {
            Request::Batch { events } => assert_eq!(events.len(), 2),
            other => panic!("{other:?}"),
        }
        assert_eq!(
            parse_request(r#"{"op":"subscribe","name":"q","query":"PATTERN a","cursor":7}"#)
                .unwrap(),
            Request::Subscribe {
                name: "q".into(),
                query: "PATTERN a".into(),
                cursor: 7,
            }
        );
        assert!(parse_request(r#"{"op":"warp"}"#).is_err());
        assert!(parse_request(r#"{"op":"ingest","ts":"x","values":[]}"#).is_err());
    }

    #[test]
    fn values_convert_under_schema() {
        use ses_event::Schema;
        let schema = Schema::builder()
            .attr("ID", AttrType::Int)
            .attr("L", AttrType::Str)
            .build()
            .unwrap();
        let vals = event_values(&schema, &[JsonValue::Int(7), JsonValue::Str("C".into())]).unwrap();
        assert_eq!(vals, vec![Value::Int(7), Value::from("C")]);
        assert!(
            event_values(&schema, &[JsonValue::Int(7)]).is_err(),
            "arity"
        );
        assert!(
            event_values(
                &schema,
                &[JsonValue::Str("x".into()), JsonValue::Str("C".into())]
            )
            .is_err(),
            "type"
        );
    }

    #[test]
    fn reply_builders_render() {
        assert_eq!(ok("ping").to_string(), r#"{"ok":true,"op":"ping"}"#);
        assert_eq!(
            error("subscribe", "duplicate"),
            r#"{"ok":false,"op":"subscribe","error":"duplicate"}"#
        );
        assert_eq!(
            match_line("q1", 3, "{a: 0@1}"),
            r#"{"op":"match","sub":"q1","seq":3,"match":"{a: 0@1}"}"#
        );
    }
}
