//! In-process server integration tests: protocol round-trips, match
//! delivery, backpressure accounting, durable resume, graceful stop.
//!
//! Each test binds `127.0.0.1:0` and talks to the server over real TCP
//! through [`ses_server::Client`]; the crash/SIGKILL matrix lives in the
//! workspace-level `tests/server_crash_reconnect.rs` (it needs separate
//! processes).

use std::path::PathBuf;
use std::time::Duration;

use ses_event::{AttrType, Schema};
use ses_metrics::JsonValue;
use ses_query::TickUnit;
use ses_server::{Client, OverflowPolicy, Server, ServerConfig};

fn schema() -> Schema {
    Schema::builder()
        .attr("ID", AttrType::Int)
        .attr("L", AttrType::Str)
        .build()
        .unwrap()
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "ses-server-{name}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

const CD: &str = "PATTERN c THEN d WHERE c.L = 'C' AND d.L = 'D' WITHIN 5 TICKS";

fn config(checkpoint: Option<PathBuf>) -> ServerConfig {
    let mut c = ServerConfig::new(schema());
    c.tick = TickUnit::Abstract;
    c.checkpoint = checkpoint;
    c
}

fn connect(server: &Server) -> Client {
    let mut c = Client::connect(&format!("127.0.0.1:{}", server.port())).unwrap();
    c.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    c
}

fn ev(id: i64, label: &str) -> Vec<JsonValue> {
    vec![JsonValue::Int(id), JsonValue::Str(label.to_string())]
}

#[test]
fn ping_ingest_sync_round_trip() {
    let server = Server::start(config(None)).unwrap();
    let mut c = connect(&server);

    let pong = c.ping().unwrap();
    assert_eq!(pong.get("op").and_then(JsonValue::as_str), Some("pong"));
    assert_eq!(pong.get("consumed").and_then(JsonValue::as_u64), Some(0));

    c.ingest(1, &ev(1, "C")).unwrap();
    c.ingest(2, &ev(2, "D")).unwrap();
    let ack = c.sync().unwrap();
    assert_eq!(ack.get("consumed").and_then(JsonValue::as_u64), Some(2));
    assert_eq!(ack.get("accepted").and_then(JsonValue::as_u64), Some(2));
    assert_eq!(ack.get("shed").and_then(JsonValue::as_u64), Some(0));

    server.stop().unwrap();
}

#[test]
fn subscriber_receives_matches_as_they_finalize() {
    let server = Server::start(config(None)).unwrap();
    let mut subscriber = connect(&server);
    let ack = subscriber.subscribe("cd", CD, 0).unwrap();
    assert_eq!(ack.get("seq").and_then(JsonValue::as_u64), Some(0));

    let mut producer = connect(&server);
    producer.ingest(1, &ev(1, "C")).unwrap();
    producer.ingest(2, &ev(2, "D")).unwrap();
    // Matches finalize on window expiry: push the watermark past it.
    producer.ingest(100, &ev(3, "X")).unwrap();
    producer.sync().unwrap();

    let m = subscriber.next_match().unwrap().expect("a match line");
    assert_eq!(m.get("sub").and_then(JsonValue::as_str), Some("cd"));
    assert_eq!(m.get("seq").and_then(JsonValue::as_u64), Some(1));
    let rendered = m.get("match").and_then(JsonValue::as_str).unwrap();
    assert!(
        rendered.contains("c/") && rendered.contains("d/"),
        "{rendered}"
    );

    server.stop().unwrap();
}

#[test]
fn bad_input_reports_errors_without_killing_the_connection() {
    let server = Server::start(config(None)).unwrap();
    let mut c = connect(&server);

    c.send_line("this is not json").unwrap();
    let reply = c.read_reply().unwrap();
    assert_eq!(reply.get("ok").and_then(JsonValue::as_bool), Some(false));

    // Wrong arity for the schema.
    c.send_line("{\"op\":\"ingest\",\"ts\":1,\"values\":[1]}")
        .unwrap();
    let reply = c.read_reply().unwrap();
    assert_eq!(reply.get("ok").and_then(JsonValue::as_bool), Some(false));

    // Unknown subscription query text.
    let reply = c.subscribe("bad", "NOT A QUERY", 0);
    assert!(reply.is_err());

    // The connection still works.
    c.ping().unwrap();
    server.stop().unwrap();
}

#[test]
fn request_line_straddling_a_read_stall_is_not_lost() {
    use std::io::{BufRead, BufReader, Write};
    use std::net::TcpStream;

    let server = Server::start(config(None)).unwrap();
    let mut stream = TcpStream::connect(format!("127.0.0.1:{}", server.port())).unwrap();
    stream.set_nodelay(true).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();

    // Send the first half of an ingest request, stall well past the
    // server's 100ms read timeout, then finish the line: the reader
    // must keep the partial prefix across its timed-out read_line.
    let line = "{\"op\":\"ingest\",\"ts\":1,\"values\":[1,\"C\"]}\n";
    let (head, tail) = line.split_at(line.len() / 2);
    stream.write_all(head.as_bytes()).unwrap();
    stream.flush().unwrap();
    std::thread::sleep(Duration::from_millis(400));
    stream.write_all(tail.as_bytes()).unwrap();
    stream.write_all(b"{\"op\":\"sync\"}\n").unwrap();
    stream.flush().unwrap();

    let mut reader = BufReader::new(stream);
    let mut reply = String::new();
    reader.read_line(&mut reply).unwrap();
    assert!(
        reply.contains("\"ok\":true") && reply.contains("\"op\":\"sync\""),
        "stalled line must parse as one request, got: {reply}"
    );
    assert!(
        reply.contains("\"consumed\":1"),
        "the straddled event must be ingested, got: {reply}"
    );

    server.stop().unwrap();
}

#[test]
fn reject_policy_sheds_and_counts_when_the_queue_is_full() {
    let mut cfg = config(None);
    cfg.policy = OverflowPolicy::Reject;
    cfg.queue_capacity = 2;
    let server = Server::start(cfg).unwrap();
    let mut c = connect(&server);

    // Fire enough events that some must be shed while the router chews:
    // the queue holds 2 and the producer is local-loopback fast.
    for i in 0..5000 {
        c.ingest(i, &ev(i, "X")).unwrap();
    }
    let ack = c.sync().unwrap();
    let accepted = ack.get("accepted").and_then(JsonValue::as_u64).unwrap();
    let shed = ack.get("shed").and_then(JsonValue::as_u64).unwrap();
    assert_eq!(accepted + shed, 5000);
    assert!(shed > 0, "expected shedding with a 2-slot queue");
    assert_eq!(
        ack.get("consumed").and_then(JsonValue::as_u64),
        Some(accepted)
    );

    // The server-side stats expose the same shedding.
    let stats = c.stats().unwrap();
    let stats = stats.get("stats").unwrap();
    let queue = stats.as_object().unwrap().get("queue").unwrap();
    let qshed = queue
        .as_object()
        .unwrap()
        .get("shed")
        .and_then(JsonValue::as_u64);
    assert_eq!(qshed, Some(shed));

    server.stop().unwrap();
}

#[test]
fn durable_subscription_resumes_across_server_restart() {
    let dir = tmp("durable-resume");
    {
        let server = Server::start(config(Some(dir.clone()))).unwrap();
        let mut c = connect(&server);
        c.subscribe("cd", CD, 0).unwrap();
        c.ingest(1, &ev(1, "C")).unwrap();
        c.ingest(2, &ev(2, "D")).unwrap();
        c.ingest(100, &ev(3, "X")).unwrap();
        c.sync().unwrap();
        let m = c.next_match().unwrap().expect("match before restart");
        assert_eq!(m.get("seq").and_then(JsonValue::as_u64), Some(1));
        server.stop().unwrap(); // graceful: drains + final checkpoint
    }
    {
        let server = Server::start(config(Some(dir.clone()))).unwrap();
        assert!(
            server.recovery.contains("restored"),
            "recovery = {}",
            server.recovery
        );
        let mut c = connect(&server);
        // Cursor 1: the match is already acknowledged — no resend.
        let ack = c.subscribe("cd", "", 1).unwrap();
        assert_eq!(ack.get("seq").and_then(JsonValue::as_u64), Some(1));
        assert_eq!(ack.get("resend").and_then(JsonValue::as_u64), Some(0));

        // Cursor 0 from a second client: the durable line is resent.
        let mut c0 = connect(&server);
        let ack = c0.subscribe("cd", CD, 0).unwrap();
        assert_eq!(ack.get("resend").and_then(JsonValue::as_u64), Some(1));
        let m = c0.next_match().unwrap().expect("resent match");
        assert_eq!(m.get("seq").and_then(JsonValue::as_u64), Some(1));

        // New matches continue after the restart, exactly once.
        c.ingest(200, &ev(4, "C")).unwrap();
        c.ingest(201, &ev(5, "D")).unwrap();
        c.ingest(300, &ev(6, "X")).unwrap();
        c.sync().unwrap();
        let m = c.next_match().unwrap().expect("post-restart match");
        assert_eq!(m.get("seq").and_then(JsonValue::as_u64), Some(2));
        server.stop().unwrap();
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn shutdown_verb_stops_the_server_after_a_final_checkpoint() {
    let dir = tmp("shutdown-verb");
    let mut server = Server::start(config(Some(dir.clone()))).unwrap();
    let mut c = connect(&server);
    c.subscribe("cd", CD, 0).unwrap();
    c.ingest(1, &ev(1, "C")).unwrap();
    c.shutdown().unwrap();
    server.join().unwrap();

    // Restart restores the consumed event without any replay loss.
    let server = Server::start(config(Some(dir.clone()))).unwrap();
    let mut c = connect(&server);
    let pong = c.ping().unwrap();
    assert_eq!(pong.get("consumed").and_then(JsonValue::as_u64), Some(1));
    server.stop().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn batch_ingest_and_multiple_subscribers_fan_out() {
    let server = Server::start(config(None)).unwrap();
    let mut s1 = connect(&server);
    let mut s2 = connect(&server);
    s1.subscribe("cd", CD, 0).unwrap();
    s2.subscribe("cd", "", 0).unwrap();

    let mut producer = connect(&server);
    producer
        .batch(&[(1, ev(1, "C")), (2, ev(2, "D")), (100, ev(3, "X"))])
        .unwrap();
    producer.sync().unwrap();

    for s in [&mut s1, &mut s2] {
        let m = s.next_match().unwrap().expect("fanned-out match");
        assert_eq!(m.get("sub").and_then(JsonValue::as_str), Some("cd"));
    }
    server.stop().unwrap();
}
