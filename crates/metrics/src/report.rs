//! Plain-text report tables for the experiment harness.
//!
//! The `experiments` binary prints the same rows the paper's tables and
//! figure series report; [`Table`] renders them with aligned columns and
//! no third-party dependencies.

use std::fmt;

/// Column alignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Align {
    /// Left-aligned (labels).
    Left,
    /// Right-aligned (numbers).
    Right,
}

/// A simple aligned text table.
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    aligns: Vec<Align>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers; numeric alignment
    /// defaults to [`Align::Right`] for all but the first column.
    pub fn new<S: Into<String>>(headers: impl IntoIterator<Item = S>) -> Table {
        let headers: Vec<String> = headers.into_iter().map(Into::into).collect();
        let aligns = headers
            .iter()
            .enumerate()
            .map(|(i, _)| if i == 0 { Align::Left } else { Align::Right })
            .collect();
        Table {
            headers,
            aligns,
            rows: Vec::new(),
        }
    }

    /// Overrides the alignment of column `col`.
    pub fn align(mut self, col: usize, align: Align) -> Table {
        self.aligns[col] = align;
        self
    }

    /// Appends a row; panics if the arity does not match the headers.
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Table {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row arity must match headers"
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` iff the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as JSON — the machine-readable twin of the
    /// [`fmt::Display`] text rendering, shared by `--format json` and
    /// the server's `stats` verb. A two-column table becomes one object
    /// (`{metric: value}`); anything wider becomes an array of row
    /// objects keyed by the headers. Labels are normalized with
    /// [`crate::json::json_key`] and cells typed with
    /// [`crate::json::cell_value`].
    pub fn to_json(&self) -> crate::json::JsonValue {
        use crate::json::{cell_value, json_key, JsonObject, JsonValue};
        if self.headers.len() == 2 {
            let mut o = JsonObject::new();
            for row in &self.rows {
                o.set(json_key(&row[0]), cell_value(&row[1]));
            }
            JsonValue::Object(o)
        } else {
            let keys: Vec<String> = self.headers.iter().map(|h| json_key(h)).collect();
            JsonValue::Array(
                self.rows
                    .iter()
                    .map(|row| {
                        let mut o = JsonObject::new();
                        for (k, cell) in keys.iter().zip(row) {
                            o.set(k.clone(), cell_value(cell));
                        }
                        JsonValue::Object(o)
                    })
                    .collect(),
            )
        }
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for i in 0..ncols {
                if i > 0 {
                    write!(f, "  ")?;
                }
                let pad = widths[i] - cells[i].chars().count();
                match self.aligns[i] {
                    Align::Left => write!(f, "{}{}", cells[i], " ".repeat(pad))?,
                    Align::Right => write!(f, "{}{}", " ".repeat(pad), cells[i])?,
                }
            }
            writeln!(f)
        };
        write_row(f, &self.headers)?;
        let rule: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        writeln!(f, "{}", "-".repeat(rule))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

/// Formats a float with `digits` significant decimals, trimming trailing
/// zeros (for table cells).
pub fn fmt_f64(x: f64, digits: usize) -> String {
    let s = format!("{x:.digits$}");
    if s.contains('.') {
        s.trim_end_matches('0').trim_end_matches('.').to_string()
    } else {
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(["pattern", "|Ω| SES", "|Ω| BF"]);
        t.row(["P1", "45", "45"]);
        t.row(["P2-long-name", "116", "14150"]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("pattern"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // Right-aligned numbers end at the same column.
        assert_eq!(lines[2].len(), lines[3].len());
        assert!(lines[3].ends_with("14150"));
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_mismatch_panics() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only-one"]);
    }

    #[test]
    fn alignment_override() {
        let mut t = Table::new(["n", "label"]).align(1, Align::Left);
        t.row(["1", "x"]);
        t.row(["2", "yy"]);
        let s = t.to_string();
        assert!(s.lines().nth(2).unwrap().contains("x "));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn two_column_table_renders_as_one_json_object() {
        let mut t = Table::new(["metric", "value"]);
        t.row(["events read", "12"]);
        t.row(["max |Ω|", "3"]);
        t.row(["eviction", "on"]);
        assert_eq!(
            t.to_json().to_string(),
            r#"{"events_read":12,"max_omega":3,"eviction":"on"}"#
        );
    }

    #[test]
    fn wide_table_renders_as_json_rows() {
        let mut t = Table::new(["pattern", "hits", "matches"]);
        t.row(["q1", "5", "2"]);
        t.row(["q2", "0", "0"]);
        assert_eq!(
            t.to_json().to_string(),
            r#"[{"pattern":"q1","hits":5,"matches":2},{"pattern":"q2","hits":0,"matches":0}]"#
        );
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt_f64(1.5000, 3), "1.5");
        assert_eq!(fmt_f64(2.0, 2), "2");
        assert_eq!(fmt_f64(0.1234, 2), "0.12");
        assert_eq!(fmt_f64(122.0, 1), "122");
    }
}
