//! Minimal JSON rendering (no third-party dependencies).
//!
//! One renderer shared by every machine-readable surface: `ses-cli
//! run/stream/bank --stats --format json`, `ses-cli check --format
//! json`'s diagnostics, and the `ses-server` `stats` protocol verb all
//! build a [`JsonValue`] and render it compactly. Keys keep insertion
//! order so output is deterministic and diffable.

use std::fmt;

/// An owned JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A signed integer (rendered without a decimal point).
    Int(i64),
    /// An unsigned integer.
    UInt(u64),
    /// A float; non-finite values render as `null`.
    Float(f64),
    /// A string (escaped on render).
    Str(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object with insertion-ordered keys.
    Object(JsonObject),
}

impl JsonValue {
    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integral payload (signed or unsigned), if it fits an `i64`.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            JsonValue::Int(i) => Some(*i),
            JsonValue::UInt(u) => i64::try_from(*u).ok(),
            _ => None,
        }
    }

    /// The non-negative integral payload, if any.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::UInt(u) => Some(*u),
            JsonValue::Int(i) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// Any numeric payload widened to `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Float(x) => Some(*x),
            JsonValue::Int(i) => Some(*i as f64),
            JsonValue::UInt(u) => Some(*u as f64),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The object payload, if this is an object.
    pub fn as_object(&self) -> Option<&JsonObject> {
        match self {
            JsonValue::Object(o) => Some(o),
            _ => None,
        }
    }
}

impl From<bool> for JsonValue {
    fn from(v: bool) -> JsonValue {
        JsonValue::Bool(v)
    }
}
impl From<i64> for JsonValue {
    fn from(v: i64) -> JsonValue {
        JsonValue::Int(v)
    }
}
impl From<u64> for JsonValue {
    fn from(v: u64) -> JsonValue {
        JsonValue::UInt(v)
    }
}
impl From<usize> for JsonValue {
    fn from(v: usize) -> JsonValue {
        JsonValue::UInt(v as u64)
    }
}
impl From<u32> for JsonValue {
    fn from(v: u32) -> JsonValue {
        JsonValue::UInt(u64::from(v))
    }
}
impl From<f64> for JsonValue {
    fn from(v: f64) -> JsonValue {
        JsonValue::Float(v)
    }
}
impl From<&str> for JsonValue {
    fn from(v: &str) -> JsonValue {
        JsonValue::Str(v.to_string())
    }
}
impl From<String> for JsonValue {
    fn from(v: String) -> JsonValue {
        JsonValue::Str(v)
    }
}
impl From<JsonObject> for JsonValue {
    fn from(v: JsonObject) -> JsonValue {
        JsonValue::Object(v)
    }
}
impl From<Vec<JsonValue>> for JsonValue {
    fn from(v: Vec<JsonValue>) -> JsonValue {
        JsonValue::Array(v)
    }
}

/// A JSON object preserving insertion order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct JsonObject {
    entries: Vec<(String, JsonValue)>,
}

impl JsonObject {
    /// An empty object.
    pub fn new() -> JsonObject {
        JsonObject::default()
    }

    /// Appends (or replaces) `key`.
    pub fn set(&mut self, key: impl Into<String>, value: impl Into<JsonValue>) -> &mut JsonObject {
        let key = key.into();
        let value = value.into();
        if let Some(e) = self.entries.iter_mut().find(|(k, _)| *k == key) {
            e.1 = value;
        } else {
            self.entries.push((key, value));
        }
        self
    }

    /// Builder-style [`JsonObject::set`].
    pub fn with(mut self, key: impl Into<String>, value: impl Into<JsonValue>) -> JsonObject {
        self.set(key, value);
        self
    }

    /// The value at `key`, if present.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Key/value pairs in insertion order.
    pub fn entries(&self) -> &[(String, JsonValue)] {
        &self.entries
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` iff no keys.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl fmt::Display for JsonValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonValue::Null => write!(f, "null"),
            JsonValue::Bool(b) => write!(f, "{b}"),
            JsonValue::Int(i) => write!(f, "{i}"),
            JsonValue::UInt(u) => write!(f, "{u}"),
            JsonValue::Float(x) => {
                if x.is_finite() {
                    // Keep integral floats distinguishable from ints.
                    if *x == x.trunc() && x.abs() < 1e15 {
                        write!(f, "{x:.1}")
                    } else {
                        write!(f, "{x}")
                    }
                } else {
                    write!(f, "null")
                }
            }
            JsonValue::Str(s) => write!(f, "\"{}\"", escape_json(s)),
            JsonValue::Array(items) => {
                write!(f, "[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            JsonValue::Object(o) => write!(f, "{o}"),
        }
    }
}

impl fmt::Display for JsonObject {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (k, v)) in self.entries.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "\"{}\":{v}", escape_json(k))?;
        }
        write!(f, "}}")
    }
}

/// Escapes a string for inclusion inside JSON double quotes.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Turns a human metric label into a JSON key: lowercased, spaces to
/// `_`, `Ω` to `omega`, everything else non-alphanumeric dropped.
/// `"max |Ω|"` → `"max_omega"`, `"events read"` → `"events_read"`.
pub fn json_key(label: &str) -> String {
    let mut out = String::with_capacity(label.len());
    for c in label.chars() {
        match c {
            'Ω' | 'ω' => out.push_str("omega"),
            c if c.is_ascii_alphanumeric() => out.push(c.to_ascii_lowercase()),
            ' ' | '-' | '_' | '/' if !out.ends_with('_') && !out.is_empty() => {
                out.push('_');
            }
            _ => {}
        }
    }
    out.trim_end_matches('_').to_string()
}

/// Classifies a rendered table cell back into a typed JSON value:
/// integers and floats become numbers, everything else stays a string.
pub fn cell_value(cell: &str) -> JsonValue {
    if let Ok(i) = cell.parse::<i64>() {
        return JsonValue::Int(i);
    }
    let numericish = !cell.is_empty()
        && cell
            .chars()
            .all(|c| c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E'))
        && cell.chars().any(|c| c.is_ascii_digit());
    if numericish {
        if let Ok(x) = cell.parse::<f64>() {
            return JsonValue::Float(x);
        }
    }
    JsonValue::Str(cell.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_scalars_and_escaping() {
        let mut o = JsonObject::new();
        o.set("n", 3u64)
            .set("x", 1.5f64)
            .set("ok", true)
            .set("s", "a\"b\\c\nd");
        assert_eq!(
            o.to_string(),
            r#"{"n":3,"x":1.5,"ok":true,"s":"a\"b\\c\nd"}"#
        );
    }

    #[test]
    fn nested_arrays_and_objects() {
        let inner = JsonObject::new().with("k", 1i64);
        let v = JsonValue::Array(vec![inner.into(), JsonValue::Null, "x".into()]);
        assert_eq!(v.to_string(), r#"[{"k":1},null,"x"]"#);
    }

    #[test]
    fn set_replaces_existing_key_in_place() {
        let mut o = JsonObject::new();
        o.set("a", 1i64).set("b", 2i64).set("a", 9i64);
        assert_eq!(o.to_string(), r#"{"a":9,"b":2}"#);
        assert_eq!(o.get("a"), Some(&JsonValue::Int(9)));
    }

    #[test]
    fn keys_normalize() {
        assert_eq!(json_key("events read"), "events_read");
        assert_eq!(json_key("max |Ω|"), "max_omega");
        assert_eq!(json_key("per-shard peak |Ω|"), "per_shard_peak_omega");
        assert_eq!(json_key("checkpoint time"), "checkpoint_time");
    }

    #[test]
    fn cells_classify() {
        assert_eq!(cell_value("42"), JsonValue::Int(42));
        assert_eq!(cell_value("-3"), JsonValue::Int(-3));
        assert_eq!(cell_value("2.5"), JsonValue::Float(2.5));
        assert_eq!(cell_value("on"), JsonValue::Str("on".into()));
        assert_eq!(cell_value("1 2 3"), JsonValue::Str("1 2 3".into()));
        assert_eq!(cell_value(""), JsonValue::Str(String::new()));
    }

    #[test]
    fn integral_floats_keep_a_decimal_point() {
        assert_eq!(JsonValue::Float(2.0).to_string(), "2.0");
        assert_eq!(JsonValue::Float(f64::NAN).to_string(), "null");
    }
}
