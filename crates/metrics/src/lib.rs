//! Instrumentation for the SES experiments: a counting engine probe, a
//! stopwatch, summary statistics, and plain-text report tables.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;
mod probe;
mod report;
mod stopwatch;

pub use json::{escape_json, json_key, JsonObject, JsonValue};
pub use probe::{CountingProbe, SeriesProbe};
pub use report::{fmt_f64, Align, Table};
pub use stopwatch::{timed, Stopwatch, Summary};
