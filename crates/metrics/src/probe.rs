//! A counting [`Probe`] recording the quantities the paper's evaluation
//! reports.

use ses_core::{FilterMode, Probe};

/// Counters collected during one engine run.
///
/// `omega_max` is the paper's measured parameter in experiments 1 and 2:
/// "the maximal number of automaton instances that are simultaneously
/// active during the execution".
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CountingProbe {
    /// Events read from the relation.
    pub events_read: u64,
    /// Events dropped by the §4.5 filter.
    pub events_filtered: u64,
    /// Fresh instances spawned in the start state.
    pub instances_spawned: u64,
    /// Instances created by nondeterministic branching.
    pub instances_branched: u64,
    /// Instances that expired (window exceeded).
    pub instances_expired: u64,
    /// Transition condition sets evaluated.
    pub transitions_evaluated: u64,
    /// Transitions taken.
    pub transitions_taken: u64,
    /// Raw matches emitted.
    pub matches_emitted: u64,
    /// Peak simultaneous instances, `max |Ω|`.
    pub omega_max: usize,
    /// Sum of per-event `|Ω|` samples (for averages).
    pub omega_sum: u64,
    /// Number of `|Ω|` samples.
    pub omega_samples: u64,
    /// Total events evicted by a streaming matcher's watermark.
    pub events_evicted: u64,
    /// Peak retained-relation size across streaming pushes. Stays flat
    /// on unbounded streams when eviction is working.
    pub retained_max: usize,
    /// §4.5 filter mode the options requested, once the engine reports it.
    pub filter_requested: Option<FilterMode>,
    /// Filter mode actually in effect — differs from `filter_requested`
    /// exactly when the filter silently downgraded to `Off` (the
    /// analyzer's `SES003`).
    pub filter_effective: Option<FilterMode>,
    /// Partitioned runs observed (each fires the `partitions` hook once).
    pub partitioned_runs: u64,
    /// Per-partition event counts, in partition order — the spread over
    /// these is the key skew.
    pub partition_events: Vec<usize>,
    /// Time-sliced runs observed (each fires the `slices` hook once).
    pub sliced_runs: u64,
    /// Per-slice event counts (own region plus `τ` overlap), in
    /// chronological slice order — their sum minus the relation length
    /// is the duplicated overlap work.
    pub slice_events: Vec<usize>,
    /// Events routed into pattern-bank matchers (summed over patterns:
    /// one event admitted to k patterns contributes k).
    pub index_hits: u64,
    /// Pattern-bank matchers skipped (heartbeat only) — the per-pattern
    /// pushes the predicate index saved.
    pub index_skips: u64,
    /// Heap allocations reported by a harness-owned counting allocator
    /// (the engine never allocates on the probe's behalf; see
    /// [`Probe::allocations`]).
    pub allocations: u64,
    /// Durability checkpoints saved.
    pub checkpoints: u64,
    /// Total bytes written across saved checkpoints.
    pub checkpoint_bytes: u64,
    /// Total nanoseconds spent snapshotting, serializing, and syncing
    /// checkpoints — checkpoint overhead relative to run time.
    pub checkpoint_nanos: u64,
    /// Events enqueued onto bounded ingest queues (the match server's
    /// admission path).
    pub ingest_enqueued: u64,
    /// Peak bounded-queue depth observed across enqueues — the
    /// backpressure high-water mark.
    pub ingest_queue_peak: usize,
    /// Events shed by a full bounded queue under the reject policy.
    pub ingest_shed: u64,
}

impl CountingProbe {
    /// A fresh probe with all counters at zero.
    pub fn new() -> CountingProbe {
        CountingProbe::default()
    }

    /// Mean `|Ω|` over all samples (0.0 when nothing was sampled).
    pub fn omega_mean(&self) -> f64 {
        if self.omega_samples == 0 {
            0.0
        } else {
            self.omega_sum as f64 / self.omega_samples as f64
        }
    }

    /// Fraction of read events dropped by the filter.
    pub fn filter_rate(&self) -> f64 {
        if self.events_read == 0 {
            0.0
        } else {
            self.events_filtered as f64 / self.events_read as f64
        }
    }

    /// `true` iff the engine reported a §4.5 filter downgrade.
    pub fn filter_downgraded(&self) -> bool {
        self.filter_requested.is_some() && self.filter_requested != self.filter_effective
    }

    /// Number of partitions seen by the last partitioned run.
    pub fn partition_count(&self) -> usize {
        self.partition_events.len()
    }

    /// Number of time slices seen by the last time-sliced run.
    pub fn slice_count(&self) -> usize {
        self.slice_events.len()
    }

    /// Events scanned more than once by the last time-sliced run — the
    /// `τ`-overlap duplication, given the sliced relation's length.
    /// Saturates at zero when no time-sliced run was recorded.
    pub fn slice_overlap_events(&self, relation_len: usize) -> usize {
        self.slice_events
            .iter()
            .sum::<usize>()
            .saturating_sub(relation_len)
    }

    /// Key skew of the partition layout: largest partition over the mean
    /// partition size (1.0 = perfectly balanced; 0.0 when unpartitioned).
    pub fn partition_skew(&self) -> f64 {
        if self.partition_events.is_empty() {
            return 0.0;
        }
        let max = *self.partition_events.iter().max().unwrap() as f64;
        let mean =
            self.partition_events.iter().sum::<usize>() as f64 / self.partition_events.len() as f64;
        if mean == 0.0 {
            0.0
        } else {
            max / mean
        }
    }

    /// Mean reported heap allocations per read event (0.0 when no
    /// events were read). On the streaming push path this is the
    /// `allocations_per_event` figure the `throughput` bench reports —
    /// zero in steady state for non-emitting pushes once the columnar
    /// engine's pooled buffers are warm.
    pub fn allocations_per_event(&self) -> f64 {
        if self.events_read == 0 {
            0.0
        } else {
            self.allocations as f64 / self.events_read as f64
        }
    }

    /// Folds another probe's counters into this one — used to aggregate
    /// the per-partition worker probes of a partitioned run into one
    /// report. Additive counters sum; peaks (`omega_max`, `retained_max`)
    /// take the maximum, which is correct for concurrent workers only if
    /// the partitions genuinely never overlap in one instance set — true
    /// under a proven partition key.
    pub fn merge(&mut self, other: &CountingProbe) {
        self.events_read += other.events_read;
        self.events_filtered += other.events_filtered;
        self.instances_spawned += other.instances_spawned;
        self.instances_branched += other.instances_branched;
        self.instances_expired += other.instances_expired;
        self.transitions_evaluated += other.transitions_evaluated;
        self.transitions_taken += other.transitions_taken;
        self.matches_emitted += other.matches_emitted;
        self.omega_max = self.omega_max.max(other.omega_max);
        self.omega_sum += other.omega_sum;
        self.omega_samples += other.omega_samples;
        self.events_evicted += other.events_evicted;
        self.retained_max = self.retained_max.max(other.retained_max);
        if self.filter_requested.is_none() {
            self.filter_requested = other.filter_requested;
            self.filter_effective = other.filter_effective;
        }
        self.partitioned_runs += other.partitioned_runs;
        self.partition_events.extend(&other.partition_events);
        self.sliced_runs += other.sliced_runs;
        self.slice_events.extend(&other.slice_events);
        self.index_hits += other.index_hits;
        self.index_skips += other.index_skips;
        self.allocations += other.allocations;
        self.checkpoints += other.checkpoints;
        self.checkpoint_bytes += other.checkpoint_bytes;
        self.checkpoint_nanos += other.checkpoint_nanos;
        self.ingest_enqueued += other.ingest_enqueued;
        self.ingest_queue_peak = self.ingest_queue_peak.max(other.ingest_queue_peak);
        self.ingest_shed += other.ingest_shed;
    }

    /// Resets every counter.
    pub fn reset(&mut self) {
        *self = CountingProbe::default();
    }
}

impl Probe for CountingProbe {
    fn event_read(&mut self) {
        self.events_read += 1;
    }
    fn event_filtered(&mut self) {
        self.events_filtered += 1;
    }
    fn instance_spawned(&mut self) {
        self.instances_spawned += 1;
    }
    fn instance_branched(&mut self) {
        self.instances_branched += 1;
    }
    fn instance_expired(&mut self) {
        self.instances_expired += 1;
    }
    fn transition_evaluated(&mut self) {
        self.transitions_evaluated += 1;
    }
    fn transition_taken(&mut self) {
        self.transitions_taken += 1;
    }
    fn match_emitted(&mut self) {
        self.matches_emitted += 1;
    }
    fn omega(&mut self, n: usize) {
        self.omega_max = self.omega_max.max(n);
        self.omega_sum += n as u64;
        self.omega_samples += 1;
    }
    fn events_evicted(&mut self, n: usize) {
        self.events_evicted += n as u64;
    }
    fn retained_events(&mut self, n: usize) {
        self.retained_max = self.retained_max.max(n);
    }
    fn filter_mode(&mut self, requested: FilterMode, effective: FilterMode) {
        self.filter_requested = Some(requested);
        self.filter_effective = Some(effective);
    }
    fn partitions(&mut self, _n: usize) {
        self.partitioned_runs += 1;
        self.partition_events.clear();
    }
    fn partition_events(&mut self, n: usize) {
        self.partition_events.push(n);
    }
    fn slices(&mut self, _n: usize) {
        self.sliced_runs += 1;
        self.slice_events.clear();
    }
    fn slice_events(&mut self, n: usize) {
        self.slice_events.push(n);
    }
    fn index_hits(&mut self, n: usize) {
        self.index_hits += n as u64;
    }
    fn index_skips(&mut self, n: usize) {
        self.index_skips += n as u64;
    }
    fn allocations(&mut self, n: u64) {
        self.allocations += n;
    }
    fn checkpoint_saved(&mut self, bytes: u64, nanos: u64) {
        self.checkpoints += 1;
        self.checkpoint_bytes += bytes;
        self.checkpoint_nanos += nanos;
    }
    fn ingest_enqueued(&mut self, depth: usize) {
        self.ingest_enqueued += 1;
        self.ingest_queue_peak = self.ingest_queue_peak.max(depth);
    }
    fn ingest_shed(&mut self, n: usize) {
        self.ingest_shed += n as u64;
    }
}

/// A probe that additionally records the full per-event `|Ω|` series —
/// the data behind Figure-12-style plots. Heavier than [`CountingProbe`]
/// (one `usize` per event); use for analysis, not steady-state matching.
#[derive(Debug, Clone, Default)]
pub struct SeriesProbe {
    /// Aggregate counters.
    pub counts: CountingProbe,
    /// `|Ω|` after each (unfiltered) event, in stream order.
    pub omega_series: Vec<usize>,
}

impl SeriesProbe {
    /// A fresh probe.
    pub fn new() -> SeriesProbe {
        SeriesProbe::default()
    }

    /// `(index, |Ω|)` of the peak sample, if any events were processed.
    pub fn peak(&self) -> Option<(usize, usize)> {
        self.omega_series
            .iter()
            .enumerate()
            .max_by_key(|&(i, &n)| (n, std::cmp::Reverse(i)))
            .map(|(i, &n)| (i, n))
    }
}

impl Probe for SeriesProbe {
    fn event_read(&mut self) {
        self.counts.event_read();
    }
    fn event_filtered(&mut self) {
        self.counts.event_filtered();
    }
    fn instance_spawned(&mut self) {
        self.counts.instance_spawned();
    }
    fn instance_branched(&mut self) {
        self.counts.instance_branched();
    }
    fn instance_expired(&mut self) {
        self.counts.instance_expired();
    }
    fn transition_evaluated(&mut self) {
        self.counts.transition_evaluated();
    }
    fn transition_taken(&mut self) {
        self.counts.transition_taken();
    }
    fn match_emitted(&mut self) {
        self.counts.match_emitted();
    }
    fn omega(&mut self, n: usize) {
        self.counts.omega(n);
        self.omega_series.push(n);
    }
    fn events_evicted(&mut self, n: usize) {
        self.counts.events_evicted(n);
    }
    fn retained_events(&mut self, n: usize) {
        self.counts.retained_events(n);
    }
    fn filter_mode(&mut self, requested: FilterMode, effective: FilterMode) {
        self.counts.filter_mode(requested, effective);
    }
    fn partitions(&mut self, n: usize) {
        Probe::partitions(&mut self.counts, n);
    }
    fn partition_events(&mut self, n: usize) {
        Probe::partition_events(&mut self.counts, n);
    }
    fn slices(&mut self, n: usize) {
        Probe::slices(&mut self.counts, n);
    }
    fn slice_events(&mut self, n: usize) {
        Probe::slice_events(&mut self.counts, n);
    }
    fn index_hits(&mut self, n: usize) {
        Probe::index_hits(&mut self.counts, n);
    }
    fn index_skips(&mut self, n: usize) {
        Probe::index_skips(&mut self.counts, n);
    }
    fn allocations(&mut self, n: u64) {
        Probe::allocations(&mut self.counts, n);
    }
    fn checkpoint_saved(&mut self, bytes: u64, nanos: u64) {
        self.counts.checkpoint_saved(bytes, nanos);
    }
    fn ingest_enqueued(&mut self, depth: usize) {
        Probe::ingest_enqueued(&mut self.counts, depth);
    }
    fn ingest_shed(&mut self, n: usize) {
        Probe::ingest_shed(&mut self.counts, n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_probe_records_samples() {
        let mut p = SeriesProbe::new();
        for n in [1usize, 4, 2, 4, 0] {
            p.omega(n);
        }
        assert_eq!(p.omega_series, vec![1, 4, 2, 4, 0]);
        assert_eq!(p.counts.omega_max, 4);
        // Peak reports the first index attaining the maximum.
        assert_eq!(p.peak(), Some((1, 4)));
        assert_eq!(SeriesProbe::new().peak(), None);
    }

    #[test]
    fn counters_accumulate() {
        let mut p = CountingProbe::new();
        p.event_read();
        p.event_read();
        p.event_filtered();
        p.omega(3);
        p.omega(7);
        p.omega(2);
        p.events_evicted(3);
        p.events_evicted(2);
        p.retained_events(4);
        p.retained_events(9);
        p.retained_events(6);
        assert_eq!(p.events_read, 2);
        assert_eq!(p.events_evicted, 5);
        assert_eq!(p.retained_max, 9);
        assert_eq!(p.omega_max, 7);
        assert_eq!(p.omega_samples, 3);
        assert!((p.omega_mean() - 4.0).abs() < 1e-12);
        assert!((p.filter_rate() - 0.5).abs() < 1e-12);
        p.reset();
        assert_eq!(p, CountingProbe::default());
    }

    #[test]
    fn filter_mode_report() {
        let mut p = CountingProbe::new();
        assert!(!p.filter_downgraded());
        p.filter_mode(FilterMode::Paper, FilterMode::Off);
        assert_eq!(p.filter_requested, Some(FilterMode::Paper));
        assert_eq!(p.filter_effective, Some(FilterMode::Off));
        assert!(p.filter_downgraded());
        p.filter_mode(FilterMode::Paper, FilterMode::Paper);
        assert!(!p.filter_downgraded());
    }

    #[test]
    fn empty_probe_rates_are_zero() {
        let p = CountingProbe::new();
        assert_eq!(p.omega_mean(), 0.0);
        assert_eq!(p.filter_rate(), 0.0);
        assert_eq!(p.partition_skew(), 0.0);
    }

    #[test]
    fn merge_sums_counters_and_maxes_peaks() {
        let mut a = CountingProbe::new();
        a.event_read();
        a.omega(5);
        a.retained_events(10);
        a.filter_mode(FilterMode::Paper, FilterMode::Paper);
        let mut b = CountingProbe::new();
        b.event_read();
        b.event_read();
        b.omega(3);
        b.omega(9);
        b.retained_events(4);
        a.merge(&b);
        assert_eq!(a.events_read, 3);
        assert_eq!(a.omega_max, 9);
        assert_eq!(a.omega_samples, 3);
        assert_eq!(a.retained_max, 10);
        // merge keeps the first filter report rather than clobbering it.
        assert_eq!(a.filter_requested, Some(FilterMode::Paper));
    }

    #[test]
    fn partition_hooks_record_layout_and_skew() {
        let mut p = CountingProbe::new();
        Probe::partitions(&mut p, 3);
        Probe::partition_events(&mut p, 8);
        Probe::partition_events(&mut p, 2);
        Probe::partition_events(&mut p, 2);
        assert_eq!(p.partitioned_runs, 1);
        assert_eq!(p.partition_count(), 3);
        assert!((p.partition_skew() - 2.0).abs() < 1e-12);
        // A second partitioned run replaces the layout, not appends.
        Probe::partitions(&mut p, 2);
        Probe::partition_events(&mut p, 1);
        Probe::partition_events(&mut p, 1);
        assert_eq!(p.partitioned_runs, 2);
        assert_eq!(p.partition_events, vec![1, 1]);
    }

    #[test]
    fn checkpoint_hook_accumulates_and_merges() {
        let mut p = CountingProbe::new();
        p.checkpoint_saved(100, 5_000);
        p.checkpoint_saved(50, 2_000);
        assert_eq!(p.checkpoints, 2);
        assert_eq!(p.checkpoint_bytes, 150);
        assert_eq!(p.checkpoint_nanos, 7_000);
        let mut q = CountingProbe::new();
        q.checkpoint_saved(1, 1);
        p.merge(&q);
        assert_eq!(p.checkpoints, 3);
        assert_eq!(p.checkpoint_bytes, 151);
        let mut s = SeriesProbe::new();
        s.checkpoint_saved(9, 9);
        assert_eq!(s.counts.checkpoints, 1);
    }

    #[test]
    fn allocation_hook_accumulates_rates_and_merges() {
        let mut p = CountingProbe::new();
        assert_eq!(p.allocations_per_event(), 0.0);
        p.event_read();
        p.event_read();
        Probe::allocations(&mut p, 3);
        Probe::allocations(&mut p, 1);
        assert_eq!(p.allocations, 4);
        assert!((p.allocations_per_event() - 2.0).abs() < 1e-12);
        let mut q = CountingProbe::new();
        Probe::allocations(&mut q, 5);
        p.merge(&q);
        assert_eq!(p.allocations, 9);
        let mut s = SeriesProbe::new();
        Probe::allocations(&mut s, 7);
        assert_eq!(s.counts.allocations, 7);
    }

    #[test]
    fn ingest_hooks_track_depth_peak_and_shedding() {
        let mut p = CountingProbe::new();
        Probe::ingest_enqueued(&mut p, 3);
        Probe::ingest_enqueued(&mut p, 17);
        Probe::ingest_enqueued(&mut p, 5);
        Probe::ingest_shed(&mut p, 2);
        assert_eq!(p.ingest_enqueued, 3);
        assert_eq!(p.ingest_queue_peak, 17);
        assert_eq!(p.ingest_shed, 2);
        let mut q = CountingProbe::new();
        Probe::ingest_enqueued(&mut q, 40);
        Probe::ingest_shed(&mut q, 1);
        p.merge(&q);
        assert_eq!(p.ingest_enqueued, 4);
        assert_eq!(p.ingest_queue_peak, 40);
        assert_eq!(p.ingest_shed, 3);
        let mut s = SeriesProbe::new();
        Probe::ingest_enqueued(&mut s, 7);
        Probe::ingest_shed(&mut s, 7);
        assert_eq!(s.counts.ingest_queue_peak, 7);
        assert_eq!(s.counts.ingest_shed, 7);
    }

    #[test]
    fn index_hooks_accumulate_and_merge() {
        let mut p = CountingProbe::new();
        Probe::index_hits(&mut p, 3);
        Probe::index_skips(&mut p, 13);
        Probe::index_hits(&mut p, 1);
        assert_eq!(p.index_hits, 4);
        assert_eq!(p.index_skips, 13);
        let mut q = CountingProbe::new();
        Probe::index_hits(&mut q, 2);
        Probe::index_skips(&mut q, 2);
        p.merge(&q);
        assert_eq!(p.index_hits, 6);
        assert_eq!(p.index_skips, 15);
        let mut s = SeriesProbe::new();
        Probe::index_hits(&mut s, 7);
        Probe::index_skips(&mut s, 9);
        assert_eq!(s.counts.index_hits, 7);
        assert_eq!(s.counts.index_skips, 9);
    }

    #[test]
    fn slice_hooks_record_layout_and_overlap() {
        let mut p = CountingProbe::new();
        Probe::slices(&mut p, 3);
        Probe::slice_events(&mut p, 8);
        Probe::slice_events(&mut p, 7);
        Probe::slice_events(&mut p, 5);
        assert_eq!(p.sliced_runs, 1);
        assert_eq!(p.slice_count(), 3);
        // 20 scanned events over a 16-event relation: 4 re-scanned in
        // the τ overlaps.
        assert_eq!(p.slice_overlap_events(16), 4);
        assert_eq!(p.slice_overlap_events(100), 0, "saturates");
        // A second sliced run replaces the layout, not appends.
        Probe::slices(&mut p, 1);
        Probe::slice_events(&mut p, 4);
        assert_eq!(p.sliced_runs, 2);
        assert_eq!(p.slice_events, vec![4]);
        // Merge concatenates layouts and sums run counts.
        let mut q = CountingProbe::new();
        Probe::slices(&mut q, 1);
        Probe::slice_events(&mut q, 9);
        p.merge(&q);
        assert_eq!(p.sliced_runs, 3);
        assert_eq!(p.slice_events, vec![4, 9]);
    }
}
