//! Wall-clock timing helpers for the experiment harness.

use std::time::{Duration, Instant};

/// A simple wall-clock stopwatch.
#[derive(Debug, Clone)]
pub struct Stopwatch {
    started: Instant,
}

impl Stopwatch {
    /// Starts timing now.
    pub fn start() -> Stopwatch {
        Stopwatch {
            started: Instant::now(),
        }
    }

    /// Elapsed time since start.
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// Elapsed seconds as a float.
    pub fn elapsed_secs(&self) -> f64 {
        self.elapsed().as_secs_f64()
    }
}

/// Runs `f` and returns its result together with the elapsed wall time.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let sw = Stopwatch::start();
    let out = f();
    (out, sw.elapsed())
}

/// Basic summary statistics over a sample of f64 measurements.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Sample standard deviation (0 when `n < 2`).
    pub stddev: f64,
}

impl Summary {
    /// Computes the summary of `samples`; returns `None` for an empty
    /// sample.
    pub fn of(samples: &[f64]) -> Option<Summary> {
        if samples.is_empty() {
            return None;
        }
        let n = samples.len();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let stddev = if n < 2 {
            0.0
        } else {
            let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64;
            var.sqrt()
        };
        Some(Summary {
            n,
            mean,
            min,
            max,
            stddev,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopwatch_advances() {
        let sw = Stopwatch::start();
        std::thread::sleep(Duration::from_millis(2));
        assert!(sw.elapsed_secs() > 0.0);
    }

    #[test]
    fn timed_returns_result() {
        let (v, d) = timed(|| 21 * 2);
        assert_eq!(v, 42);
        assert!(d.as_nanos() > 0);
    }

    #[test]
    fn summary_statistics() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(s.n, 4);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!((s.stddev - 1.2909944487358056).abs() < 1e-12);
        assert!(Summary::of(&[]).is_none());
        assert_eq!(Summary::of(&[5.0]).unwrap().stddev, 0.0);
    }
}
