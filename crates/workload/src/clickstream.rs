//! Synthetic clickstream workload.
//!
//! The paper's introduction cites click-stream analysis as a driving
//! application. This generator produces web sessions with a **research
//! funnel**: before buying, a user views the product page, reads reviews,
//! and checks shipping — in any order (tab-happy users differ!) — and
//! then checks out, unless a `support_ticket` intervenes.
//!
//! Schema: `(USER, PAGE, T)` with second-granularity timestamps.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{RngExt, SeedableRng};

use ses_event::{AttrType, CmpOp, Duration, Relation, Schema, Timestamp, Value};
use ses_pattern::Pattern;

/// The click schema.
pub fn schema() -> Schema {
    Schema::builder()
        .attr("USER", AttrType::Int)
        .attr("PAGE", AttrType::Str)
        .build()
        .expect("static schema is valid")
}

/// Pages outside the funnel that pad the stream.
pub const NOISE_PAGES: [&str; 5] = ["home", "search", "category", "account", "wishlist"];

/// Configuration of the clickstream generator.
#[derive(Debug, Clone)]
pub struct ClickstreamConfig {
    /// Users that complete the research funnel and buy.
    pub buyers: usize,
    /// Buyers whose funnel is interrupted by a support ticket (these
    /// must NOT match the negated funnel pattern).
    pub interrupted_buyers: usize,
    /// Users that browse without completing the funnel.
    pub browsers: usize,
    /// Noise clicks per user.
    pub noise_clicks: usize,
    /// Horizon in seconds.
    pub horizon_seconds: i64,
    /// RNG seed.
    pub seed: u64,
}

impl ClickstreamConfig {
    /// A small deterministic stream.
    pub fn small() -> ClickstreamConfig {
        ClickstreamConfig {
            buyers: 20,
            interrupted_buyers: 8,
            browsers: 30,
            noise_clicks: 6,
            horizon_seconds: 2 * 3600,
            seed: 17,
        }
    }
}

/// Generates the click tape.
pub fn generate(config: &ClickstreamConfig) -> Relation {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut rows: Vec<(Timestamp, Vec<Value>)> = Vec::new();
    let mut user = 0i64;

    let click = |rows: &mut Vec<(Timestamp, Vec<Value>)>, user: i64, page: &str, t: i64| {
        rows.push((
            Timestamp::new(t),
            vec![Value::from(user), Value::from(page)],
        ));
    };

    let mut session =
        |rng: &mut StdRng, rows: &mut Vec<(Timestamp, Vec<Value>)>, kind: SessionKind| {
            user += 1;
            let start = rng.random_range(0..config.horizon_seconds - 1800);
            let mut t = start;
            // Noise clicks sprinkled through the session.
            for _ in 0..config.noise_clicks {
                t += rng.random_range(5..60);
                let page = NOISE_PAGES[rng.random_range(0..NOISE_PAGES.len())];
                click(rows, user, page, t);
            }
            if kind == SessionKind::Browser {
                return;
            }
            // The research steps, in a random order.
            let mut steps = ["product", "reviews", "shipping"];
            steps.shuffle(rng);
            for step in steps {
                t += rng.random_range(10..120);
                click(rows, user, step, t);
            }
            if kind == SessionKind::Interrupted {
                t += rng.random_range(5..60);
                click(rows, user, "support_ticket", t);
            }
            t += rng.random_range(30..300);
            click(rows, user, "checkout", t);
        };

    #[derive(PartialEq, Clone, Copy)]
    enum SessionKind {
        Buyer,
        Interrupted,
        Browser,
    }

    for _ in 0..config.buyers {
        session(&mut rng, &mut rows, SessionKind::Buyer);
    }
    for _ in 0..config.interrupted_buyers {
        session(&mut rng, &mut rows, SessionKind::Interrupted);
    }
    for _ in 0..config.browsers {
        session(&mut rng, &mut rows, SessionKind::Browser);
    }

    rows.sort_by_key(|(ts, _)| *ts);
    let mut builder = Relation::builder(schema());
    for (ts, values) in rows {
        builder = builder
            .row(ts, values)
            .expect("generated rows are well-typed");
    }
    builder.build()
}

/// The research funnel as an SES pattern: product page, reviews, and
/// shipping info in **any order**, then checkout — same user, within
/// `window` — optionally with no intervening support ticket.
pub fn funnel_pattern(window: Duration, exclude_tickets: bool) -> Pattern {
    let mut b = Pattern::builder().set(|s| s.var("product").var("reviews").var("shipping"));
    if exclude_tickets {
        b = b.negate("ticket");
    }
    b = b
        .set(|s| s.var("buy"))
        .cond_const("product", "PAGE", CmpOp::Eq, "product")
        .cond_const("reviews", "PAGE", CmpOp::Eq, "reviews")
        .cond_const("shipping", "PAGE", CmpOp::Eq, "shipping")
        .cond_const("buy", "PAGE", CmpOp::Eq, "checkout")
        .cond_vars("product", "USER", CmpOp::Eq, "reviews", "USER")
        .cond_vars("product", "USER", CmpOp::Eq, "shipping", "USER")
        .cond_vars("reviews", "USER", CmpOp::Eq, "shipping", "USER")
        .cond_vars("product", "USER", CmpOp::Eq, "buy", "USER");
    if exclude_tickets {
        b = b
            .neg_cond_const("ticket", "PAGE", CmpOp::Eq, "support_ticket")
            .neg_cond_vars("ticket", "USER", CmpOp::Eq, "product", "USER");
    }
    b.within(window).build().expect("funnel pattern is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use ses_core::Matcher;

    #[test]
    fn deterministic_and_chronological() {
        let cfg = ClickstreamConfig::small();
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a.len(), b.len());
        for w in a.events().windows(2) {
            assert!(w[0].ts() <= w[1].ts());
        }
        // buyers×(noise+4) + interrupted×(noise+5) + browsers×noise.
        let n = cfg.noise_clicks;
        assert_eq!(
            a.len(),
            cfg.buyers * (n + 4) + cfg.interrupted_buyers * (n + 5) + cfg.browsers * n
        );
    }

    #[test]
    fn funnel_counts_match_session_kinds() {
        let cfg = ClickstreamConfig::small();
        let tape = generate(&cfg);
        let schema = schema();
        let window = Duration::ticks(3600);

        // Without ticket exclusion: every buyer and interrupted buyer.
        let all = Matcher::compile(&funnel_pattern(window, false), &schema)
            .unwrap()
            .find(&tape);
        assert_eq!(all.len(), cfg.buyers + cfg.interrupted_buyers);

        // With ticket exclusion: clean buyers only.
        let clean = Matcher::compile(&funnel_pattern(window, true), &schema)
            .unwrap()
            .find(&tape);
        assert_eq!(clean.len(), cfg.buyers);
    }
}
