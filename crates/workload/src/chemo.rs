//! Synthetic chemotherapy workload.
//!
//! Substitute for the paper's proprietary data set (chemotherapy events
//! from the Department of Haematology, Hospital Meran-Merano). The
//! algorithms under test are sensitive to three data characteristics —
//! the event-type mix reachable by conditions, the number of events per
//! `τ`-window (`W`), and per-patient interleaving — and the generator
//! controls all three:
//!
//! * patients follow a CHOP-like protocol: cycles every `cycle_days`
//!   days with Ciclofosfamide (C), Doxorubicina (D), and Vincristine (V)
//!   on day 1, Prednisone (P) on days 1–5, optional Rituximab (R) and
//!   L-Asparaginase (L), and blood counts (B) before and mid-cycle;
//! * patient start times are staggered uniformly, so events interleave
//!   across patients exactly as in a real ward;
//! * the schema is Figure 1's `(ID, L, V, U, T)` with hour-granularity
//!   timestamps, doses in `mg`/`mgl` and blood counts as WHO-Tox grades.
//!
//! [`ChemoConfig::paper_d1`] is calibrated so the generated relation has a
//! window size `W ≈ 1322` at `τ = 264 h`, matching the paper's D1; the
//! D2–D5 data sets are obtained with [`ses_event::Relation::duplicate`]
//! exactly as in the paper.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use ses_event::{Relation, Timestamp, Value};

use crate::paper::schema;

/// Configuration of the chemotherapy generator.
#[derive(Debug, Clone)]
pub struct ChemoConfig {
    /// Number of concurrently treated patients.
    pub patients: usize,
    /// Chemotherapy cycles per patient.
    pub cycles: usize,
    /// Days between cycle starts (21 for CHOP).
    pub cycle_days: i64,
    /// Patient start times are staggered uniformly over this many hours.
    pub stagger_hours: i64,
    /// Probability that a cycle includes Rituximab.
    pub rituximab_prob: f64,
    /// Probability that a cycle includes L-Asparaginase.
    pub asparaginase_prob: f64,
    /// Expected auxiliary clinical events (labs, vitals, supportive
    /// medication) per patient per treatment day. Real ward data is
    /// dominated by such events; they are what the §4.5 filter discards.
    pub aux_per_day: f64,
    /// RNG seed — generation is fully deterministic per seed.
    pub seed: u64,
}

/// Auxiliary clinical event types: haemoglobin, white cells, neutrophils,
/// temperature, creatinine, glucose, oximetry, antiemetic, fluids.
pub const AUX_TYPES: [&str; 9] = ["H", "W", "N", "T", "K", "G", "O", "A", "F"];

impl ChemoConfig {
    /// A small workload for unit tests and examples (a few hundred
    /// events).
    pub fn small() -> ChemoConfig {
        ChemoConfig {
            patients: 8,
            cycles: 3,
            cycle_days: 21,
            stagger_hours: 21 * 24,
            rituximab_prob: 0.5,
            asparaginase_prob: 0.2,
            aux_per_day: 1.0,
            seed: 42,
        }
    }

    /// Calibrated to the paper's D1: window size `W ≈ 1322` at
    /// `τ = 264 h` (asserted by a calibration test).
    pub fn paper_d1() -> ChemoConfig {
        ChemoConfig {
            patients: 65,
            cycles: 4,
            cycle_days: 21,
            stagger_hours: 21 * 24,
            rituximab_prob: 0.5,
            asparaginase_prob: 0.2,
            aux_per_day: 1.5,
            seed: 2011, // EDBT 2011
        }
    }

    /// A copy with a different seed.
    pub fn with_seed(mut self, seed: u64) -> ChemoConfig {
        self.seed = seed;
        self
    }

    /// Scales the patient count (the main `W` lever) by `factor`,
    /// keeping at least one patient.
    pub fn scaled(mut self, factor: f64) -> ChemoConfig {
        self.patients = ((self.patients as f64 * factor).round() as usize).max(1);
        self
    }
}

/// Generates the chemotherapy event relation for `config`.
pub fn generate(config: &ChemoConfig) -> Relation {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut rows: Vec<(Timestamp, Vec<Value>)> = Vec::new();

    for patient in 0..config.patients {
        let id = patient as i64 + 1;
        let start = rng.random_range(0..=config.stagger_hours);
        // Per-patient dose baselines (body-surface dependent in reality).
        let c_dose = rng.random_range(1200.0..1800.0);
        let d_dose = rng.random_range(75.0..95.0);
        let p_dose = rng.random_range(80.0..120.0);

        for cycle in 0..config.cycles {
            let day0 = start + cycle as i64 * config.cycle_days * 24;
            let jitter = |rng: &mut StdRng| rng.random_range(-1..=1);

            // Pre-cycle blood count on day −1.
            push(
                &mut rows,
                id,
                "B",
                who_tox(&mut rng),
                "WHO-Tox",
                day0 - 24 + 9 + jitter(&mut rng),
            );

            // Day 1: C at 9 am, V at 10 am, D at 11 am.
            push(
                &mut rows,
                id,
                "C",
                dose(&mut rng, c_dose),
                "mg",
                day0 + 9 + jitter(&mut rng),
            );
            push(&mut rows, id, "V", 2.0, "mg", day0 + 10);
            push(
                &mut rows,
                id,
                "D",
                dose(&mut rng, d_dose),
                "mgl",
                day0 + 11 + jitter(&mut rng),
            );
            if rng.random_bool(config.rituximab_prob) {
                push(&mut rows, id, "R", 375.0, "mg", day0 + 8);
            }
            if rng.random_bool(config.asparaginase_prob) {
                push(
                    &mut rows,
                    id,
                    "L",
                    rng.random_range(5000.0..7000.0),
                    "IU",
                    day0 + 13,
                );
            }

            // Days 1–5: P at 10 am.
            for day in 0..5 {
                push(
                    &mut rows,
                    id,
                    "P",
                    dose(&mut rng, p_dose),
                    "mg",
                    day0 + day * 24 + 10 + jitter(&mut rng),
                );
            }

            // Mid-cycle and recovery blood counts (days 7 and 14).
            push(
                &mut rows,
                id,
                "B",
                who_tox(&mut rng),
                "WHO-Tox",
                day0 + 7 * 24 + 9 + jitter(&mut rng),
            );
            push(
                &mut rows,
                id,
                "B",
                who_tox(&mut rng),
                "WHO-Tox",
                day0 + 14 * 24 + 9 + jitter(&mut rng),
            );

            // Auxiliary clinical events: labs, vitals, supportive care.
            // These dominate real ward data and are exactly what the
            // §4.5 filter discards before instance iteration.
            for day in -1..16i64 {
                let mut expected = config.aux_per_day;
                while expected > 0.0 {
                    if rng.random_bool(expected.min(1.0)) {
                        let ty = AUX_TYPES[rng.random_range(0..AUX_TYPES.len())];
                        let hour = day0 + day * 24 + rng.random_range(7..20);
                        push(
                            &mut rows,
                            id,
                            ty,
                            rng.random_range(0.0..200.0),
                            "misc",
                            hour,
                        );
                    }
                    expected -= 1.0;
                }
            }
        }
    }

    let mut builder = Relation::builder(schema());
    rows.sort_by_key(|(ts, _)| *ts);
    for (ts, values) in rows {
        builder = builder
            .row(ts, values)
            .expect("generated rows are well-typed");
    }
    builder.build()
}

fn push(rows: &mut Vec<(Timestamp, Vec<Value>)>, id: i64, l: &str, v: f64, u: &str, hour: i64) {
    rows.push((
        Timestamp::new(hour),
        vec![
            Value::from(id),
            Value::from(l),
            Value::from(v),
            Value::from(u),
        ],
    ));
}

fn dose(rng: &mut StdRng, base: f64) -> f64 {
    // ±5% day-to-day variation, rounded to half a milligram.
    let v = base * rng.random_range(0.95..1.05);
    (v * 2.0).round() / 2.0
}

fn who_tox(rng: &mut StdRng) -> f64 {
    // WHO toxicity grades 0–4, skewed toward low grades.
    let r: f64 = rng.random();
    match r {
        x if x < 0.45 => 0.0,
        x if x < 0.75 => 1.0,
        x if x < 0.90 => 2.0,
        x if x < 0.98 => 3.0,
        _ => 4.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ses_event::Duration;

    #[test]
    fn generation_is_deterministic() {
        let cfg = ChemoConfig::small();
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.events().iter().zip(b.events()) {
            assert_eq!(x.ts(), y.ts());
            assert_eq!(x.values(), y.values());
        }
        // Different seed ⇒ different data.
        let c = generate(&cfg.clone().with_seed(7));
        assert!(
            a.events()
                .iter()
                .zip(c.events())
                .any(|(x, y)| x.values() != y.values() || x.ts() != y.ts()),
            "different seeds should differ"
        );
    }

    #[test]
    fn events_are_chronological_and_typed() {
        let rel = generate(&ChemoConfig::small());
        assert!(!rel.is_empty());
        for w in rel.events().windows(2) {
            assert!(w[0].ts() <= w[1].ts());
        }
        for e in rel.events() {
            let l = &e.values()[1];
            let l = match l {
                Value::Str(s) => s.as_ref(),
                _ => panic!("L must be a string"),
            };
            assert!(
                ["C", "D", "P", "V", "R", "L", "B"].contains(&l) || AUX_TYPES.contains(&l),
                "unexpected type {l}"
            );
        }
    }

    #[test]
    fn type_mix_includes_all_protocol_events() {
        let rel = generate(&ChemoConfig::small());
        for ty in ["C", "D", "P", "V", "B"] {
            assert!(
                rel.events()
                    .iter()
                    .any(|e| e.values()[1] == Value::from(ty)),
                "missing {ty}"
            );
        }
        // P is the most frequent medication (given daily for 5 days).
        let count = |ty: &str| {
            rel.events()
                .iter()
                .filter(|e| e.values()[1] == Value::from(ty))
                .count()
        };
        assert!(count("P") > count("C"));
        assert!(count("P") >= 5 * ChemoConfig::small().patients);
    }

    #[test]
    fn paper_d1_window_size_is_calibrated() {
        let rel = generate(&ChemoConfig::paper_d1());
        let w = rel.window_size(Duration::hours(264));
        assert!(
            (1200..=1450).contains(&w),
            "W = {w}, expected ≈ 1322 (paper's D1)"
        );
    }

    #[test]
    fn scaled_changes_patient_count() {
        let cfg = ChemoConfig::paper_d1().scaled(0.1);
        assert_eq!(cfg.patients, 7);
        assert_eq!(ChemoConfig::small().scaled(0.0).patients, 1);
    }
}
