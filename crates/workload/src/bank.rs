//! Multi-pattern ("bank") workload: N correlated queries over one
//! stream.
//!
//! The generator emits a pool of event types `T00, T01, …` and N
//! two-variable sequence patterns, each watching a pair of types from
//! the pool and correlating on `ID`. With a pool of `2 × patterns`
//! types the pairs are disjoint — every event concerns exactly one
//! pattern, the predicate index's best case; shrinking the pool makes
//! patterns share types, exercising overlapping routing. Both the
//! `patternbank` bench and the bank-vs-independent differential suite
//! feed on this.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use ses_event::{AttrType, CmpOp, Duration, Relation, Schema, Timestamp, Value};
use ses_pattern::Pattern;

/// The bank workload schema: an event type label and a correlation key.
pub fn schema() -> Schema {
    Schema::builder()
        .attr("TYPE", AttrType::Str)
        .attr("ID", AttrType::Int)
        .build()
        .expect("static schema is valid")
}

/// The `i`-th event type label of the pool.
pub fn label(i: usize) -> String {
    format!("T{i:02}")
}

/// Configuration of the bank workload generator.
#[derive(Debug, Clone)]
pub struct BankConfig {
    /// Number of patterns to generate.
    pub patterns: usize,
    /// Size of the event-type pool. At `2 × patterns` the patterns'
    /// type pairs are disjoint; smaller pools make patterns overlap.
    pub event_types: usize,
    /// Number of events in the stream.
    pub events: usize,
    /// Each pattern's window, in ticks.
    pub within: i64,
    /// Correlation keys are drawn from `0..ids` — small so matches
    /// actually occur.
    pub ids: i64,
    /// Fraction (`0.0..=1.0`) of the patterns rewritten to open with
    /// one shared anchor set — `{a1: TYPE = T00, a2: TYPE = T01}` with
    /// `a1.ID = a2.ID` — followed by their own suffix type: those
    /// patterns have an identical leading event set and window, so
    /// `PatternBank` sharing folds them into one prefix group and
    /// pairs the anchors once instead of once per pattern. The same
    /// knob exists for the property suites as
    /// `tests/common::pattern_set_strategy_with_overlap`.
    pub overlap: f64,
    /// Fraction (`0.0..=1.0`) of the stream drawn from the two anchor
    /// types (`T00`/`T01`) instead of uniformly — "hot" anchors are
    /// what makes a shared prefix worth evaluating once. `0.0` keeps
    /// the stream uniform.
    pub anchor_share: f64,
    /// RNG seed.
    pub seed: u64,
}

impl BankConfig {
    /// A small deterministic workload for tests and CI smoke runs.
    pub fn small() -> BankConfig {
        BankConfig {
            patterns: 8,
            event_types: 16,
            events: 2_000,
            within: 20,
            ids: 4,
            overlap: 0.0,
            anchor_share: 0.0,
            seed: 42,
        }
    }

    /// Scales to `n` patterns, keeping the type pool at `2 × n` so the
    /// pairs stay disjoint.
    pub fn with_patterns(mut self, n: usize) -> BankConfig {
        self.patterns = n;
        self.event_types = 2 * n.max(1);
        self
    }

    /// Replaces the seed.
    pub fn with_seed(mut self, seed: u64) -> BankConfig {
        self.seed = seed;
        self
    }

    /// Replaces the stream length.
    pub fn with_events(mut self, events: usize) -> BankConfig {
        self.events = events;
        self
    }

    /// Replaces the shared-prefix overlap fraction (clamped to
    /// `0.0..=1.0`).
    pub fn with_overlap(mut self, overlap: f64) -> BankConfig {
        self.overlap = overlap.clamp(0.0, 1.0);
        self
    }

    /// Replaces the anchor-type traffic share (clamped to `0.0..=1.0`).
    pub fn with_anchor_share(mut self, share: f64) -> BankConfig {
        self.anchor_share = share.clamp(0.0, 1.0);
        self
    }

    /// Number of patterns rewritten to share the anchor leading set.
    pub fn overlapped_patterns(&self) -> usize {
        (self.patterns as f64 * self.overlap).ceil() as usize
    }
}

/// The bank's named patterns: pattern `i` is `a THEN b` with
/// `a.TYPE = T(2i mod m)`, `b.TYPE = T(2i+1 mod m)`, and `a.ID = b.ID`.
/// The first [`BankConfig::overlapped_patterns`] patterns are instead
/// `{a1, a2} THEN b` with `a1.TYPE = T00`, `a2.TYPE = T01`,
/// `a1.ID = a2.ID`, and `a1.ID = b.ID`: an identical two-variable
/// leading set (a shared sequencing prefix under the same window)
/// followed by each pattern's own suffix type.
pub fn patterns(config: &BankConfig) -> Vec<(String, Pattern)> {
    assert!(config.event_types >= 1, "need at least one event type");
    let overlapped = config.overlapped_patterns();
    if overlapped > 0 {
        assert!(
            config.event_types >= 3,
            "overlapped patterns need the two anchor types plus a suffix type"
        );
    }
    (0..config.patterns)
        .map(|i| {
            if i < overlapped {
                // Suffix types start after the anchors so the prefix
                // group diverges on the suffix, not inside the prefix.
                let b = label(2 + i % (config.event_types - 2));
                let p = Pattern::builder()
                    .set(|s| s.var("a1").var("a2"))
                    .set(|s| s.var("b"))
                    .cond_const("a1", "TYPE", CmpOp::Eq, label(0).as_str())
                    .cond_const("a2", "TYPE", CmpOp::Eq, label(1).as_str())
                    .cond_vars("a1", "ID", CmpOp::Eq, "a2", "ID")
                    .cond_const("b", "TYPE", CmpOp::Eq, b.as_str())
                    .cond_vars("a1", "ID", CmpOp::Eq, "b", "ID")
                    .within(Duration::ticks(config.within))
                    .build()
                    .expect("overlapped bank pattern is valid");
                return (format!("q{i:02}"), p);
            }
            let a = label((2 * i) % config.event_types);
            let b = label((2 * i + 1) % config.event_types);
            let p = Pattern::builder()
                .set(|s| s.var("a"))
                .set(|s| s.var("b"))
                .cond_const("a", "TYPE", CmpOp::Eq, a.as_str())
                .cond_const("b", "TYPE", CmpOp::Eq, b.as_str())
                .cond_vars("a", "ID", CmpOp::Eq, "b", "ID")
                .within(Duration::ticks(config.within))
                .build()
                .expect("bank pattern is valid");
            (format!("q{i:02}"), p)
        })
        .collect()
}

/// Generates the event stream: random types and correlation keys on a
/// clock that advances 0–2 ticks per event (so timestamp ties occur).
/// Types are uniform, except that a [`BankConfig::anchor_share`]
/// fraction of events is drawn from the two anchor types instead.
/// Deterministic per seed, chronologically ordered.
pub fn generate(config: &BankConfig) -> Relation {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut builder = Relation::builder(schema());
    let mut t = 0i64;
    for _ in 0..config.events {
        t += rng.random_range(0..=2);
        let ty = if config.anchor_share > 0.0
            && config.event_types >= 2
            && rng.random_range(0.0..1.0) < config.anchor_share
        {
            rng.random_range(0..2)
        } else {
            rng.random_range(0..config.event_types)
        };
        let id = rng.random_range(0..config.ids.max(1));
        builder = builder
            .row(
                Timestamp::new(t),
                vec![Value::from(label(ty)), Value::from(id)],
            )
            .expect("generated rows are well-typed");
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ses_core::{MatcherOptions, PatternBank, StreamMatcher};
    use ses_pattern::{IndexClass, PatternIndex};

    #[test]
    fn deterministic_and_chronological() {
        let cfg = BankConfig::small();
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a.len(), cfg.events);
        assert_eq!(
            a.events().iter().map(|e| e.ts()).collect::<Vec<_>>(),
            b.events().iter().map(|e| e.ts()).collect::<Vec<_>>()
        );
        for w in a.events().windows(2) {
            assert!(w[0].ts() <= w[1].ts());
        }
        assert_ne!(
            generate(&cfg.clone().with_seed(7)).events()[0].values(),
            a.events()[0].values()
        );
    }

    #[test]
    fn overlap_knob_forms_one_prefix_group() {
        use ses_pattern::{ShareConstraint, SharingPlan};
        let cfg = BankConfig::small().with_patterns(8).with_overlap(0.5);
        assert_eq!(cfg.overlapped_patterns(), 4);
        let named = patterns(&cfg);
        let refs: Vec<&_> = named.iter().map(|(_, p)| p).collect();
        let plan = SharingPlan::compute(&refs, &vec![ShareConstraint::default(); refs.len()]);
        assert_eq!(plan.prefix_groups.len(), 1, "{}", plan.describe());
        assert_eq!(plan.prefix_groups[0].members, vec![0, 1, 2, 3]);

        let named = patterns(&BankConfig::small().with_patterns(8));
        let refs: Vec<&_> = named.iter().map(|(_, p)| p).collect();
        let plan = SharingPlan::compute(&refs, &vec![ShareConstraint::default(); refs.len()]);
        assert!(plan.is_trivial(), "{}", plan.describe());
    }

    #[test]
    fn disjoint_pool_is_fully_point_indexed() {
        let cfg = BankConfig::small().with_patterns(16);
        let compiled: Vec<_> = patterns(&cfg)
            .iter()
            .map(|(_, p)| p.compile(&schema()).unwrap())
            .collect();
        let index = PatternIndex::build(compiled.iter());
        for i in 0..cfg.patterns {
            assert_eq!(index.class(i), IndexClass::Indexed);
        }
    }

    #[test]
    fn bank_agrees_with_independent_matchers_and_index_saves_pushes() {
        let cfg = BankConfig {
            events: 600,
            ..BankConfig::small()
        };
        let rel = generate(&cfg);
        let named = patterns(&cfg);

        let mut builder = PatternBank::builder(&schema());
        for (name, p) in &named {
            builder = builder
                .register(name.clone(), p, MatcherOptions::default())
                .unwrap();
        }
        let mut bank = builder.build();
        let mut independent: Vec<StreamMatcher> = named
            .iter()
            .map(|(_, p)| StreamMatcher::compile(p, &schema()).unwrap())
            .collect();

        let mut got: Vec<Vec<ses_core::Match>> = vec![Vec::new(); named.len()];
        let mut want = got.clone();
        for (_, e) in rel.iter() {
            for (i, m) in bank.push(e.ts(), e.values().to_vec()).unwrap() {
                got[i].push(m);
            }
            for (i, sm) in independent.iter_mut().enumerate() {
                want[i].extend(sm.push(e.ts(), e.values().to_vec()).unwrap());
            }
        }
        let hits = bank.total_hits();
        for (i, m) in bank.finish() {
            got[i].push(m);
        }
        for (i, sm) in independent.into_iter().enumerate() {
            want[i].extend(sm.finish());
        }
        assert_eq!(got, want);
        assert!(got.iter().any(|g| !g.is_empty()), "workload never matches");
        // Disjoint pairs: each event is routed to exactly one pattern.
        assert_eq!(hits, cfg.events as u64);
    }
}
