//! Workload generators for SES pattern matching.
//!
//! * [`paper`] — the paper's Figure 1 relation, Query Q1, and the
//!   experiment patterns P1–P6, verbatim.
//! * [`chemo`] — a synthetic chemotherapy ward (the substitute for the
//!   paper's proprietary hospital data set; calibrated to D1's
//!   `W ≈ 1322`).
//! * [`finance`] — a trade tape with planted any-order accumulation
//!   motifs.
//! * [`rfid`] — warehouse RFID reads with permuted station visits.
//! * [`clickstream`] — web sessions with any-order research funnels and
//!   negation-relevant interruptions.
//! * [`bank`] — N correlated two-variable queries over one stream, for
//!   multi-pattern (`PatternBank`) execution.
//!
//! All generators are deterministic per seed and emit chronologically
//! ordered, schema-conformant relations.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bank;
pub mod chemo;
pub mod clickstream;
pub mod finance;
pub mod paper;
pub mod rfid;
