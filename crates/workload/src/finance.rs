//! Synthetic financial trading workload.
//!
//! The paper's introduction motivates event pattern matching with
//! financial services; this workload exercises SES patterns on a trade
//! tape. Schema: `(SYM, TYPE, PRICE, QTY, T)` with minute-granularity
//! timestamps. Event types: `BUY`, `SELL` (trades) and `ALERT` (a price
//! spike signal).
//!
//! The generator plants **accumulation motifs** — a large buy and a large
//! sell of the same symbol in close succession (in either order!),
//! followed by a price alert — inside background noise. The motif order
//! varies, which is precisely what `PERMUTE`-style matching is for:
//! [`accumulation_pattern`] finds the motif regardless of the buy/sell
//! order.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use ses_event::{AttrType, CmpOp, Duration, Relation, Schema, Timestamp, Value};
use ses_pattern::Pattern;

/// Symbols traded by the generator.
pub const SYMBOLS: [&str; 6] = ["ACME", "GLOBEX", "INITECH", "UMBRELLA", "WAYNE", "STARK"];

/// The trade-tape schema.
pub fn schema() -> Schema {
    Schema::builder()
        .attr("SYM", AttrType::Str)
        .attr("TYPE", AttrType::Str)
        .attr("PRICE", AttrType::Float)
        .attr("QTY", AttrType::Int)
        .build()
        .expect("static schema is valid")
}

/// Configuration of the finance generator.
#[derive(Debug, Clone)]
pub struct FinanceConfig {
    /// Number of background trades.
    pub background_trades: usize,
    /// Number of planted accumulation motifs.
    pub motifs: usize,
    /// Tape length in minutes.
    pub minutes: i64,
    /// Quantity threshold that makes a trade "large".
    pub large_qty: i64,
    /// RNG seed.
    pub seed: u64,
}

impl FinanceConfig {
    /// A small deterministic tape for tests and examples.
    pub fn small() -> FinanceConfig {
        FinanceConfig {
            background_trades: 400,
            motifs: 6,
            minutes: 8 * 60,
            large_qty: 10_000,
            seed: 7,
        }
    }
}

/// Generates the trade tape; returns the relation and the number of
/// planted motifs (each should yield at least one match of
/// [`accumulation_pattern`]).
pub fn generate(config: &FinanceConfig) -> Relation {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut rows: Vec<(Timestamp, Vec<Value>)> = Vec::new();

    let mut prices: Vec<f64> = SYMBOLS
        .iter()
        .map(|_| rng.random_range(20.0..200.0))
        .collect();

    // Background: small trades, random walk prices.
    for _ in 0..config.background_trades {
        let s = rng.random_range(0..SYMBOLS.len());
        prices[s] *= rng.random_range(0.998..1.002);
        let side = if rng.random_bool(0.5) { "BUY" } else { "SELL" };
        let qty = rng.random_range(100..config.large_qty / 2);
        let t = rng.random_range(0..config.minutes);
        rows.push(trade(SYMBOLS[s], side, prices[s], qty, t));
    }

    // Motifs: large buy + large sell (random order, 1–10 minutes apart),
    // alert 5–30 minutes after the later trade.
    for _ in 0..config.motifs {
        let s = rng.random_range(0..SYMBOLS.len());
        let t0 = rng.random_range(0..config.minutes - 60);
        let gap = rng.random_range(1..10);
        let (first, second) = if rng.random_bool(0.5) {
            ("BUY", "SELL")
        } else {
            ("SELL", "BUY")
        };
        let q1 = rng.random_range(config.large_qty..config.large_qty * 3);
        let q2 = rng.random_range(config.large_qty..config.large_qty * 3);
        rows.push(trade(SYMBOLS[s], first, prices[s], q1, t0));
        rows.push(trade(SYMBOLS[s], second, prices[s] * 1.01, q2, t0 + gap));
        let alert_t = t0 + gap + rng.random_range(5..30);
        rows.push((
            Timestamp::new(alert_t),
            vec![
                Value::from(SYMBOLS[s]),
                Value::from("ALERT"),
                Value::from(prices[s] * 1.05),
                Value::from(0i64),
            ],
        ));
    }

    rows.sort_by_key(|(ts, _)| *ts);
    let mut builder = Relation::builder(schema());
    for (ts, values) in rows {
        builder = builder
            .row(ts, values)
            .expect("generated rows are well-typed");
    }
    builder.build()
}

fn trade(sym: &str, side: &str, price: f64, qty: i64, minute: i64) -> (Timestamp, Vec<Value>) {
    (
        Timestamp::new(minute),
        vec![
            Value::from(sym),
            Value::from(side),
            Value::from((price * 100.0).round() / 100.0),
            Value::from(qty),
        ],
    )
}

/// The accumulation SES pattern: a large BUY and a large SELL of the same
/// symbol **in any order**, followed by an ALERT for that symbol, all
/// within `window` minutes.
pub fn accumulation_pattern(large_qty: i64, window: Duration) -> Pattern {
    Pattern::builder()
        .set(|s| s.var("buy").var("sell"))
        .set(|s| s.var("alert"))
        .cond_const("buy", "TYPE", CmpOp::Eq, "BUY")
        .cond_const("buy", "QTY", CmpOp::Ge, large_qty)
        .cond_const("sell", "TYPE", CmpOp::Eq, "SELL")
        .cond_const("sell", "QTY", CmpOp::Ge, large_qty)
        .cond_const("alert", "TYPE", CmpOp::Eq, "ALERT")
        .cond_vars("buy", "SYM", CmpOp::Eq, "sell", "SYM")
        .cond_vars("buy", "SYM", CmpOp::Eq, "alert", "SYM")
        .within(window)
        .build()
        .expect("accumulation pattern is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_chronological() {
        let cfg = FinanceConfig::small();
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a.len(), b.len());
        assert_eq!(a.len(), cfg.background_trades + 3 * cfg.motifs);
        for w in a.events().windows(2) {
            assert!(w[0].ts() <= w[1].ts());
        }
    }

    #[test]
    fn motifs_contain_both_orders_eventually() {
        // With several motifs and a fixed seed, both BUY-first and
        // SELL-first large pairs should occur.
        let rel = generate(&FinanceConfig {
            motifs: 12,
            ..FinanceConfig::small()
        });
        let large: Vec<&str> = rel
            .events()
            .iter()
            .filter(|e| matches!(e.values()[3], Value::Int(q) if q >= 10_000))
            .map(|e| match &e.values()[1] {
                Value::Str(s) => {
                    if s.as_ref() == "BUY" {
                        "B"
                    } else {
                        "S"
                    }
                }
                _ => unreachable!(),
            })
            .collect();
        assert!(large.contains(&"B") && large.contains(&"S"));
    }

    #[test]
    fn pattern_compiles_and_is_exclusive() {
        let p = accumulation_pattern(10_000, Duration::ticks(60));
        let cp = p.compile(&schema()).unwrap();
        // BUY ≠ SELL on TYPE ⇒ mutually exclusive first set.
        assert!(cp.analysis().all_pairwise_mutually_exclusive(0));
    }
}
