//! The paper's running example and experiment patterns, verbatim.
//!
//! * [`schema`] — the `Event` relation schema of Figure 1:
//!   `(ID, L, V, U, T)` with patient id, event type, value, unit, time.
//! * [`figure1`] — the 14 events `e1…e14` of Figure 1. Timestamps are
//!   hours since July 1st, 00:00 (so `9 am 3 Jul` = 57).
//! * [`query_q1`] — the SES pattern of Example 2:
//!   `(⟨{c, p+, d}, {b}⟩, Θ, 264)`.
//! * [`exp1_p1`]/[`exp1_p2`], [`exp2_p3`]/[`exp2_p4`],
//!   [`exp3_p5`]/[`exp3_p6`] — the patterns of experiments 1–3 (§5.3–5.5).

use ses_event::{AttrType, CmpOp, Duration, Relation, Schema, Timestamp, Value};
use ses_pattern::Pattern;

/// Event types used by the experiment patterns, in the order the paper
/// grows `|V1|`: Ciclofosfamide, Doxorubicina, Prednisone, Vincristine,
/// Rituximab, L-Asparaginase — plus `B` for blood counts.
pub const MEDICATION_TYPES: [&str; 6] = ["C", "D", "P", "V", "R", "L"];

/// The chemotherapy event schema of Figure 1 (temporal attribute `T` is
/// implicit).
pub fn schema() -> Schema {
    Schema::builder()
        .attr("ID", AttrType::Int)
        .attr("L", AttrType::Str)
        .attr("V", AttrType::Float)
        .attr("U", AttrType::Str)
        .build()
        .expect("static schema is valid")
}

/// Hours since July 1st 00:00 for `(day_of_july, hour)`.
fn jul(day: i64, hour: i64) -> Timestamp {
    Timestamp::new((day - 1) * 24 + hour)
}

/// The event relation of Figure 1 (events `e1…e14`).
pub fn figure1() -> Relation {
    let rows: [(i64, &str, f64, &str, i64, i64); 14] = [
        (1, "C", 1672.5, "mg", 3, 9),    // e1
        (1, "B", 0.0, "WHO-Tox", 3, 10), // e2
        (1, "D", 84.0, "mgl", 3, 11),    // e3
        (1, "P", 111.5, "mg", 4, 9),     // e4
        (2, "B", 0.0, "WHO-Tox", 5, 9),  // e5
        (2, "P", 88.0, "mg", 5, 10),     // e6
        (2, "D", 84.0, "mgl", 5, 11),    // e7
        (2, "C", 1320.0, "mg", 6, 9),    // e8
        (1, "P", 111.5, "mg", 6, 10),    // e9
        (2, "P", 88.0, "mg", 6, 11),     // e10
        (2, "P", 88.0, "mg", 7, 9),      // e11
        (1, "B", 1.0, "WHO-Tox", 12, 9), // e12
        (2, "B", 1.0, "WHO-Tox", 13, 9), // e13
        (2, "B", 0.0, "WHO-Tox", 14, 9), // e14
    ];
    let mut rel = Relation::new(schema());
    for (id, l, v, u, day, hour) in rows {
        rel.push_values(
            jul(day, hour),
            [
                Value::from(id),
                Value::from(l),
                Value::from(v),
                Value::from(u),
            ],
        )
        .expect("figure 1 rows are chronological and well-typed");
    }
    rel
}

/// Query Q1 (Example 2): one Ciclofosfamide, one or more Prednisone, and
/// one Doxorubicina in any order, followed by a blood count, all for the
/// same patient within 264 hours.
pub fn query_q1() -> Pattern {
    Pattern::builder()
        .set(|s| s.var("c").plus("p").var("d"))
        .set(|s| s.var("b"))
        .cond_const("c", "L", CmpOp::Eq, "C") // θ1
        .cond_const("d", "L", CmpOp::Eq, "D") // θ2
        .cond_const("p", "L", CmpOp::Eq, "P") // θ3
        .cond_const("b", "L", CmpOp::Eq, "B") // θ4
        .cond_vars("c", "ID", CmpOp::Eq, "p", "ID") // θ5
        .cond_vars("c", "ID", CmpOp::Eq, "d", "ID") // θ6
        .cond_vars("d", "ID", CmpOp::Eq, "b", "ID") // θ7
        .within(Duration::hours(264))
        .build()
        .expect("Q1 is a valid pattern")
}

/// Builds `⟨V1, {b}⟩` with `n` singleton variables in `V1` whose type
/// conditions are given by `types[i]`, plus `b.L = 'B'` and `τ = 264 h` —
/// the shape shared by all experiment patterns.
fn experiment_pattern(var_specs: &[(&str, bool, &str)]) -> Pattern {
    let specs: Vec<(String, bool, String)> = var_specs
        .iter()
        .map(|(n, g, t)| (n.to_string(), *g, t.to_string()))
        .collect();
    let mut b = Pattern::builder();
    {
        let names: Vec<(String, bool)> = specs.iter().map(|(n, g, _)| (n.clone(), *g)).collect();
        b = b.set(move |s| {
            for (name, group) in &names {
                if *group {
                    s.plus(name.clone());
                } else {
                    s.var(name.clone());
                }
            }
            s
        });
    }
    b = b.set(|s| s.var("b"));
    for (name, _, ty) in &specs {
        b = b.cond_const(name.clone(), "L", CmpOp::Eq, ty.as_str());
    }
    b = b.cond_const("b", "L", CmpOp::Eq, "B");
    b.within(Duration::hours(264))
        .build()
        .expect("experiment patterns are valid")
}

/// Experiment 1, pattern P1 restricted to `|V1| = n` (2 ≤ n ≤ 6):
/// pairwise mutually exclusive variables (distinct medication types).
pub fn exp1_p1(n: usize) -> Pattern {
    assert!((2..=6).contains(&n), "the paper sweeps |V1| from 2 to 6");
    let names = ["c", "d", "p", "v", "r", "l"];
    let specs: Vec<(&str, bool, &str)> = (0..n)
        .map(|i| (names[i], false, MEDICATION_TYPES[i]))
        .collect();
    experiment_pattern(&specs)
}

/// The medication type shared by all variables in the non-mutually-
/// exclusive experiment patterns (P2, P3, P4, P6).
///
/// The paper does not name the type; its measured |Ω| values (e.g. 116
/// for the SES automaton at `|V1| = 6`, Table 1) imply a *rare* type —
/// with a frequent one the Theorem-2/3 regimes explode factorially far
/// beyond the reported numbers. We use Vincristine (`V`), administered
/// once per cycle, which reproduces the reported magnitudes' shape.
pub const SHARED_TYPE: &str = "V";

/// Experiment 1, pattern P2 restricted to `|V1| = n`: all variables match
/// the *same* medication type (not mutually exclusive).
pub fn exp1_p2(n: usize) -> Pattern {
    assert!((2..=6).contains(&n), "the paper sweeps |V1| from 2 to 6");
    let names = ["c", "d", "p", "v", "r", "l"];
    let specs: Vec<(&str, bool, &str)> = (0..n).map(|i| (names[i], false, SHARED_TYPE)).collect();
    experiment_pattern(&specs)
}

/// Experiment 2, pattern P3: `⟨{c, d, p+}, {b}⟩`, all `V1` variables of
/// the same type (Theorem 3 regime, one group variable).
pub fn exp2_p3() -> Pattern {
    experiment_pattern(&[
        ("c", false, SHARED_TYPE),
        ("d", false, SHARED_TYPE),
        ("p", true, SHARED_TYPE),
    ])
}

/// Experiment 2, pattern P4: `⟨{c, d, p}, {b}⟩`, all `V1` variables of the
/// same type, no group variable (Theorem 2 regime).
pub fn exp2_p4() -> Pattern {
    experiment_pattern(&[
        ("c", false, SHARED_TYPE),
        ("d", false, SHARED_TYPE),
        ("p", false, SHARED_TYPE),
    ])
}

/// Experiment 3, pattern P5: `⟨{c, d, p+}, {b}⟩` with pairwise mutually
/// exclusive types.
pub fn exp3_p5() -> Pattern {
    experiment_pattern(&[("c", false, "C"), ("d", false, "D"), ("p", true, "P")])
}

/// Experiment 3, pattern P6: `⟨{c, d, p+}, {b}⟩` with identical types.
pub fn exp3_p6() -> Pattern {
    experiment_pattern(&[
        ("c", false, SHARED_TYPE),
        ("d", false, SHARED_TYPE),
        ("p", true, SHARED_TYPE),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use ses_pattern::ComplexityClass;

    #[test]
    fn figure1_matches_the_table() {
        let rel = figure1();
        assert_eq!(rel.len(), 14);
        // Spot checks against Figure 1.
        let e1 = &rel.events()[0];
        assert_eq!(e1.values()[0], Value::from(1));
        assert_eq!(e1.values()[1], Value::from("C"));
        assert_eq!(e1.values()[2], Value::from(1672.5));
        assert_eq!(e1.ts(), Timestamp::new(2 * 24 + 9));
        let e14 = &rel.events()[13];
        assert_eq!(e14.values()[0], Value::from(2));
        assert_eq!(e14.values()[1], Value::from("B"));
        // Example 4: e6 to e13 span 191 hours.
        let e6 = &rel.events()[5];
        let e13 = &rel.events()[12];
        assert_eq!(e13.ts().distance(e6.ts()), Duration::hours(191));
        // Example 9: W = 14 for τ = 264 h.
        assert_eq!(rel.window_size(Duration::hours(264)), 14);
    }

    #[test]
    fn q1_shape() {
        let q1 = query_q1();
        assert_eq!(q1.num_sets(), 2);
        assert_eq!(q1.num_vars(), 4);
        assert_eq!(q1.conditions().len(), 7);
        assert_eq!(q1.within(), Duration::hours(264));
        assert!(q1.var(q1.var_id("p").unwrap()).is_group());
        let compiled = q1.compile(&schema()).unwrap();
        // Example 10: all variables pairwise mutually exclusive.
        assert!(compiled.analysis().all_pairwise_mutually_exclusive(0));
        assert!(compiled.analysis().all_pairwise_mutually_exclusive(1));
    }

    #[test]
    fn experiment_pattern_classes_match_theorems() {
        let s = schema();
        for n in 2..=6 {
            let p1 = exp1_p1(n).compile(&s).unwrap();
            assert_eq!(p1.analysis().set_class(0), ComplexityClass::Constant);
            let p2 = exp1_p2(n).compile(&s).unwrap();
            assert_eq!(p2.analysis().set_class(0), ComplexityClass::Factorial { n });
        }
        let p3 = exp2_p3().compile(&s).unwrap();
        assert_eq!(
            p3.analysis().set_class(0),
            ComplexityClass::GroupPolynomial { n: 3 }
        );
        let p4 = exp2_p4().compile(&s).unwrap();
        assert_eq!(
            p4.analysis().set_class(0),
            ComplexityClass::Factorial { n: 3 }
        );
        let p5 = exp3_p5().compile(&s).unwrap();
        assert_eq!(p5.analysis().set_class(0), ComplexityClass::Constant);
        let p6 = exp3_p6().compile(&s).unwrap();
        assert_eq!(
            p6.analysis().set_class(0),
            ComplexityClass::GroupPolynomial { n: 3 }
        );
    }

    #[test]
    #[should_panic(expected = "sweeps")]
    fn exp1_rejects_out_of_range() {
        exp1_p1(7);
    }
}
