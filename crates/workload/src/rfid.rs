//! Synthetic RFID tracking workload.
//!
//! Models the paper's RFID-based tracking use case: tagged parcels move
//! through a warehouse. Before shipping, each parcel must pass the
//! **pack**, **weigh**, and **label** stations — *in any order*, depending
//! on floor layout and congestion — and is then read at the **ship**
//! gate. Schema: `(TAG, LOC, T)` with second-granularity timestamps.
//!
//! [`fulfillment_pattern`] is the natural SES query: `⟨{pack, weigh,
//! label}, {ship}⟩` correlated on the tag. The generator also produces
//! incomplete journeys (a station skipped) that must *not* match.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{RngExt, SeedableRng};

use ses_event::{AttrType, CmpOp, Duration, Relation, Schema, Timestamp, Value};
use ses_pattern::Pattern;

/// The RFID read schema.
pub fn schema() -> Schema {
    Schema::builder()
        .attr("TAG", AttrType::Int)
        .attr("LOC", AttrType::Str)
        .build()
        .expect("static schema is valid")
}

/// Configuration of the RFID generator.
#[derive(Debug, Clone)]
pub struct RfidConfig {
    /// Number of parcels that complete all four stations.
    pub complete_parcels: usize,
    /// Number of parcels that skip one pre-ship station (no match).
    pub incomplete_parcels: usize,
    /// Maximal seconds between a parcel's first and last read.
    pub journey_seconds: i64,
    /// Overall tape length in seconds.
    pub horizon_seconds: i64,
    /// RNG seed.
    pub seed: u64,
}

impl RfidConfig {
    /// A small deterministic tape.
    pub fn small() -> RfidConfig {
        RfidConfig {
            complete_parcels: 30,
            incomplete_parcels: 10,
            journey_seconds: 1800,
            horizon_seconds: 4 * 3600,
            seed: 99,
        }
    }
}

/// Generates the RFID read tape.
pub fn generate(config: &RfidConfig) -> Relation {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut rows: Vec<(Timestamp, Vec<Value>)> = Vec::new();
    let mut tag = 0i64;

    let mut journey =
        |rng: &mut StdRng, rows: &mut Vec<(Timestamp, Vec<Value>)>, complete: bool| {
            tag += 1;
            let start = rng.random_range(0..config.horizon_seconds - config.journey_seconds);
            let mut stations = vec!["pack", "weigh", "label"];
            stations.shuffle(rng);
            if !complete {
                stations.pop(); // skip one pre-ship station
            }
            let mut t = start;
            for loc in &stations {
                t += rng.random_range(30..config.journey_seconds / 5);
                rows.push((Timestamp::new(t), vec![Value::from(tag), Value::from(*loc)]));
            }
            t += rng.random_range(60..config.journey_seconds / 4);
            rows.push((
                Timestamp::new(t),
                vec![Value::from(tag), Value::from("ship")],
            ));
        };

    for _ in 0..config.complete_parcels {
        journey(&mut rng, &mut rows, true);
    }
    for _ in 0..config.incomplete_parcels {
        journey(&mut rng, &mut rows, false);
    }

    rows.sort_by_key(|(ts, _)| *ts);
    let mut builder = Relation::builder(schema());
    for (ts, values) in rows {
        builder = builder
            .row(ts, values)
            .expect("generated rows are well-typed");
    }
    builder.build()
}

/// `⟨{pack, weigh, label}, {ship}⟩` for one tag, within `window`.
///
/// The tag-correlation conditions form a **clique** over the first set
/// (`pack=weigh`, `pack=label`, *and* `weigh=label`), not just a star.
/// Under the paper's skip-till-next-match semantics the automaton
/// consumes greedily: with only star conditions, an instance that has
/// bound `weigh` of parcel X would absorb the next `label` read of *any*
/// parcel (no condition relates `weigh` and `label` yet) and derail.
/// Pairwise conditions make every intermediate transition fully
/// constrained. The same subtlety exists in the paper's own Θ for Q1
/// (`c = p`, `c = d` leaves the `p`–`d` pair unconstrained).
pub fn fulfillment_pattern(window: Duration) -> Pattern {
    Pattern::builder()
        .set(|s| s.var("pack").var("weigh").var("label"))
        .set(|s| s.var("ship"))
        .cond_const("pack", "LOC", CmpOp::Eq, "pack")
        .cond_const("weigh", "LOC", CmpOp::Eq, "weigh")
        .cond_const("label", "LOC", CmpOp::Eq, "label")
        .cond_const("ship", "LOC", CmpOp::Eq, "ship")
        .cond_vars("pack", "TAG", CmpOp::Eq, "weigh", "TAG")
        .cond_vars("pack", "TAG", CmpOp::Eq, "label", "TAG")
        .cond_vars("weigh", "TAG", CmpOp::Eq, "label", "TAG")
        .cond_vars("pack", "TAG", CmpOp::Eq, "ship", "TAG")
        .within(window)
        .build()
        .expect("fulfillment pattern is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_chronological() {
        let cfg = RfidConfig::small();
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a.len(), b.len());
        // 4 reads per complete parcel, 3 per incomplete.
        assert_eq!(
            a.len(),
            4 * cfg.complete_parcels + 3 * cfg.incomplete_parcels
        );
        for w in a.events().windows(2) {
            assert!(w[0].ts() <= w[1].ts());
        }
    }

    #[test]
    fn station_orders_vary() {
        // The station visit order must differ across parcels (that is the
        // point of the PERMUTE pattern).
        let rel = generate(&RfidConfig::small());
        let mut orders: Vec<String> = Vec::new();
        let mut current: Vec<(i64, String)> = Vec::new();
        for e in rel.events() {
            let tag = match e.values()[0] {
                Value::Int(t) => t,
                _ => unreachable!(),
            };
            let loc = e.values()[1].to_string();
            current.push((tag, loc));
        }
        for tag in 1..=30 {
            let order: String = current
                .iter()
                .filter(|(t, _)| *t == tag)
                .map(|(_, l)| l.chars().nth(1).unwrap())
                .collect();
            orders.push(order);
        }
        orders.sort();
        orders.dedup();
        assert!(orders.len() > 1, "all parcels took the same route");
    }

    #[test]
    fn pattern_compiles() {
        let p = fulfillment_pattern(Duration::ticks(3600));
        let cp = p.compile(&schema()).unwrap();
        assert!(cp.analysis().all_pairwise_mutually_exclusive(0));
        assert!(cp.every_var_constrained());
    }
}
