//! Differential suite: `PartitionMode::Auto` — analyzer-proven key,
//! zero-copy per-key shards, worker threads — returns exactly the
//! global-scan (`PartitionMode::Off`) answer, match for match, under
//! every semantics × selection combination and thread count.
//!
//! The generators are shared with `oracle.rs` and `stream_vs_batch.rs`
//! (see `common/`), so the pattern space this suite proves
//! partition-invariant is the same space those suites prove correct:
//! together they give `partitioned ≡ global ≡ stream ≡ oracle`.
//! Patterns the analyzer cannot prove a key for (uncorrelated ones, or
//! runs without the end-of-relation flush) fall back to the global scan
//! inside the same API, so the equality is trivially preserved — the
//! suite covers that path too rather than filtering it out.

mod common;

use proptest::prelude::*;

use common::{negated_pattern_strategy, pattern_strategy, relation_strategy_with, schema};
use ses::prelude::*;

const MODES: [MatchSemantics; 3] = [
    MatchSemantics::Maximal,
    MatchSemantics::Definition2,
    MatchSemantics::AllRuns,
];

const SELECTIONS: [EventSelection; 2] = [
    EventSelection::SkipTillNextMatch,
    EventSelection::SkipTillAnyMatch,
];

fn answer(pat: &Pattern, rel: &Relation, options: MatcherOptions) -> Vec<Match> {
    let mut out = Matcher::with_options(pat, &schema(), options)
        .unwrap()
        .find(rel);
    out.sort();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `Auto` equals `Off` for every semantics × selection × thread
    /// count. Whether the generated pattern proves a key (full
    /// ID-equality clique) or not (uncorrelated / grouped), the two
    /// modes must be indistinguishable from the outside.
    #[test]
    fn auto_equals_off_under_every_mode(
        rel in relation_strategy_with(2..9, 0..4),
        pat in prop_oneof![pattern_strategy(), negated_pattern_strategy()],
    ) {
        for semantics in MODES {
            for selection in SELECTIONS {
                let base = MatcherOptions { semantics, selection, ..MatcherOptions::default() };
                let global = answer(&pat, &rel, base.clone());
                for threads in [None, Some(1), Some(3)] {
                    let auto = answer(&pat, &rel, MatcherOptions {
                        partition: PartitionMode::Auto,
                        threads,
                        ..base.clone()
                    });
                    prop_assert_eq!(
                        &auto, &global,
                        "{:?}/{:?} threads={:?} diverged from global",
                        semantics, selection, threads
                    );
                }
            }
        }
    }

    /// Without the end-of-relation flush, partial groups may stay
    /// pending at the last watermark, and a per-key run would flush them
    /// differently — so `Auto` must *refuse* the key and fall back to
    /// the global scan, changing nothing.
    #[test]
    fn auto_falls_back_without_flush(
        rel in relation_strategy_with(2..9, 0..4),
        pat in pattern_strategy(),
    ) {
        let base = MatcherOptions { flush_at_end: false, ..MatcherOptions::default() };
        let auto_matcher = Matcher::with_options(&pat, &schema(), MatcherOptions {
            partition: PartitionMode::Auto,
            ..base.clone()
        }).unwrap();
        prop_assert!(
            auto_matcher.partition_key().is_none(),
            "no key may be resolved without flush_at_end"
        );
        let mut auto = auto_matcher.find(&rel);
        auto.sort();
        prop_assert_eq!(auto, answer(&pat, &rel, base));
    }

    /// A negated or grouped pattern never proves a key, and demanding
    /// one explicitly must fail loudly: `PartitionMode::Key` rejects the
    /// unproven attribute with [`CoreError::UnprovenPartitionKey`]
    /// instead of silently losing cross-partition matches, while `Auto`
    /// on the same pattern resolves to the global strategy.
    #[test]
    fn unproven_explicit_key_is_refused(
        pat in negated_pattern_strategy(),
    ) {
        let schema = schema();
        prop_assert!(pat.compile(&schema).unwrap().partition_keys().is_empty());
        let key = schema.attr_id("ID").unwrap();
        let err = Matcher::with_options(&pat, &schema, MatcherOptions {
            partition: PartitionMode::Key(key),
            ..MatcherOptions::default()
        }).unwrap_err();
        prop_assert!(
            matches!(err, CoreError::UnprovenPartitionKey { .. }),
            "expected UnprovenPartitionKey, got {:?}", err
        );
        let auto = Matcher::with_options(&pat, &schema, MatcherOptions {
            partition: PartitionMode::Auto,
            ..MatcherOptions::default()
        }).unwrap();
        prop_assert_eq!(auto.partition_strategy(), PartitionStrategy::Global);
    }

    /// The raw per-key split never clones an event payload: every event
    /// reachable through a partition view is pointer-identical to the
    /// parent relation's event.
    #[test]
    fn partition_views_are_zero_copy(
        rel in relation_strategy_with(2..9, 0..4),
    ) {
        let key = schema().attr_id("ID").unwrap();
        let mut seen = 0usize;
        for (_, view) in ses::parallel::partition_views(&rel, key) {
            for (local, event) in view.iter() {
                prop_assert!(
                    std::ptr::eq(event, rel.event(view.global_id(local))),
                    "partitioning must not clone events"
                );
                seen += 1;
            }
        }
        prop_assert_eq!(seen, rel.len(), "views must cover the relation exactly");
    }
}
