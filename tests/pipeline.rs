//! End-to-end pipelines across crates: generator → CSV store → query
//! language → matcher, on all three domain workloads.

use ses::prelude::*;
use ses::workload::{chemo, finance, rfid};

fn temp_path(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("ses-pipeline-tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{name}-{}.csv", std::process::id()))
}

#[test]
fn chemo_pipeline_via_csv_and_query_language() {
    // Generate, persist, reload: matching the reloaded store must give
    // identical results to matching the in-memory relation.
    let relation = chemo::generate(&chemo::ChemoConfig::small());
    let store = EventStore::new("chemo", relation.clone());
    let path = temp_path("chemo");
    store.save_csv(&path).unwrap();
    let reloaded = EventStore::load_csv(&path).unwrap();
    assert_eq!(reloaded.len(), relation.len());

    let pattern = ses::query::parse_pattern(
        "PATTERN PERMUTE(c, p+, d) THEN b \
         WHERE c.L = 'C' AND d.L = 'D' AND p.L = 'P' AND b.L = 'B' \
           AND c.ID = p.ID AND c.ID = d.ID AND d.ID = b.ID \
         WITHIN 264 HOURS",
        TickUnit::Hour,
    )
    .unwrap();
    let matcher = Matcher::compile(&pattern, relation.schema()).unwrap();
    let direct = matcher.find(&relation);
    let via_csv = matcher.find(reloaded.relation());
    assert_eq!(direct, via_csv);
    assert!(!direct.is_empty());
    std::fs::remove_file(&path).ok();
}

#[test]
fn finance_pipeline_finds_planted_motifs() {
    let cfg = finance::FinanceConfig::small();
    let tape = finance::generate(&cfg);
    let pattern = ses::query::parse_pattern(
        "PATTERN PERMUTE(buy, sell) THEN alert \
         WHERE buy.TYPE = 'BUY' AND buy.QTY >= 10000 \
           AND sell.TYPE = 'SELL' AND sell.QTY >= 10000 \
           AND alert.TYPE = 'ALERT' \
           AND buy.SYM = sell.SYM AND buy.SYM = alert.SYM \
         WITHIN 60 TICKS",
        TickUnit::Minute,
    )
    .unwrap();
    let matches = Matcher::compile(&pattern, tape.schema())
        .unwrap()
        .find(&tape);
    assert!(
        matches.len() >= cfg.motifs,
        "found {} of {} planted motifs",
        matches.len(),
        cfg.motifs
    );
    // And it agrees with the programmatic pattern.
    let prog = finance::accumulation_pattern(cfg.large_qty, Duration::ticks(60));
    let prog_matches = Matcher::compile(&prog, tape.schema()).unwrap().find(&tape);
    assert_eq!(matches.len(), prog_matches.len());
}

#[test]
fn rfid_pipeline_partitioned_equals_global() {
    // Matching per-tag partitions must find the same number of matches
    // as the correlated global query (the partitioning ablation's
    // correctness premise).
    let cfg = rfid::RfidConfig::small();
    let tape = rfid::generate(&cfg);
    let pattern = rfid::fulfillment_pattern(Duration::ticks(cfg.journey_seconds * 2));
    let matcher = Matcher::compile(&pattern, tape.schema()).unwrap();
    let global = matcher.find(&tape);

    let store = EventStore::new("rfid", tape.clone());
    let tag_attr = tape.schema().attr_id("TAG").unwrap();
    let mut partitioned_total = 0;
    for (_, part) in store.partition_by(tag_attr) {
        partitioned_total += matcher.find(part.relation()).len();
    }
    assert_eq!(global.len(), partitioned_total);
    assert_eq!(global.len(), cfg.complete_parcels);
}

#[test]
fn dataset_duplication_scales_window_size() {
    // The D1…D5 construction of the paper's §5.1: each event k times ⇒
    // W scales by k.
    let base = chemo::generate(&chemo::ChemoConfig::small());
    let store = EventStore::new("chemo", base);
    let w1 = store.window_size(Duration::hours(264));
    for (k, d) in store.datasets(5).iter().enumerate() {
        assert_eq!(d.window_size(Duration::hours(264)), (k + 1) * w1);
    }
}

#[test]
fn matches_on_duplicated_data_grow() {
    // Duplicated events multiply binding choices; the engine must cope
    // with massive timestamp ties and still produce valid matches.
    let pattern = ses::workload::paper::query_q1();
    let base = ses::workload::paper::figure1();
    let matcher = Matcher::compile(&pattern, base.schema()).unwrap();
    let d2 = base.duplicate(2);
    let compiled = pattern.compile(base.schema()).unwrap();
    let matches = matcher.find(&d2);
    assert!(!matches.is_empty());
    for m in &matches {
        assert!(ses::core::satisfies_conditions_1_3(
            &compiled,
            &d2,
            m.bindings()
        ));
    }
}
