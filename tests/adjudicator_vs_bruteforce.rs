//! Differential suite for the indexed adjudicator: the default
//! [`AdjudicationMode::Indexed`] backend (sorted group candidates,
//! posting-list and prefix-hash indexes, bounded viable-event sweeps)
//! must be *observably identical* to the legacy pairwise `O(R²)` scans
//! it replaced — [`AdjudicationMode::Pairwise`], retained exactly for
//! this role of brute-force oracle.
//!
//! Identical means more than equal match sets: the streaming legs
//! compare the push-for-push **emission schedule**, so the indexed
//! backend may not even reorder or delay an emission. Coverage spans
//! semantics × selection strategy × eviction × batch/stream ×
//! global/sharded execution × the multi-pattern bank, on both the
//! oracle-shared generators (`common/`) and dense same-group workloads
//! (group variables under skip-till-any-match: nested containment
//! chains, duplicate timestamps, equal start/end intervals — routinely
//! dozens of candidates in one adjudication group).

mod common;

use proptest::prelude::*;

use common::{
    dense_pattern_strategy, dense_relation_strategy, pattern_strategy, relation_strategy_with,
    schema,
};
use ses::prelude::*;
use ses::store::{decode_snapshot, encode_snapshot};

const MODES: [MatchSemantics; 3] = [
    MatchSemantics::Maximal,
    MatchSemantics::Definition2,
    MatchSemantics::AllRuns,
];

const SELECTIONS: [EventSelection; 2] = [
    EventSelection::SkipTillNextMatch,
    EventSelection::SkipTillAnyMatch,
];

fn options(
    semantics: MatchSemantics,
    selection: EventSelection,
    adjudication: AdjudicationMode,
) -> MatcherOptions {
    MatcherOptions {
        semantics,
        selection,
        adjudication,
        ..MatcherOptions::default()
    }
}

/// Batch answer in the matcher's own emission order — the suite asserts
/// exact (ordered) equality, not just set equality.
fn batch_answer(pat: &Pattern, rel: &Relation, opts: MatcherOptions) -> Vec<Match> {
    Matcher::with_options(pat, &schema(), opts)
        .unwrap()
        .find(rel)
}

/// Replays `rel` through a stream matcher; returns the per-push emission
/// schedule plus the finish flush (last entry).
fn stream_schedule(
    pat: &Pattern,
    rel: &Relation,
    opts: MatcherOptions,
    evict: bool,
) -> Vec<Vec<Match>> {
    let mut sm = StreamMatcher::with_options(pat, &schema(), opts)
        .unwrap()
        .with_eviction(evict);
    let mut schedule = Vec::new();
    for e in rel.events() {
        schedule.push(sm.push(e.ts(), e.values().to_vec()).unwrap());
    }
    schedule.push(sm.finish());
    schedule
}

/// As [`stream_schedule`] but through a sharded matcher; `None` when the
/// pattern proves no partition key (sharded construction refuses).
fn sharded_schedule(
    pat: &Pattern,
    rel: &Relation,
    opts: MatcherOptions,
    shards: usize,
) -> Option<Vec<Vec<Match>>> {
    let opts = MatcherOptions {
        partition: PartitionMode::Auto,
        ..opts
    };
    let mut sm = ShardedStreamMatcher::with_options(pat, &schema(), opts, shards).ok()?;
    let mut schedule = Vec::new();
    for e in rel.events() {
        schedule.push(sm.push(e.ts(), e.values().to_vec()).unwrap());
    }
    schedule.push(sm.finish());
    Some(schedule)
}

/// Replays `rel` through a [`PatternBank`] holding every pattern under
/// `adjudication`; returns the per-push `(pattern, match)` schedule plus
/// the finish flush.
fn bank_schedule(
    patterns: &[Pattern],
    rel: &Relation,
    semantics: MatchSemantics,
    adjudication: AdjudicationMode,
    sharing: bool,
) -> Vec<Vec<(usize, Match)>> {
    let mut b = PatternBank::builder(&schema()).with_sharing(sharing);
    for (i, p) in patterns.iter().enumerate() {
        b = b
            .register(
                format!("p{i}"),
                p,
                options(semantics, EventSelection::SkipTillNextMatch, adjudication),
            )
            .unwrap();
    }
    let mut bank = b.build();
    let mut schedule = Vec::new();
    for e in rel.events() {
        schedule.push(bank.push(e.ts(), e.values().to_vec()).unwrap());
    }
    schedule.push(bank.finish());
    schedule
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Batch `find`: the indexed adjudicator returns exactly the
    /// pairwise oracle's answer — same matches, same order — for every
    /// semantics and selection strategy.
    #[test]
    fn batch_indexed_equals_pairwise(
        rel in relation_strategy_with(2..8, 0..4),
        pat in pattern_strategy(),
    ) {
        for semantics in MODES {
            for selection in SELECTIONS {
                let indexed = batch_answer(
                    &pat, &rel, options(semantics, selection, AdjudicationMode::Indexed));
                let pairwise = batch_answer(
                    &pat, &rel, options(semantics, selection, AdjudicationMode::Pairwise));
                prop_assert_eq!(
                    &indexed, &pairwise,
                    "{:?}/{:?}: indexed diverged from pairwise", semantics, selection
                );
            }
        }
    }

    /// Streaming: the per-push emission schedules (including the finish
    /// flush) are identical under both adjudicators, with eviction on
    /// and off — the indexed backend may not reorder, delay, or drop a
    /// single emission.
    #[test]
    fn stream_indexed_equals_pairwise(
        rel in relation_strategy_with(2..8, 0..4),
        pat in pattern_strategy(),
    ) {
        for semantics in MODES {
            for selection in SELECTIONS {
                for evict in [true, false] {
                    let indexed = stream_schedule(
                        &pat, &rel, options(semantics, selection, AdjudicationMode::Indexed), evict);
                    let pairwise = stream_schedule(
                        &pat, &rel, options(semantics, selection, AdjudicationMode::Pairwise), evict);
                    prop_assert_eq!(
                        &indexed, &pairwise,
                        "{:?}/{:?} evict={}: schedules diverged", semantics, selection, evict
                    );
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Dense groups, batch: group variables under skip-till-any-match
    /// flood single adjudication groups with dozens of nested /
    /// tie-heavy candidates — the regime the indexed backend's prefix
    /// hashes, posting lists, and duplicate-timestamp interval logic
    /// must survive. Skip-till-next-match rides along for breadth.
    #[test]
    fn dense_batch_indexed_equals_pairwise(
        rel in dense_relation_strategy(),
        pat in dense_pattern_strategy(),
    ) {
        for semantics in MODES {
            for selection in SELECTIONS {
                let indexed = batch_answer(
                    &pat, &rel, options(semantics, selection, AdjudicationMode::Indexed));
                let pairwise = batch_answer(
                    &pat, &rel, options(semantics, selection, AdjudicationMode::Pairwise));
                prop_assert_eq!(
                    &indexed, &pairwise,
                    "{:?}/{:?}: indexed diverged on a dense group", semantics, selection
                );
            }
        }
    }

    /// Dense groups, streaming: same workloads through the watermark
    /// pipeline — tie-heavy seams make group decidability and survivor
    /// pruning fire mid-group, exactly where an index staleness bug
    /// would surface as a schedule difference.
    #[test]
    fn dense_stream_indexed_equals_pairwise(
        rel in dense_relation_strategy(),
        pat in dense_pattern_strategy(),
    ) {
        let selection = EventSelection::SkipTillAnyMatch;
        for semantics in [MatchSemantics::Maximal, MatchSemantics::Definition2] {
            for evict in [true, false] {
                let indexed = stream_schedule(
                    &pat, &rel, options(semantics, selection, AdjudicationMode::Indexed), evict);
                let pairwise = stream_schedule(
                    &pat, &rel, options(semantics, selection, AdjudicationMode::Pairwise), evict);
                prop_assert_eq!(
                    &indexed, &pairwise,
                    "{:?} evict={}: dense schedules diverged", semantics, evict
                );
            }
        }
    }

    /// Sharded streaming (1–3 shards): per-shard adjudication plus the
    /// post-merge global pass both run indexed; the whole pipeline must
    /// still reproduce the pairwise schedule. Patterns proving no
    /// partition key are skipped (sharded construction refuses them).
    #[test]
    fn sharded_indexed_equals_pairwise(
        rel in relation_strategy_with(2..8, 0..4),
        pat in pattern_strategy(),
        shards in 1usize..4,
    ) {
        for semantics in [MatchSemantics::Maximal, MatchSemantics::Definition2] {
            let selection = EventSelection::SkipTillNextMatch;
            let indexed = sharded_schedule(
                &pat, &rel, options(semantics, selection, AdjudicationMode::Indexed), shards);
            let pairwise = sharded_schedule(
                &pat, &rel, options(semantics, selection, AdjudicationMode::Pairwise), shards);
            prop_assert_eq!(
                &indexed, &pairwise,
                "{:?} shards={}: sharded schedules diverged", semantics, shards
            );
        }
    }

    /// The multi-pattern bank: every registered pattern adjudicates
    /// through its own `MatcherOptions`, with and without structural
    /// sharing — the `(pattern, match)` schedules must agree.
    #[test]
    fn bank_indexed_equals_pairwise(
        rel in relation_strategy_with(2..8, 0..4),
        pats in proptest::collection::vec(pattern_strategy(), 1..3),
        sharing in proptest::bool::ANY,
    ) {
        for semantics in [MatchSemantics::Maximal, MatchSemantics::Definition2] {
            let indexed = bank_schedule(&pats, &rel, semantics, AdjudicationMode::Indexed, sharing);
            let pairwise = bank_schedule(&pats, &rel, semantics, AdjudicationMode::Pairwise, sharing);
            prop_assert_eq!(
                &indexed, &pairwise,
                "{:?} sharing={}: bank schedules diverged", semantics, sharing
            );
        }
    }
}

/// The dense generators keep their promise: a same-type run under a
/// group variable with skip-till-any-match really does put well over ten
/// candidates into one adjudication group — and the indexed backend
/// still reproduces the pairwise answer on it.
#[test]
fn dense_groups_really_are_dense() {
    let mut rel = Relation::new(schema());
    for i in 0..9i64 {
        // Three ties per timestamp step: duplicate-timestamp city.
        rel.push_values(Timestamp::new(i / 3), [Value::from("A"), Value::from(1i64)])
            .unwrap();
    }
    let pat = Pattern::builder()
        .set(|s| s.plus("a"))
        .cond_const("a", "L", CmpOp::Eq, "A")
        .within(Duration::ticks(10))
        .build()
        .unwrap();
    let raw = batch_answer(
        &pat,
        &rel,
        options(
            MatchSemantics::AllRuns,
            EventSelection::SkipTillAnyMatch,
            AdjudicationMode::Indexed,
        ),
    );
    // All 2^8 runs share first event e1 → one group with 256 candidates.
    assert!(
        raw.len() > 10,
        "expected a dense group, got {} candidates",
        raw.len()
    );
    for semantics in [MatchSemantics::Maximal, MatchSemantics::Definition2] {
        let indexed = batch_answer(
            &pat,
            &rel,
            options(
                semantics,
                EventSelection::SkipTillAnyMatch,
                AdjudicationMode::Indexed,
            ),
        );
        let pairwise = batch_answer(
            &pat,
            &rel,
            options(
                semantics,
                EventSelection::SkipTillAnyMatch,
                AdjudicationMode::Pairwise,
            ),
        );
        assert_eq!(
            indexed, pairwise,
            "{semantics:?} diverged on the dense group"
        );
    }
}

/// Adjudicator survivors round-trip through a bank checkpoint: kind 2
/// (plain bank) and kind 3 (shared structure). The snapshot is taken
/// while a Maximal survivor is still live (within `2τ` of its `minT`),
/// encoded through the binary codec, decoded, restored — and the
/// restored bank's remaining emissions must equal the uninterrupted
/// run's, which can only happen if `restore_survivors` rebuilt the
/// indexed survivor store correctly.
#[test]
fn bank_checkpoint_roundtrips_survivors() {
    let pat = Pattern::builder()
        .set(|s| s.var("a"))
        .set(|s| s.var("b"))
        .cond_const("a", "L", CmpOp::Eq, "A")
        .cond_const("b", "L", CmpOp::Eq, "B")
        .within(Duration::ticks(10))
        .build()
        .unwrap();
    // (ts, type): the X@12 push decides the A@0 group and emits {a,b};
    // its survivor (minT = 0) stays live until the watermark reaches 20.
    let rows: [(i64, &str); 6] = [
        (0, "A"),
        (1, "B"),
        (12, "X"),
        (13, "A"),
        (14, "B"),
        (30, "X"),
    ];
    let split = 3; // checkpoint after the X@12 push
                   // Registering the same pattern twice makes the sharing planner
                   // deduplicate them → a kind-3 snapshot; sharing off keeps kind 2.
    for sharing in [false, true] {
        let specs: Vec<(String, Pattern, MatcherOptions)> = (0..2)
            .map(|i| {
                (
                    format!("p{i}"),
                    pat.clone(),
                    options(
                        MatchSemantics::Maximal,
                        EventSelection::SkipTillNextMatch,
                        AdjudicationMode::Indexed,
                    ),
                )
            })
            .collect();
        let build = |sharing: bool| {
            let mut b = PatternBank::builder(&schema()).with_sharing(sharing);
            for (name, p, o) in &specs {
                b = b.register(name.clone(), p, o.clone()).unwrap();
            }
            b.build()
        };
        let push_rows = |bank: &mut PatternBank, rows: &[(i64, &str)]| -> Vec<(usize, Match)> {
            let mut out = Vec::new();
            for (ts, ty) in rows {
                out.extend(
                    bank.push(Timestamp::new(*ts), [Value::from(*ty), Value::from(1i64)])
                        .unwrap(),
                );
            }
            out
        };

        // Uninterrupted reference run.
        let mut whole = build(sharing);
        let mut reference = push_rows(&mut whole, &rows);
        reference.extend(whole.finish());

        // Checkpointed run: push a prefix, snapshot through the codec,
        // restore, push the suffix.
        let mut bank = build(sharing);
        let mut emissions = push_rows(&mut bank, &rows[..split]);
        let snap = bank.snapshot();
        let has_survivor = snap
            .patterns
            .iter()
            .filter_map(|p| p.matcher.as_ref())
            .chain(snap.pools.iter())
            .any(|s| !s.survivors.is_empty());
        assert!(
            has_survivor,
            "sharing={sharing}: snapshot carries no live survivor — the round-trip is vacuous"
        );
        let bytes = encode_snapshot(&MatcherSnapshot::Bank(snap));
        let MatcherSnapshot::Bank(decoded) = decode_snapshot(&bytes).unwrap() else {
            panic!("bank snapshot decoded to a different kind");
        };
        let mut restored = PatternBank::restore(&specs, &schema(), &decoded).unwrap();
        emissions.extend(push_rows(&mut restored, &rows[split..]));
        emissions.extend(restored.finish());

        assert_eq!(
            emissions, reference,
            "sharing={sharing}: restored bank diverged from the uninterrupted run"
        );
    }
}
