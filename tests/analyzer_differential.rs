//! Differential suite for the static analyzer (satellite of the
//! `ses-cli check` pipeline): rewriting a pattern through
//! [`ses::pattern::analyze`] — dropping redundant constant conditions and
//! adding propagated ones — must be invisible to the matcher. Every
//! generated pattern is run both ways on the reference matcher and the
//! match sets must be byte-identical, under all three semantics modes and
//! both event-selection strategies.
//!
//! The generators live in `common/` next to the oracle and
//! stream-vs-batch suites, so the space the analyzer is proven
//! behavior-preserving on is the same space those suites validate.

mod common;

use proptest::prelude::*;

use common::{analyzer_pattern_strategy, relation_strategy_with, schema};
use ses::prelude::*;

const MODES: [MatchSemantics; 3] = [
    MatchSemantics::Maximal,
    MatchSemantics::Definition2,
    MatchSemantics::AllRuns,
];

const SELECTIONS: [EventSelection; 2] = [
    EventSelection::SkipTillNextMatch,
    EventSelection::SkipTillAnyMatch,
];

/// Runs `pat` over `rel` and renders every match against the *original*
/// pattern's variable names, sorted — the byte-level answer we compare.
fn answer(
    pat: &Pattern,
    display: &Pattern,
    rel: &Relation,
    semantics: MatchSemantics,
    selection: EventSelection,
) -> Vec<String> {
    let m = Matcher::with_options(
        pat,
        &schema(),
        MatcherOptions {
            semantics,
            selection,
            ..MatcherOptions::default()
        },
    )
    .unwrap();
    let mut out: Vec<String> = m
        .find(rel)
        .iter()
        .map(|m| m.display_with(display).to_string())
        .collect();
    out.sort();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// The analyzer-rewritten pattern produces exactly the original
    /// pattern's matches. Covers satisfiable patterns (where SES002
    /// drops and propagation adds conditions) and unsatisfiable ones
    /// (where both sides must report nothing).
    #[test]
    fn rewritten_pattern_matches_identically(
        rel in relation_strategy_with(2..8, 0..4),
        pat in analyzer_pattern_strategy(),
    ) {
        let analysis = analyze(&pat, &schema());
        for semantics in MODES {
            for selection in SELECTIONS {
                let original = answer(&pat, &pat, &rel, semantics, selection);
                let rewritten = answer(&analysis.pattern, &pat, &rel, semantics, selection);
                prop_assert_eq!(
                    &original, &rewritten,
                    "semantics {:?} selection {:?} satisfiable {}",
                    semantics, selection, analysis.satisfiable
                );
                if !analysis.satisfiable {
                    prop_assert!(original.is_empty(), "unsat pattern matched");
                }
            }
        }
    }

    /// The `MatcherOptions::propagate_constants` switch (the `--propagate`
    /// CLI flag) routes compilation through the same rewrite; it must be
    /// just as invisible end to end.
    #[test]
    fn propagate_constants_option_matches_identically(
        rel in relation_strategy_with(2..8, 0..4),
        pat in analyzer_pattern_strategy(),
    ) {
        for semantics in MODES {
            let baseline = answer(&pat, &pat, &rel, semantics, EventSelection::SkipTillNextMatch);
            let m = Matcher::with_options(
                &pat,
                &schema(),
                MatcherOptions {
                    semantics,
                    propagate_constants: true,
                    ..MatcherOptions::default()
                },
            )
            .unwrap();
            let mut propagated: Vec<String> = m
                .find(&rel)
                .iter()
                .map(|m| m.display_with(&pat).to_string())
                .collect();
            propagated.sort();
            prop_assert_eq!(&baseline, &propagated, "semantics {:?}", semantics);
        }
    }
}
