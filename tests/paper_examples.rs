//! Golden tests pinning the paper's worked examples: Figure 1, Query Q1,
//! Examples 1–4, the Figure 5 automaton, and Figure 10's brute-force bank.

use ses::prelude::*;
use ses::workload::paper;

fn matcher_with(semantics: MatchSemantics) -> Matcher {
    Matcher::with_options(
        &paper::query_q1(),
        &paper::schema(),
        MatcherOptions {
            semantics,
            ..MatcherOptions::default()
        },
    )
    .expect("Q1 compiles")
}

/// Example 1: the intended results for Query Q1 are
/// `{e1, e3, e4, e9, e12}` for patient 1 and
/// `{e6, e7, e8, e10, e11, e13}` for patient 2.
#[test]
fn example1_intended_results() {
    let relation = paper::figure1();
    let q1 = paper::query_q1();
    let matches = matcher_with(MatchSemantics::Maximal).find(&relation);
    let rendered: Vec<String> = matches.iter().map(|m| m.display_with(&q1)).collect();
    assert_eq!(
        rendered,
        vec![
            "{c/e1, d/e3, p+/e4, p+/e9, b/e12}",
            "{p+/e6, d/e7, c/e8, p+/e10, p+/e11, b/e13}",
        ]
    );
}

/// The blood counts e2 and e5 are ignored: they occur during (not after)
/// the medication administrations.
#[test]
fn early_blood_counts_are_not_matched() {
    let relation = paper::figure1();
    for semantics in [
        MatchSemantics::AllRuns,
        MatchSemantics::Definition2,
        MatchSemantics::Maximal,
    ] {
        for m in matcher_with(semantics).find(&relation) {
            assert!(!m.events().any(|e| e == EventId(1) || e == EventId(4)));
        }
    }
}

/// Example 4's violating substitutions never surface:
/// `{…, b/e14}` (e14 instead of the earlier e13) violates condition 4,
/// `{…, p+/e10, b/e13}` without e11 violates maximality (condition 5).
#[test]
fn example4_violations_are_rejected() {
    let relation = paper::figure1();
    let q1 = paper::query_q1();
    for semantics in [MatchSemantics::Definition2, MatchSemantics::Maximal] {
        let rendered: Vec<String> = matcher_with(semantics)
            .find(&relation)
            .iter()
            .map(|m| m.display_with(&q1))
            .collect();
        assert!(
            rendered.iter().all(|s| !s.contains("b/e14")),
            "{rendered:?}"
        );
        assert!(
            !rendered.contains(&"{p+/e6, d/e7, c/e8, p+/e10, b/e13}".to_string()),
            "{rendered:?}"
        );
    }
}

/// Definition 2 read literally still admits the suffix run starting at
/// e7 (it has a different first binding, so condition 5's same-start
/// premise never fires); the paper's prose excludes it, which is what
/// `MatchSemantics::Maximal` implements. This pins the deviation
/// documented in DESIGN.md.
#[test]
fn definition2_admits_the_suffix_run() {
    let relation = paper::figure1();
    let q1 = paper::query_q1();
    let rendered: Vec<String> = matcher_with(MatchSemantics::Definition2)
        .find(&relation)
        .iter()
        .map(|m| m.display_with(&q1))
        .collect();
    assert_eq!(rendered.len(), 3);
    assert!(rendered.contains(&"{d/e7, c/e8, p+/e10, p+/e11, b/e13}".to_string()));
}

/// Example 9: window size W = 14 for the Figure 1 relation at τ = 264 h.
#[test]
fn example9_window_size() {
    assert_eq!(paper::figure1().window_size(Duration::hours(264)), 14);
}

/// Figure 5: the Q1 automaton has 9 states (∅, c, d, p, cd, cp, dp, cdp,
/// cdpb) and 17 transitions, 4 of which are p+ loops.
#[test]
fn figure5_automaton_shape() {
    let m = matcher_with(MatchSemantics::Maximal);
    let a = m.automaton();
    assert_eq!(a.num_states(), 9);
    assert_eq!(a.num_transitions(), 17);
    assert_eq!(a.transitions().iter().filter(|t| t.is_loop).count(), 4);
    assert_eq!(a.state_label(a.start()), "∅");
    assert_eq!(a.state_label(a.accept()), "cp+db");
}

/// Figure 3: the single-set pattern ⟨{b}⟩ compiles to the two-state
/// automaton with one transition.
#[test]
fn figure3_single_variable_automaton() {
    let p = Pattern::builder()
        .set(|s| s.var("b"))
        .cond_const("b", "L", CmpOp::Eq, "B")
        .within(Duration::hours(264))
        .build()
        .unwrap();
    let m = Matcher::compile(&p, &paper::schema()).unwrap();
    assert_eq!(m.automaton().num_states(), 2);
    assert_eq!(m.automaton().num_transitions(), 1);
}

/// Figure 10 / Example 11: the all-singleton variant of Q1 yields a
/// brute-force bank of 3!·1! = 6 chain automata, each with 5 states,
/// and the bank finds the same matches as the SES automaton.
#[test]
fn figure10_brute_force_bank() {
    let p = Pattern::builder()
        .set(|s| s.var("c").var("p").var("d"))
        .set(|s| s.var("b"))
        .cond_const("c", "L", CmpOp::Eq, "C")
        .cond_const("p", "L", CmpOp::Eq, "P")
        .cond_const("d", "L", CmpOp::Eq, "D")
        .cond_const("b", "L", CmpOp::Eq, "B")
        .cond_vars("c", "ID", CmpOp::Eq, "p", "ID")
        .cond_vars("c", "ID", CmpOp::Eq, "d", "ID")
        .cond_vars("p", "ID", CmpOp::Eq, "d", "ID")
        .cond_vars("d", "ID", CmpOp::Eq, "b", "ID")
        .within(Duration::hours(264))
        .build()
        .unwrap();
    let schema = paper::schema();
    let bank = BruteForce::compile(&p, &schema).unwrap();
    assert_eq!(bank.num_automata(), 6);
    for a in bank.automata() {
        assert_eq!(a.num_states(), 5);
    }
    let relation = paper::figure1();
    let mut bank_matches = bank.find(&relation);
    let mut ses_matches = Matcher::compile(&p, &schema).unwrap().find(&relation);
    bank_matches.sort();
    ses_matches.sort();
    assert_eq!(bank_matches, ses_matches);
}

/// The textual query language reproduces the same results.
#[test]
fn query_language_round_trip() {
    let text = "PATTERN PERMUTE(c, p+, d) THEN b \
                WHERE c.L = 'C' AND d.L = 'D' AND p.L = 'P' AND b.L = 'B' \
                  AND c.ID = p.ID AND c.ID = d.ID AND d.ID = b.ID \
                WITHIN 264 HOURS";
    let pattern = ses::query::parse_pattern(text, TickUnit::Hour).unwrap();
    let relation = paper::figure1();
    let matches = Matcher::compile(&pattern, relation.schema())
        .unwrap()
        .find(&relation);
    assert_eq!(matches.len(), 2);
}

/// Filtering (§4.5) never changes the query answer on the paper's data —
/// with or without the filter, across all semantics.
#[test]
fn filtering_is_transparent_on_figure1() {
    let relation = paper::figure1();
    let q1 = paper::query_q1();
    let baseline = matcher_with(MatchSemantics::Maximal).find(&relation);
    for filter in [FilterMode::Off, FilterMode::Paper, FilterMode::PerVariable] {
        let m = Matcher::with_options(
            &q1,
            &paper::schema(),
            MatcherOptions {
                filter,
                ..MatcherOptions::default()
            },
        )
        .unwrap();
        assert_eq!(m.find(&relation), baseline, "filter {filter:?}");
    }
}

/// Theorem-1 prediction holds on Figure 1: Q1's variables are pairwise
/// mutually exclusive, so |Ω| stays small (no factorial branching).
#[test]
fn theorem1_no_branching_on_q1() {
    let relation = paper::figure1();
    let mut probe = CountingProbe::new();
    matcher_with(MatchSemantics::Maximal).find_with_probe(&relation, &mut probe);
    assert_eq!(probe.instances_branched, 0, "Q1 is deterministic");
}
