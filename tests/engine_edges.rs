//! Boundary and stress conditions of the engine: the 64-variable limit,
//! zero and unbounded windows, massive timestamp ties, and instance caps.

use ses::prelude::*;

fn schema() -> Schema {
    Schema::builder()
        .attr("ID", AttrType::Int)
        .attr("L", AttrType::Str)
        .build()
        .unwrap()
}

#[test]
fn sixty_four_variables_compile_and_match() {
    // Exactly 64 variables exercises bit 63 of the state bitsets.
    let mut b = Pattern::builder();
    b = b.set(|s| {
        // 63 singleton variables in one set… would need 2^63 states; use
        // 63 sets of one variable plus one more — a chain exercises all
        // 64 bit positions with only 65 states.
        s.var("v0")
    });
    for i in 1..64 {
        b = b.set(move |s| s.var(format!("v{i}")));
    }
    for i in 0..64 {
        b = b.cond_const(format!("v{i}"), "L", CmpOp::Eq, format!("T{i}"));
    }
    let p = b.within(Duration::ticks(1000)).build().unwrap();
    assert_eq!(p.num_vars(), 64);

    let m = Matcher::compile(&p, &schema()).unwrap();
    assert_eq!(m.automaton().num_states(), 65);

    let mut rel = Relation::new(schema());
    for i in 0..64i64 {
        rel.push_values(
            Timestamp::new(i),
            [Value::from(1), Value::from(format!("T{i}"))],
        )
        .unwrap();
    }
    let matches = m.find(&rel);
    assert_eq!(matches.len(), 1);
    assert_eq!(matches[0].len(), 64);

    // 65 variables must be rejected at build time.
    let mut b = Pattern::builder();
    for i in 0..65 {
        b = b.set(move |s| s.var(format!("w{i}")));
    }
    assert!(b.build().is_err());
}

#[test]
fn zero_window_requires_simultaneity_minus_order() {
    // τ = 0: all events must share one timestamp — but cross-set order is
    // strict, so multi-set patterns can never match…
    let two_sets = Pattern::builder()
        .set(|s| s.var("a"))
        .set(|s| s.var("b"))
        .cond_const("a", "L", CmpOp::Eq, "A")
        .cond_const("b", "L", CmpOp::Eq, "B")
        .within(Duration::ZERO)
        .build()
        .unwrap();
    let mut rel = Relation::new(schema());
    rel.push_values(Timestamp::new(5), [Value::from(1), Value::from("A")])
        .unwrap();
    rel.push_values(Timestamp::new(5), [Value::from(1), Value::from("B")])
        .unwrap();
    let m = Matcher::compile(&two_sets, &schema()).unwrap();
    assert!(
        m.find(&rel).is_empty(),
        "strict inter-set order forbids ties"
    );

    // …while a single-set pattern matches simultaneous events.
    let one_set = Pattern::builder()
        .set(|s| s.var("a").var("b"))
        .cond_const("a", "L", CmpOp::Eq, "A")
        .cond_const("b", "L", CmpOp::Eq, "B")
        .within(Duration::ZERO)
        .build()
        .unwrap();
    let m = Matcher::compile(&one_set, &schema()).unwrap();
    assert_eq!(m.find(&rel).len(), 1);
}

#[test]
fn unbounded_window_never_expires() {
    let p = Pattern::builder()
        .set(|s| s.var("a"))
        .set(|s| s.var("b"))
        .cond_const("a", "L", CmpOp::Eq, "A")
        .cond_const("b", "L", CmpOp::Eq, "B")
        .build() // no .within → Duration::MAX
        .unwrap();
    let mut rel = Relation::new(schema());
    rel.push_values(
        Timestamp::new(i64::MIN / 4),
        [Value::from(1), Value::from("A")],
    )
    .unwrap();
    rel.push_values(
        Timestamp::new(i64::MAX / 4),
        [Value::from(1), Value::from("B")],
    )
    .unwrap();
    let m = Matcher::compile(&p, &schema()).unwrap();
    assert_eq!(m.find(&rel).len(), 1, "half-range span stays within MAX");
}

#[test]
fn heavy_timestamp_ties_are_consistent() {
    // D5-style duplication: five copies of every event at identical
    // timestamps. Matching must stay well-defined and every match valid.
    let base = ses::workload::paper::figure1();
    let d5 = base.duplicate(5);
    let q1 = ses::workload::paper::query_q1();
    let compiled = q1.compile(base.schema()).unwrap();
    let matches = Matcher::compile(&q1, base.schema()).unwrap().find(&d5);
    assert!(!matches.is_empty());
    for m in &matches {
        assert!(ses::core::satisfies_conditions_1_3(
            &compiled,
            &d5,
            m.bindings()
        ));
    }
}

#[test]
fn max_instances_guard_via_matcher() {
    let p = Pattern::builder()
        .set(|s| s.var("x").var("y").var("z"))
        .cond_const("x", "L", CmpOp::Eq, "M")
        .cond_const("y", "L", CmpOp::Eq, "M")
        .cond_const("z", "L", CmpOp::Eq, "M")
        .within(Duration::ticks(1000))
        .build()
        .unwrap();
    let m = Matcher::with_options(
        &p,
        &schema(),
        MatcherOptions {
            max_instances: Some(4),
            ..MatcherOptions::default()
        },
    )
    .unwrap();
    let mut rel = Relation::new(schema());
    for i in 0..20i64 {
        rel.push_values(Timestamp::new(i), [Value::from(1), Value::from("M")])
            .unwrap();
    }
    let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| m.find(&rel)));
    assert!(res.is_err(), "the guard must trip in the factorial regime");
}

#[test]
fn state_budget_guard_via_matcher() {
    let mut b = Pattern::builder();
    b = b.set(|s| {
        for i in 0..22 {
            s.var(format!("v{i}"));
        }
        s
    });
    let p = b.build().unwrap();
    let err = Matcher::with_options(
        &p,
        &schema(),
        MatcherOptions {
            max_states: 1 << 16,
            ..MatcherOptions::default()
        },
    )
    .unwrap_err();
    assert!(err.to_string().contains("states"), "{err}");
}
