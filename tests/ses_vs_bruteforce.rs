//! Property tests: the SES automaton and the brute-force permutation bank
//! compute identical query answers on singleton patterns with distinct
//! timestamps — plus targeted tests for the two documented divergences
//! (timestamp ties, group variables).

use proptest::prelude::*;

use ses::prelude::*;

fn schema() -> Schema {
    Schema::builder()
        .attr("ID", AttrType::Int)
        .attr("L", AttrType::Str)
        .build()
        .unwrap()
}

const TYPES: [&str; 4] = ["A", "B", "C", "X"];

/// A random relation with strictly increasing timestamps.
fn relation_strategy() -> impl Strategy<Value = Relation> {
    (
        proptest::collection::vec((0u8..4, 1i64..3), 3..12),
        proptest::collection::vec(1i64..4, 3..12),
    )
        .prop_map(|(rows, gaps)| {
            let mut rel = Relation::new(schema());
            let mut t = 0i64;
            for ((ty, id), gap) in rows.into_iter().zip(gaps) {
                t += gap; // strictly increasing
                rel.push_values(
                    Timestamp::new(t),
                    [Value::from(id), Value::from(TYPES[ty as usize])],
                )
                .unwrap();
            }
            rel
        })
}

/// A random singleton-only pattern: 1–2 sets with 1–3 variables, each
/// constrained to a (possibly shared ⇒ nondeterministic) type.
fn pattern_strategy() -> impl Strategy<Value = Pattern> {
    (
        proptest::collection::vec(proptest::collection::vec(0u8..3, 1..4), 1..3),
        5i64..40,
        proptest::bool::ANY, // add an ID-correlation clique?
    )
        .prop_map(|(sets, within, correlate)| {
            let mut b = Pattern::builder();
            let mut names: Vec<Vec<String>> = Vec::new();
            for (si, set) in sets.iter().enumerate() {
                let set_names: Vec<String> =
                    (0..set.len()).map(|vi| format!("v{si}_{vi}")).collect();
                names.push(set_names.clone());
                b = b.set(move |s| {
                    for n in &set_names {
                        s.var(n.clone());
                    }
                    s
                });
            }
            for (si, set) in sets.iter().enumerate() {
                for (vi, ty) in set.iter().enumerate() {
                    b = b.cond_const(format!("v{si}_{vi}"), "L", CmpOp::Eq, TYPES[*ty as usize]);
                }
            }
            if correlate {
                // Clique over all variables: same ID everywhere.
                let flat: Vec<String> = names.iter().flatten().cloned().collect();
                for i in 1..flat.len() {
                    for j in 0..i {
                        b = b.cond_vars(flat[j].clone(), "ID", CmpOp::Eq, flat[i].clone(), "ID");
                    }
                }
            }
            b.within(Duration::ticks(within)).build().unwrap()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// The headline equivalence: for singleton patterns over relations
    /// with distinct timestamps, the brute-force bank and the SES
    /// automaton return the same *query answers* (Definition 2 and
    /// Maximal semantics).
    ///
    /// Under `AllRuns` the relation is containment, not equality: the SES
    /// automaton consumes greedily (Algorithm 2 drops the source instance
    /// whenever any transition fires), so a run that needed to *skip* an
    /// event claimed by a sibling transition only survives in the chain
    /// bank, where each order skips independently. Those extra runs bind
    /// later-than-necessary events and are precisely what condition 4
    /// rejects — hence equality after the Definition-2 filter.
    #[test]
    fn bank_equals_ses(rel in relation_strategy(), pat in pattern_strategy()) {
        let schema = schema();
        for semantics in [MatchSemantics::Definition2, MatchSemantics::Maximal] {
            let opts = MatcherOptions { semantics, ..MatcherOptions::default() };
            let ses = Matcher::with_options(&pat, &schema, opts.clone()).unwrap();
            let bank = BruteForce::with_options(&pat, &schema, opts).unwrap();
            let mut a = ses.find(&rel);
            let mut b = bank.find(&rel);
            a.sort();
            b.sort();
            prop_assert_eq!(a, b, "semantics {:?}", semantics);
        }
        // AllRuns: SES ⊆ BF.
        let opts = MatcherOptions { semantics: MatchSemantics::AllRuns, ..MatcherOptions::default() };
        let ses = Matcher::with_options(&pat, &schema, opts.clone()).unwrap().find(&rel);
        let bank = BruteForce::with_options(&pat, &schema, opts).unwrap().find(&rel);
        for m in &ses {
            prop_assert!(bank.contains(m), "SES run {} missing from the bank", m);
        }
    }

    /// Filtering never changes the answer (the paper's §4.5 claim).
    #[test]
    fn filtering_is_transparent(rel in relation_strategy(), pat in pattern_strategy()) {
        let schema = schema();
        let reference = Matcher::with_options(
            &pat,
            &schema,
            MatcherOptions { filter: FilterMode::Off, ..MatcherOptions::default() },
        )
        .unwrap()
        .find(&rel);
        for filter in [FilterMode::Paper, FilterMode::PerVariable] {
            let m = Matcher::with_options(
                &pat,
                &schema,
                MatcherOptions { filter, ..MatcherOptions::default() },
            )
            .unwrap();
            prop_assert_eq!(m.find(&rel), reference.clone(), "filter {:?}", filter);
        }
    }

    /// Every match satisfies conditions 1–3 (checked by the independent
    /// reference validator) regardless of semantics.
    #[test]
    fn matches_satisfy_conditions_1_3(rel in relation_strategy(), pat in pattern_strategy()) {
        let schema = schema();
        let compiled = pat.compile(&schema).unwrap();
        for semantics in [MatchSemantics::AllRuns, MatchSemantics::Maximal] {
            let m = Matcher::with_options(
                &pat,
                &schema,
                MatcherOptions { semantics, ..MatcherOptions::default() },
            )
            .unwrap();
            for mat in m.find(&rel) {
                prop_assert!(
                    ses::core::satisfies_conditions_1_3(&compiled, &rel, mat.bindings()),
                    "{} violates conditions 1-3",
                    mat
                );
            }
        }
    }
}

/// Documented divergence 1: with *tied* timestamps inside one set, the
/// SES automaton matches (no intra-set order) but the brute-force chains
/// cannot (every chain boundary demands strict order).
#[test]
fn tie_divergence() {
    let schema = schema();
    let pat = Pattern::builder()
        .set(|s| s.var("a").var("b"))
        .cond_const("a", "L", CmpOp::Eq, "A")
        .cond_const("b", "L", CmpOp::Eq, "B")
        .within(Duration::ticks(10))
        .build()
        .unwrap();
    let mut rel = Relation::new(schema.clone());
    rel.push_values(Timestamp::new(5), [Value::from(1), Value::from("A")])
        .unwrap();
    rel.push_values(Timestamp::new(5), [Value::from(1), Value::from("B")])
        .unwrap();

    let ses = Matcher::compile(&pat, &schema).unwrap().find(&rel);
    assert_eq!(ses.len(), 1, "SES matches the tied pair");
    let bank = BruteForce::compile(&pat, &schema).unwrap().find(&rel);
    assert!(bank.is_empty(), "chains require strict order at boundaries");
}

/// Documented divergence 2: group-variable bindings interleaved with
/// other set variables are found by the SES automaton but not by any
/// chain (the paper's DejaVu/SASE+ critique).
#[test]
fn group_interleaving_divergence() {
    let schema = schema();
    let pat = Pattern::builder()
        .set(|s| s.var("c").plus("p"))
        .set(|s| s.var("b"))
        .cond_const("c", "L", CmpOp::Eq, "C")
        .cond_const("p", "L", CmpOp::Eq, "A")
        .cond_const("b", "L", CmpOp::Eq, "B")
        .within(Duration::ticks(100))
        .build()
        .unwrap();
    // p c p b — the p's straddle c.
    let mut rel = Relation::new(schema.clone());
    for (t, l) in [(0, "A"), (1, "C"), (2, "A"), (3, "B")] {
        rel.push_values(Timestamp::new(t), [Value::from(1), Value::from(l)])
            .unwrap();
    }
    let ses_full = Matcher::compile(&pat, &schema)
        .unwrap()
        .find(&rel)
        .iter()
        .map(Match::len)
        .max()
        .unwrap();
    assert_eq!(ses_full, 4, "SES binds both p's plus c and b");
    let bank = BruteForce::compile(&pat, &schema).unwrap();
    assert!(!bank.is_exact());
    let bank_best = bank.find(&rel).iter().map(Match::len).max().unwrap();
    assert!(bank_best < 4, "no chain can interleave the p's around c");
}
