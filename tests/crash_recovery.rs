//! Crash-injection differential suite for the durability subsystem.
//!
//! Protocol under test (the one `ses-cli stream --checkpoint` /
//! `recover` implement): while streaming, the durable match sink is
//! synced and then a snapshot is checkpointed every N events; after a
//! crash, recovery restores the newest valid checkpoint, replays the
//! event-log suffix from the snapshot's replay timestamp (skipping the
//! already-consumed ties at that timestamp), and suppresses the first
//! `sink_lines − snapshot.emitted()` re-emitted matches. The suite
//! kills the run after *every* prefix length and asserts the recovered
//! match stream equals the uninterrupted run line for line — no loss,
//! no duplicates — for both matcher flavors, every semantics mode, and
//! both selection strategies.
//!
//! The deterministic tests drive real `CheckpointStore`/`MatchLog`
//! files (atomicity, pruning, corrupted-checkpoint fallback, torn
//! sinks); the property tests round-trip every snapshot through the
//! binary codec in memory so thousands of (pattern, relation, kill
//! point) combinations stay fast.

mod common;

use proptest::prelude::*;

use common::{pattern_strategy, relation_strategy_with, schema};
use ses::prelude::*;
use ses::store::{decode_snapshot, encode_snapshot};

const MODES: [MatchSemantics; 3] = [
    MatchSemantics::Maximal,
    MatchSemantics::Definition2,
    MatchSemantics::AllRuns,
];

const SELECTIONS: [EventSelection; 2] = [
    EventSelection::SkipTillNextMatch,
    EventSelection::SkipTillAnyMatch,
];

fn options(semantics: MatchSemantics, selection: EventSelection) -> MatcherOptions {
    MatcherOptions {
        semantics,
        selection,
        ..MatcherOptions::default()
    }
}

/// Either stream-matcher flavor behind the push/snapshot/finish surface
/// the recovery protocol needs. Boxed: the global matcher is much
/// larger than the sharded handle.
enum AnyStream {
    Global(Box<StreamMatcher>),
    Sharded(ShardedStreamMatcher),
}

/// Sharded construction refuses `PartitionMode::Off`; the sharded legs
/// run under `Auto` (key proven by the analyzer or the case is skipped).
fn sharded_opts(opts: &MatcherOptions) -> MatcherOptions {
    MatcherOptions {
        partition: PartitionMode::Auto,
        ..opts.clone()
    }
}

impl AnyStream {
    fn build(
        pat: &Pattern,
        opts: &MatcherOptions,
        evict: bool,
        shards: Option<usize>,
    ) -> Result<AnyStream, ses::core::CoreError> {
        Ok(match shards {
            None => AnyStream::Global(Box::new(
                StreamMatcher::with_options(pat, &schema(), opts.clone())?.with_eviction(evict),
            )),
            Some(n) => AnyStream::Sharded(
                ShardedStreamMatcher::with_options(pat, &schema(), sharded_opts(opts), n)?
                    .with_eviction(evict),
            ),
        })
    }

    fn restore(
        pat: &Pattern,
        opts: &MatcherOptions,
        snap: &MatcherSnapshot,
    ) -> Result<AnyStream, ses::core::CoreError> {
        Ok(match snap {
            MatcherSnapshot::Stream(s) => AnyStream::Global(Box::new(StreamMatcher::restore(
                pat,
                &schema(),
                opts.clone(),
                s,
            )?)),
            MatcherSnapshot::Sharded(s) => AnyStream::Sharded(ShardedStreamMatcher::restore(
                pat,
                &schema(),
                sharded_opts(opts),
                s,
            )?),
            MatcherSnapshot::Bank(_) => {
                unreachable!("this harness checkpoints single-pattern matchers only")
            }
        })
    }

    fn push(&mut self, e: &Event) -> Vec<Match> {
        match self {
            AnyStream::Global(sm) => sm.push(e.ts(), e.values().to_vec()).unwrap(),
            AnyStream::Sharded(sm) => sm.push(e.ts(), e.values().to_vec()).unwrap(),
        }
    }

    fn snapshot(&mut self) -> MatcherSnapshot {
        match self {
            AnyStream::Global(sm) => MatcherSnapshot::Stream(sm.snapshot()),
            AnyStream::Sharded(sm) => MatcherSnapshot::Sharded(sm.snapshot()),
        }
    }

    fn ties_at_watermark(&self) -> usize {
        match self {
            AnyStream::Global(sm) => sm.ties_at_watermark(),
            AnyStream::Sharded(sm) => sm.ties_at_watermark(),
        }
    }

    fn finish(self) -> Vec<Match> {
        match self {
            AnyStream::Global(sm) => sm.finish(),
            AnyStream::Sharded(sm) => sm.finish(),
        }
    }
}

/// The uninterrupted reference: every match line the stream emits, in
/// emission order (pushes, then the finish flush).
fn uninterrupted(
    pat: &Pattern,
    rel: &Relation,
    opts: &MatcherOptions,
    evict: bool,
    shards: Option<usize>,
) -> Vec<String> {
    let mut sm = AnyStream::build(pat, opts, evict, shards).unwrap();
    let mut lines = Vec::new();
    for (_, e) in rel.iter() {
        for m in sm.push(e) {
            lines.push(m.display_with(pat).to_string());
        }
    }
    for m in sm.finish() {
        lines.push(m.display_with(pat).to_string());
    }
    lines
}

/// Runs the crash/recover protocol entirely in memory, round-tripping
/// each checkpoint through the binary codec: pushes `kill_after`
/// events with a checkpoint every `every`, "crashes", restores the
/// latest checkpoint (if any), replays the suffix with tie skipping
/// and exactly-once suppression, and returns the durable sink.
///
/// `durable_tail` controls how many post-checkpoint sink lines survive
/// the crash: `true` keeps them all (sink flushed right before the
/// kill), `false` drops back to the checkpoint's high-water mark (the
/// worst legal loss, since the sink is synced before every save).
/// Suppression must produce the identical stream either way.
#[allow(clippy::too_many_arguments)]
fn crash_and_recover(
    pat: &Pattern,
    rel: &Relation,
    opts: &MatcherOptions,
    evict: bool,
    shards: Option<usize>,
    kill_after: usize,
    every: usize,
    durable_tail: bool,
) -> Vec<String> {
    let events: Vec<Event> = rel.iter().map(|(_, e)| e.clone()).collect();

    // Phase 1: the run that dies after `kill_after` pushes.
    let mut sm = AnyStream::build(pat, opts, evict, shards).unwrap();
    let mut sink: Vec<String> = Vec::new();
    let mut ckpt: Option<(Vec<u8>, u64)> = None; // (encoded snapshot, sink lines at save)
    let mut since = 0usize;
    for e in &events[..kill_after] {
        for m in sm.push(e) {
            sink.push(m.display_with(pat).to_string());
        }
        since += 1;
        if since >= every {
            since = 0;
            // Sink syncs before the snapshot is saved — the invariant
            // suppression relies on.
            ckpt = Some((encode_snapshot(&sm.snapshot()), sink.len() as u64));
        }
    }
    drop(sm); // the crash

    if !durable_tail {
        let durable = ckpt.as_ref().map_or(0, |(_, lines)| *lines) as usize;
        sink.truncate(durable);
    }

    // Phase 2: recovery.
    let (mut sm, replay, skip, emitted_at_ckpt) = match &ckpt {
        Some((bytes, _)) => {
            let snap = decode_snapshot(bytes).expect("checkpoint round-trips");
            let sm = AnyStream::restore(pat, opts, &snap).unwrap();
            // The event-log replay: everything at or after the snapshot's
            // replay timestamp, in append order (`scan_range(from, MAX)`).
            let replay: Vec<Event> = match snap.replay_from() {
                Some(from) => events.iter().filter(|e| e.ts() >= from).cloned().collect(),
                None => events.clone(),
            };
            let skip = sm.ties_at_watermark();
            (sm, replay, skip, snap.emitted())
        }
        None => {
            // Killed before the first checkpoint: cold-start over the
            // whole log.
            let sm = AnyStream::build(pat, opts, evict, shards).unwrap();
            (sm, events.clone(), 0, 0)
        }
    };

    let mut suppress = (sink.len() as u64).saturating_sub(emitted_at_ckpt);
    let mut emit = |m: &Match, sink: &mut Vec<String>| {
        if suppress > 0 {
            suppress -= 1;
        } else {
            sink.push(m.display_with(pat).to_string());
        }
    };
    for e in replay.iter().skip(skip) {
        for m in sm.push(e) {
            emit(&m, &mut sink);
        }
    }
    for m in sm.finish() {
        emit(&m, &mut sink);
    }
    sink
}

/// Every kill point, every cadence, both tail-durability outcomes:
/// recovery reproduces the uninterrupted stream exactly.
fn assert_exactly_once(
    pat: &Pattern,
    rel: &Relation,
    opts: &MatcherOptions,
    shards: Option<usize>,
) {
    for evict in [true, false] {
        let reference = uninterrupted(pat, rel, opts, evict, shards);
        for every in [1, 2, 4] {
            for kill_after in 0..=rel.len() {
                for durable_tail in [true, false] {
                    let recovered = crash_and_recover(
                        pat,
                        rel,
                        opts,
                        evict,
                        shards,
                        kill_after,
                        every,
                        durable_tail,
                    );
                    assert_eq!(
                        recovered, reference,
                        "divergence: evict={evict} every={every} \
                         kill_after={kill_after} durable_tail={durable_tail} \
                         shards={shards:?}"
                    );
                }
            }
        }
    }
}

/// A correlated two-set pattern over the shared test schema whose `ID`
/// equality clique makes `ID` a provable partition key, so the same
/// pattern exercises both matcher flavors.
fn correlated_pattern() -> Pattern {
    Pattern::builder()
        .set(|s| {
            s.var("a");
            s.var("b")
        })
        .set(|s| s.var("c"))
        .cond_const("a", "L", CmpOp::Eq, "A")
        .cond_const("b", "L", CmpOp::Eq, "B")
        .cond_const("c", "L", CmpOp::Eq, "A")
        .cond_vars("a", "ID", CmpOp::Eq, "b", "ID")
        .cond_vars("a", "ID", CmpOp::Eq, "c", "ID")
        .cond_vars("b", "ID", CmpOp::Eq, "c", "ID")
        .within(Duration::ticks(8))
        .build()
        .unwrap()
}

/// A dense relation with timestamp ties (the watermark's hardest case):
/// ties at the replay point are exactly what `ties_at_watermark` skips.
fn tie_heavy_relation() -> Relation {
    let mut rel = Relation::new(schema());
    let rows: &[(i64, &str, i64)] = &[
        (0, "A", 1),
        (0, "B", 1),
        (1, "X", 2),
        (1, "A", 2),
        (1, "B", 2),
        (3, "A", 1),
        (3, "A", 2),
        (4, "B", 1),
        (4, "X", 1),
        (6, "A", 1),
        (6, "A", 1),
        (7, "B", 2),
        (9, "A", 2),
    ];
    for (t, l, id) in rows {
        rel.push_values(Timestamp::new(*t), [Value::from(*l), Value::from(*id)])
            .unwrap();
    }
    rel
}

#[test]
fn every_kill_point_recovers_exactly_once_global() {
    let pat = correlated_pattern();
    let rel = tie_heavy_relation();
    for semantics in MODES {
        for selection in SELECTIONS {
            assert_exactly_once(&pat, &rel, &options(semantics, selection), None);
        }
    }
}

#[test]
fn every_kill_point_recovers_exactly_once_sharded() {
    let pat = correlated_pattern();
    let rel = tie_heavy_relation();
    for semantics in MODES {
        for shards in [1, 2, 3] {
            assert_exactly_once(
                &pat,
                &rel,
                &options(semantics, EventSelection::SkipTillNextMatch),
                Some(shards),
            );
        }
    }
}

/// Full on-disk protocol against real `CheckpointStore` + `MatchLog`
/// files, including pruning: kill after every prefix, recover from the
/// files alone, compare with the uninterrupted run.
#[test]
fn on_disk_checkpoints_recover_every_kill_point() {
    let pat = correlated_pattern();
    let rel = tie_heavy_relation();
    let opts = options(MatchSemantics::Maximal, EventSelection::SkipTillNextMatch);
    let reference = uninterrupted(&pat, &rel, &opts, true, None);
    let events: Vec<Event> = rel.iter().map(|(_, e)| e.clone()).collect();

    let base = std::env::temp_dir().join(format!(
        "ses-crash-disk-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    for kill_after in 0..=events.len() {
        let dir = base.join(format!("k{kill_after}"));
        std::fs::remove_dir_all(&dir).ok();

        // The crashing run.
        {
            let mut store = CheckpointStore::open(&dir, 2).unwrap();
            let mut sink = MatchLog::open(dir.join("matches.log")).unwrap();
            let mut sm = StreamMatcher::with_options(&pat, &schema(), opts.clone())
                .unwrap()
                .with_eviction(true);
            for (i, e) in events[..kill_after].iter().enumerate() {
                for m in sm.push(e.ts(), e.values().to_vec()).unwrap() {
                    sink.append(&m.display_with(&pat).to_string()).unwrap();
                }
                if (i + 1) % 3 == 0 {
                    sink.sync().unwrap();
                    store.save(&MatcherSnapshot::Stream(sm.snapshot())).unwrap();
                }
            }
            sink.sync().unwrap();
            // Crash: both handles drop here.
        }

        // Recovery from the files alone.
        let store = CheckpointStore::open(&dir, 2).unwrap();
        let mut sink = MatchLog::open(dir.join("matches.log")).unwrap();
        let (mut sm, replay, skip, emitted_at_ckpt) = match store.load_latest().unwrap() {
            Some(l) => {
                let MatcherSnapshot::Stream(ref s) = l.snapshot else {
                    panic!("global snapshot expected");
                };
                let sm = StreamMatcher::restore(&pat, &schema(), opts.clone(), s).unwrap();
                let replay: Vec<Event> = match l.snapshot.replay_from() {
                    Some(from) => events.iter().filter(|e| e.ts() >= from).cloned().collect(),
                    None => events.clone(),
                };
                let skip = sm.ties_at_watermark();
                (sm, replay, skip, l.snapshot.emitted())
            }
            None => {
                let sm = StreamMatcher::with_options(&pat, &schema(), opts.clone())
                    .unwrap()
                    .with_eviction(true);
                (sm, events.clone(), 0, 0)
            }
        };
        let mut suppress = sink.lines().saturating_sub(emitted_at_ckpt);
        for e in replay.iter().skip(skip) {
            for m in sm.push(e.ts(), e.values().to_vec()).unwrap() {
                if suppress > 0 {
                    suppress -= 1;
                } else {
                    sink.append(&m.display_with(&pat).to_string()).unwrap();
                }
            }
        }
        for m in sm.finish() {
            if suppress > 0 {
                suppress -= 1;
            } else {
                sink.append(&m.display_with(&pat).to_string()).unwrap();
            }
        }
        sink.sync().unwrap();

        let text = std::fs::read_to_string(dir.join("matches.log")).unwrap();
        let lines: Vec<String> = text.lines().map(str::to_string).collect();
        assert_eq!(lines, reference, "kill_after={kill_after}");
        std::fs::remove_dir_all(&dir).ok();
    }
    std::fs::remove_dir_all(&base).ok();
}

/// A corrupted newest checkpoint is skipped; recovery falls back to the
/// previous valid one and replay covers the gap — still exactly-once.
#[test]
fn corrupted_checkpoint_falls_back_and_replays_the_gap() {
    let pat = correlated_pattern();
    let rel = tie_heavy_relation();
    let opts = options(MatchSemantics::Maximal, EventSelection::SkipTillNextMatch);
    let reference = uninterrupted(&pat, &rel, &opts, true, None);
    let events: Vec<Event> = rel.iter().map(|(_, e)| e.clone()).collect();

    let dir = std::env::temp_dir().join(format!(
        "ses-crash-corrupt-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::remove_dir_all(&dir).ok();

    let mut store = CheckpointStore::open(&dir, 4).unwrap();
    let mut sink = MatchLog::open(dir.join("matches.log")).unwrap();
    let mut sm = StreamMatcher::with_options(&pat, &schema(), opts.clone())
        .unwrap()
        .with_eviction(true);
    for (i, e) in events.iter().enumerate() {
        for m in sm.push(e.ts(), e.values().to_vec()).unwrap() {
            sink.append(&m.display_with(&pat).to_string()).unwrap();
        }
        if (i + 1) % 4 == 0 {
            sink.sync().unwrap();
            store.save(&MatcherSnapshot::Stream(sm.snapshot())).unwrap();
        }
    }
    sink.sync().unwrap();
    drop(sm); // crash mid-run, after the last checkpoint

    // Flip a payload byte in the newest checkpoint file.
    let infos = store.list().unwrap();
    assert!(infos.len() >= 2, "need a fallback checkpoint");
    let newest = infos.last().unwrap();
    let path = dir.join(format!("ckpt-{:010}.sesckpt", newest.seq));
    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() - 1;
    bytes[mid] ^= 0xff;
    std::fs::write(&path, &bytes).unwrap();

    let loaded = store.load_latest().unwrap().expect("fallback exists");
    assert_eq!(loaded.skipped, 1, "exactly the corrupt one skipped");
    assert!(loaded.info.seq < newest.seq);

    let MatcherSnapshot::Stream(ref s) = loaded.snapshot else {
        panic!("global snapshot expected");
    };
    let mut sm = StreamMatcher::restore(&pat, &schema(), opts, s).unwrap();
    let replay: Vec<Event> = match loaded.snapshot.replay_from() {
        Some(from) => events.iter().filter(|e| e.ts() >= from).cloned().collect(),
        None => events.clone(),
    };
    let mut sink = MatchLog::open(dir.join("matches.log")).unwrap();
    let mut suppress = sink.lines().saturating_sub(loaded.snapshot.emitted());
    for e in replay.iter().skip(sm.ties_at_watermark()) {
        for m in sm.push(e.ts(), e.values().to_vec()).unwrap() {
            if suppress > 0 {
                suppress -= 1;
            } else {
                sink.append(&m.display_with(&pat).to_string()).unwrap();
            }
        }
    }
    for m in sm.finish() {
        if suppress > 0 {
            suppress -= 1;
        } else {
            sink.append(&m.display_with(&pat).to_string()).unwrap();
        }
    }
    sink.sync().unwrap();

    let text = std::fs::read_to_string(dir.join("matches.log")).unwrap();
    let lines: Vec<String> = text.lines().map(str::to_string).collect();
    assert_eq!(lines, reference);
    std::fs::remove_dir_all(&dir).ok();
}

/// A 3-pattern bank under the kill-point protocol: the whole bank is
/// checkpointed through the binary codec, the run dies after every
/// prefix, and recovery (restore + tie-skipping replay + suppression)
/// must reproduce the uninterrupted run's durable sink line for line —
/// exactly-once **per pattern**, including the pattern the predicate
/// index never routes an event to (heartbeats only).
#[test]
fn bank_kill_points_recover_exactly_once_per_pattern() {
    let opts = options(MatchSemantics::Maximal, EventSelection::SkipTillNextMatch);
    let x_only = Pattern::builder()
        .set(|s| s.var("x"))
        .cond_const("x", "L", CmpOp::Eq, "X")
        .within(Duration::ticks(3))
        .build()
        .unwrap();
    // `ID = 9` never occurs in the relation: this pattern lives on
    // watermark heartbeats alone, the recovery-sensitive skip path.
    let never = Pattern::builder()
        .set(|s| s.var("n"))
        .cond_const("n", "L", CmpOp::Eq, "A")
        .cond_const("n", "ID", CmpOp::Eq, 9)
        .within(Duration::ticks(3))
        .build()
        .unwrap();
    let specs: Vec<(String, Pattern, MatcherOptions)> = vec![
        ("clique".into(), correlated_pattern(), opts.clone()),
        ("x-only".into(), x_only, opts.clone()),
        ("never".into(), never, opts.clone()),
    ];
    let rel = tie_heavy_relation();
    let events: Vec<Event> = rel.iter().map(|(_, e)| e.clone()).collect();

    let build = || {
        let mut b = PatternBank::builder(&schema());
        for (name, pat, o) in &specs {
            b = b.register(name.clone(), pat, o.clone()).unwrap();
        }
        b.build()
    };
    let line = |i: usize, m: &Match| format!("{}: {}", specs[i].0, m.display_with(&specs[i].1));

    // The uninterrupted reference sink.
    let reference: Vec<String> = {
        let mut bank = build();
        let mut lines = Vec::new();
        for e in &events {
            for (i, m) in bank.push(e.ts(), e.values().to_vec()).unwrap() {
                lines.push(line(i, &m));
            }
        }
        for (i, m) in bank.finish() {
            lines.push(line(i, &m));
        }
        lines
    };
    assert!(
        reference.iter().any(|l| l.starts_with("clique:"))
            && reference.iter().any(|l| l.starts_with("x-only:")),
        "the workload must exercise at least two patterns: {reference:?}"
    );

    for kill_after in 0..=events.len() {
        for durable_tail in [true, false] {
            // Phase 1: the run that dies after `kill_after` pushes,
            // checkpointing every 2 events.
            let mut bank = build();
            let mut sink: Vec<String> = Vec::new();
            let mut ckpt: Option<(Vec<u8>, u64)> = None;
            for (n, e) in events[..kill_after].iter().enumerate() {
                for (i, m) in bank.push(e.ts(), e.values().to_vec()).unwrap() {
                    sink.push(line(i, &m));
                }
                if (n + 1) % 2 == 0 {
                    let bytes = encode_snapshot(&MatcherSnapshot::Bank(bank.snapshot()));
                    ckpt = Some((bytes, sink.len() as u64));
                }
            }
            drop(bank); // the crash
            if !durable_tail {
                let durable = ckpt.as_ref().map_or(0, |(_, lines)| *lines) as usize;
                sink.truncate(durable);
            }

            // Phase 2: recovery.
            let (mut bank, replay, skip, emitted_at_ckpt) = match &ckpt {
                Some((bytes, _)) => {
                    let snap = decode_snapshot(bytes).expect("checkpoint round-trips");
                    let MatcherSnapshot::Bank(ref s) = snap else {
                        panic!("bank snapshot expected");
                    };
                    let bank = PatternBank::restore(&specs, &schema(), s).unwrap();
                    let replay: Vec<Event> = match snap.replay_from() {
                        Some(from) => events.iter().filter(|e| e.ts() >= from).cloned().collect(),
                        None => events.clone(),
                    };
                    let skip = bank.ties_at_watermark();
                    (bank, replay, skip, snap.emitted())
                }
                None => (build(), events.clone(), 0, 0),
            };
            let mut suppress = (sink.len() as u64).saturating_sub(emitted_at_ckpt);
            let mut emit = |i: usize, m: &Match, sink: &mut Vec<String>| {
                if suppress > 0 {
                    suppress -= 1;
                } else {
                    sink.push(line(i, m));
                }
            };
            for e in replay.iter().skip(skip) {
                for (i, m) in bank.push(e.ts(), e.values().to_vec()).unwrap() {
                    emit(i, &m, &mut sink);
                }
            }
            for (i, m) in bank.finish() {
                emit(i, &m, &mut sink);
            }

            assert_eq!(
                sink, reference,
                "divergence: kill_after={kill_after} durable_tail={durable_tail}"
            );
            // Exactly-once per pattern, explicitly.
            for (name, _, _) in &specs {
                let per = |lines: &[String]| {
                    lines
                        .iter()
                        .filter(|l| l.starts_with(&format!("{name}:")))
                        .cloned()
                        .collect::<Vec<_>>()
                };
                assert_eq!(per(&sink), per(&reference), "pattern `{name}` diverged");
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Generated patterns × tie-heavy relations × every kill point ×
    /// every semantics: recovery through the binary codec reproduces
    /// the uninterrupted stream exactly.
    #[test]
    fn recovered_stream_equals_uninterrupted_global(
        pat in pattern_strategy(),
        rel in relation_strategy_with(2..7, 0i64..3),
        semantics_ix in 0usize..3,
        selection_ix in 0usize..2,
    ) {
        let opts = options(MODES[semantics_ix], SELECTIONS[selection_ix]);
        let reference = uninterrupted(&pat, &rel, &opts, true, None);
        for kill_after in 0..=rel.len() {
            for durable_tail in [true, false] {
                let recovered = crash_and_recover(
                    &pat, &rel, &opts, true, None, kill_after, 2, durable_tail,
                );
                prop_assert_eq!(
                    &recovered, &reference,
                    "kill_after={} durable_tail={}", kill_after, durable_tail
                );
            }
        }
    }

    /// The sharded flavor, whenever the generated pattern proves a
    /// partition key (fully-correlated cliques do); unprovable patterns
    /// are skipped, not failed.
    #[test]
    fn recovered_stream_equals_uninterrupted_sharded(
        pat in pattern_strategy(),
        rel in relation_strategy_with(2..7, 0i64..3),
        semantics_ix in 0usize..3,
        shards in 1usize..4,
    ) {
        let opts = options(MODES[semantics_ix], EventSelection::SkipTillNextMatch);
        // Skip (don't fail) patterns the analyzer cannot shard by key.
        if ShardedStreamMatcher::with_options(&pat, &schema(), sharded_opts(&opts), shards).is_err()
        {
            return Ok(());
        }
        let reference = uninterrupted(&pat, &rel, &opts, true, Some(shards));
        for kill_after in 0..=rel.len() {
            let recovered = crash_and_recover(
                &pat, &rel, &opts, true, Some(shards), kill_after, 2, true,
            );
            prop_assert_eq!(&recovered, &reference, "kill_after={}", kill_after);
        }
    }
}
