//! Differential suite: the columnar admission layer — batch bitmask
//! pre-evaluation of constant conditions — is invisible in the answers.
//!
//! Two properties, over the same generator space the oracle suite
//! validates (`common/`):
//!
//! 1. **Batch `find`**: forcing the columnar path (`ColumnarMode::On`)
//!    produces exactly the scalar answer (`Off`), across every
//!    semantics × selection × filter combination — so together with
//!    `oracle.rs` this gives `columnar ≡ scalar ≡ oracle`.
//! 2. **Streaming `push_batch`**: replaying a stream in micro-batches
//!    of any size through the columnar path emits *the same matches at
//!    the same pushes* as scalar per-event pushes — the batch API
//!    changes admission evaluation, never emission timing.
//!
//! Plus bitmask edge cases the generators cannot force: batch lengths
//! straddling the 64-bit word boundary, empty batches, and `Float`
//! constant lanes (which take the generic scanned-fallback kernel).

mod common;

use proptest::prelude::*;

use common::{pattern_strategy, relation_strategy_with, schema};
use ses::prelude::*;

const MODES: [MatchSemantics; 3] = [
    MatchSemantics::Maximal,
    MatchSemantics::Definition2,
    MatchSemantics::AllRuns,
];

const SELECTIONS: [EventSelection; 2] = [
    EventSelection::SkipTillNextMatch,
    EventSelection::SkipTillAnyMatch,
];

/// Batch sizes crossing every interesting boundary: single-event
/// degenerate batches, sizes that leave ragged tails, and the 64/65
/// word-boundary pair.
const BATCH_SIZES: [usize; 6] = [1, 2, 3, 7, 64, 65];

fn options(semantics: MatchSemantics, columnar: ColumnarMode) -> MatcherOptions {
    MatcherOptions {
        semantics,
        columnar,
        ..MatcherOptions::default()
    }
}

fn find_with(
    pat: &Pattern,
    rel: &Relation,
    semantics: MatchSemantics,
    selection: EventSelection,
    columnar: ColumnarMode,
) -> Vec<Match> {
    let mut out = Matcher::with_options(
        pat,
        &schema(),
        MatcherOptions {
            selection,
            ..options(semantics, columnar)
        },
    )
    .unwrap()
    .find(rel);
    out.sort();
    out
}

/// Per-push emission schedule of a scalar (per-event) stream replay;
/// the finish flush is the last entry.
fn scalar_schedule(
    pat: &Pattern,
    rel: &Relation,
    semantics: MatchSemantics,
    evict: bool,
) -> Vec<Vec<Match>> {
    let mut sm = StreamMatcher::with_options(pat, &schema(), options(semantics, ColumnarMode::Off))
        .unwrap()
        .with_eviction(evict);
    let mut schedule = Vec::new();
    for e in rel.events() {
        schedule.push(sm.push(e.ts(), e.values().to_vec()).unwrap());
    }
    schedule.push(sm.finish());
    schedule
}

/// Emission schedule of a micro-batched columnar replay: one entry per
/// `push_batch` chunk, plus the finish flush.
fn batched_schedule(
    pat: &Pattern,
    rel: &Relation,
    semantics: MatchSemantics,
    evict: bool,
    batch: usize,
) -> Vec<Vec<Match>> {
    let mut sm = StreamMatcher::with_options(pat, &schema(), options(semantics, ColumnarMode::On))
        .unwrap()
        .with_eviction(evict);
    let events: Vec<Event> = rel.events().to_vec();
    let mut schedule = Vec::new();
    for chunk in events.chunks(batch) {
        schedule.push(sm.push_batch(chunk.to_vec()).unwrap());
    }
    schedule.push(sm.finish());
    schedule
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Property 1: batch `find` is bit-for-bit identical with the
    /// columnar path forced on, forced off, and left on auto, for every
    /// semantics × selection × filter combination.
    #[test]
    fn columnar_find_equals_scalar(
        rel in relation_strategy_with(2..8, 0..4),
        pat in pattern_strategy(),
    ) {
        for semantics in MODES {
            for selection in SELECTIONS {
                let scalar = find_with(&pat, &rel, semantics, selection, ColumnarMode::Off);
                let on = find_with(&pat, &rel, semantics, selection, ColumnarMode::On);
                prop_assert_eq!(&on, &scalar, "On: {:?}/{:?}", semantics, selection);
                let auto = find_with(&pat, &rel, semantics, selection, ColumnarMode::Auto);
                prop_assert_eq!(&auto, &scalar, "Auto: {:?}/{:?}", semantics, selection);
            }
        }
    }

    /// Property 2: a columnar micro-batched stream emits the same
    /// matches at the same pushes as a scalar per-event stream, for
    /// every batch size and with eviction on and off. Comparing the
    /// schedule chunk-by-chunk (the batch's emission is the exact
    /// concatenation of its events' per-push emissions) proves the
    /// batch API preserves push-for-push emission timing, not just the
    /// final answer.
    #[test]
    fn columnar_push_batch_preserves_emission_timing(
        rel in relation_strategy_with(2..8, 0..4),
        pat in pattern_strategy(),
    ) {
        for semantics in MODES {
            for evict in [true, false] {
                let scalar = scalar_schedule(&pat, &rel, semantics, evict);
                let (pushes, finish) = scalar.split_at(scalar.len() - 1);
                for batch in BATCH_SIZES {
                    let batched = batched_schedule(&pat, &rel, semantics, evict, batch);
                    let (bpushes, bfinish) = batched.split_at(batched.len() - 1);
                    // Finish flushes agree…
                    prop_assert_eq!(
                        &bfinish[0], &finish[0],
                        "finish: {:?}/evict={}/batch={}", semantics, evict, batch
                    );
                    // …and each chunk's emission is the concatenation of
                    // its events' scalar per-push emissions.
                    let mut chunked: Vec<Vec<Match>> = pushes
                        .chunks(batch)
                        .map(|c| c.iter().flatten().cloned().collect())
                        .collect();
                    if chunked.is_empty() {
                        chunked.push(Vec::new());
                    }
                    let got: Vec<Vec<Match>> = bpushes.to_vec();
                    prop_assert_eq!(
                        &got, &chunked,
                        "schedule: {:?}/evict={}/batch={}", semantics, evict, batch
                    );
                }
            }
        }
    }
}

/// A relation of `n` events alternating types A/B with ids cycling 1–2,
/// one tick apart — enough structure for the word-boundary checks.
fn alternating(n: usize) -> Relation {
    let mut rel = Relation::new(schema());
    for i in 0..n {
        rel.push_values(
            Timestamp::new(i as i64),
            [
                Value::from(if i % 2 == 0 { "A" } else { "B" }),
                Value::from((i % 2 + 1) as i64),
            ],
        )
        .unwrap();
    }
    rel
}

fn ab_pattern() -> Pattern {
    Pattern::builder()
        .set(|s| s.var("a"))
        .set(|s| s.var("b"))
        .cond_const("a", "L", CmpOp::Eq, "A")
        .cond_const("b", "L", CmpOp::Eq, "B")
        .within(Duration::ticks(5))
        .build()
        .unwrap()
}

/// Batch lengths at and just past the 64-bit word boundary: the 65th
/// event's admission bit lives in the second word of every lane vector.
#[test]
fn word_boundary_batches_agree() {
    let pat = ab_pattern();
    for n in [63, 64, 65, 128, 129] {
        let rel = alternating(n);
        for mode in [ColumnarMode::On, ColumnarMode::Auto] {
            let got = find_with(
                &pat,
                &rel,
                MatchSemantics::AllRuns,
                EventSelection::SkipTillNextMatch,
                mode,
            );
            let want = find_with(
                &pat,
                &rel,
                MatchSemantics::AllRuns,
                EventSelection::SkipTillNextMatch,
                ColumnarMode::Off,
            );
            assert_eq!(got, want, "n={n} mode={mode:?}");
            assert!(!want.is_empty(), "n={n}: boundary case must have matches");
        }
    }
}

/// An empty batch is a no-op: no error, no matches, and the stream
/// still accepts subsequent pushes.
#[test]
fn empty_batch_is_a_noop() {
    let mut sm = StreamMatcher::with_options(
        &ab_pattern(),
        &schema(),
        options(MatchSemantics::Maximal, ColumnarMode::On),
    )
    .unwrap();
    assert_eq!(sm.push_batch(Vec::new()).unwrap(), Vec::new());
    let rel = alternating(4);
    let events: Vec<Event> = rel.events().to_vec();
    let out = sm.push_batch(events).unwrap();
    assert_eq!(sm.push_batch(Vec::new()).unwrap(), Vec::new());
    let total = out.len() + sm.finish().len();
    assert!(total > 0, "stream stays live around empty batches");
}

/// `Float` constant lanes run the generic scanned-fallback kernel —
/// results must still match the scalar engine exactly, including the
/// `Int`-valued-attribute-vs-`Float`-constant cross-type comparisons.
#[test]
fn float_lanes_take_scanned_fallback_and_agree() {
    let schema = Schema::builder()
        .attr("L", AttrType::Str)
        .attr("V", AttrType::Float)
        .build()
        .unwrap();
    let pat = Pattern::builder()
        .set(|s| s.var("a"))
        .set(|s| s.var("b"))
        .cond_const("a", "V", CmpOp::Ge, 1.5)
        .cond_const("b", "V", CmpOp::Lt, 1.5)
        .cond_const("b", "L", CmpOp::Eq, "B")
        .within(Duration::ticks(10))
        .build()
        .unwrap();
    let mut rel = Relation::new(schema.clone());
    for (t, l, v) in [
        (0, "A", 2.0),
        (1, "B", 1.0),
        (2, "A", 1.5),
        (3, "B", 1.49),
        (4, "X", 0.0),
        (5, "B", -1.0),
    ] {
        rel.push_values(Timestamp::new(t), [Value::from(l), Value::from(v)])
            .unwrap();
    }
    let run = |mode: ColumnarMode| {
        let mut out = Matcher::with_options(
            &pat,
            &schema,
            MatcherOptions {
                semantics: MatchSemantics::AllRuns,
                columnar: mode,
                ..MatcherOptions::default()
            },
        )
        .unwrap()
        .find(&rel);
        out.sort();
        out
    };
    let scalar = run(ColumnarMode::Off);
    assert_eq!(run(ColumnarMode::On), scalar);
    assert!(!scalar.is_empty(), "float workload must produce matches");
}

/// A batch with an out-of-order timestamp (or any invalid event) is
/// rejected atomically: the error names the offender and *nothing* is
/// consumed — the stream state is exactly as before the call.
#[test]
fn invalid_batch_is_rejected_atomically() {
    let mut sm = StreamMatcher::with_options(
        &ab_pattern(),
        &schema(),
        options(MatchSemantics::Maximal, ColumnarMode::On),
    )
    .unwrap();
    sm.push(Timestamp::new(10), vec![Value::from("A"), Value::from(1)])
        .unwrap();
    let bad = vec![
        Event::new(Timestamp::new(11), vec![Value::from("B"), Value::from(1)]),
        // Out of order within the batch.
        Event::new(Timestamp::new(9), vec![Value::from("A"), Value::from(1)]),
    ];
    assert!(sm.push_batch(bad).is_err());
    // Nothing was consumed: the same first event still completes a match.
    let out = sm
        .push_batch(vec![Event::new(
            Timestamp::new(11),
            vec![Value::from("B"), Value::from(1)],
        )])
        .unwrap();
    assert_eq!(out.len() + sm.finish().len(), 1);
}
