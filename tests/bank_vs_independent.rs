//! Differential suite for the multi-pattern bank: a [`PatternBank`]
//! fed each event **once** emits, per pattern, exactly what N
//! independent [`StreamMatcher`]s fed **every** event emit — the same
//! matches, in the same order, *at the same push* — across generated
//! pattern sets, all semantics modes, both selection strategies, with
//! eviction on and off, and with the predicate index on and off.
//!
//! The per-push granularity matters: it proves the watermark heartbeat
//! a skipped pattern receives is observationally identical to the push
//! it didn't get (finalization timing, eviction, tie handling), not
//! merely that the totals agree at the end. A second property drives a
//! checkpoint through the binary codec mid-stream and requires the
//! restored bank to finish the stream byte-for-byte like an
//! uninterrupted twin. The soundness argument for why skipping cannot
//! change any pattern's answer is in `docs/patternbank.md`.

mod common;

use proptest::prelude::*;

use common::{
    pattern_set_strategy, pattern_set_strategy_with_overlap, relation_strategy_with, schema,
};
use ses::prelude::*;

const MODES: [MatchSemantics; 3] = [
    MatchSemantics::Maximal,
    MatchSemantics::Definition2,
    MatchSemantics::AllRuns,
];

const SELECTIONS: [EventSelection; 2] = [
    EventSelection::SkipTillNextMatch,
    EventSelection::SkipTillAnyMatch,
];

fn options(semantics: MatchSemantics, selection: EventSelection) -> MatcherOptions {
    MatcherOptions {
        semantics,
        selection,
        ..MatcherOptions::default()
    }
}

/// Emission schedule of N independent stream matchers, each fed every
/// event: `schedule[push][pattern]` is what pattern `pattern` emitted
/// while consuming push `push`; the last entry is the finish flush.
fn independent_schedule(
    patterns: &[Pattern],
    rel: &Relation,
    opts: &MatcherOptions,
    evict: bool,
) -> Vec<Vec<Vec<Match>>> {
    let mut matchers: Vec<StreamMatcher> = patterns
        .iter()
        .map(|p| {
            StreamMatcher::with_options(p, &schema(), opts.clone())
                .unwrap()
                .with_eviction(evict)
        })
        .collect();
    let mut schedule = Vec::new();
    for e in rel.events() {
        schedule.push(
            matchers
                .iter_mut()
                .map(|sm| sm.push(e.ts(), e.values().to_vec()).unwrap())
                .collect(),
        );
    }
    schedule.push(matchers.into_iter().map(|sm| sm.finish()).collect());
    schedule
}

fn build_bank(
    patterns: &[Pattern],
    opts: &MatcherOptions,
    evict: bool,
    use_index: bool,
) -> PatternBank {
    build_bank_sharing(patterns, opts, evict, use_index, false)
}

fn build_bank_sharing(
    patterns: &[Pattern],
    opts: &MatcherOptions,
    evict: bool,
    use_index: bool,
    share: bool,
) -> PatternBank {
    let mut builder = PatternBank::builder(&schema())
        .with_eviction(evict)
        .with_index(use_index)
        .with_sharing(share);
    for (i, p) in patterns.iter().enumerate() {
        builder = builder.register(format!("p{i}"), p, opts.clone()).unwrap();
    }
    builder.build()
}

/// Buckets one push's `(pattern id, match)` pairs into per-pattern
/// lists, preserving each pattern's emission order.
fn bucket(n: usize, emitted: Vec<(usize, Match)>) -> Vec<Vec<Match>> {
    let mut row = vec![Vec::new(); n];
    for (i, m) in emitted {
        row[i].push(m);
    }
    row
}

/// The bank's emission schedule, same shape as [`independent_schedule`].
fn bank_schedule(
    patterns: &[Pattern],
    rel: &Relation,
    opts: &MatcherOptions,
    evict: bool,
    use_index: bool,
) -> Vec<Vec<Vec<Match>>> {
    bank_schedule_sharing(patterns, rel, opts, evict, use_index, false)
}

/// As [`bank_schedule`], with structural sharing on or off.
fn bank_schedule_sharing(
    patterns: &[Pattern],
    rel: &Relation,
    opts: &MatcherOptions,
    evict: bool,
    use_index: bool,
    share: bool,
) -> Vec<Vec<Vec<Match>>> {
    let mut bank = build_bank_sharing(patterns, opts, evict, use_index, share);
    let mut schedule = Vec::new();
    for e in rel.events() {
        let emitted = bank.push(e.ts(), e.values().to_vec()).unwrap();
        schedule.push(bucket(patterns.len(), emitted));
    }
    schedule.push(bucket(patterns.len(), bank.finish()));
    schedule
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The tentpole property: per pattern, per push, bank ≡ independent,
    /// for every (eviction × index) combination.
    #[test]
    fn bank_equals_independent_matchers(
        patterns in pattern_set_strategy(),
        rel in relation_strategy_with(2..10, 0i64..3),
        mode in 0usize..3,
        sel in 0usize..2,
    ) {
        let opts = options(MODES[mode], SELECTIONS[sel]);
        for evict in [true, false] {
            let want = independent_schedule(&patterns, &rel, &opts, evict);
            for use_index in [true, false] {
                let got = bank_schedule(&patterns, &rel, &opts, evict, use_index);
                prop_assert_eq!(
                    &got, &want,
                    "schedules diverged (evict={}, index={})", evict, use_index
                );
            }
        }
    }

    /// The sharing-on/off differential axis: over pattern sets with a
    /// high shared-prefix overlap (dedup members, prefix groups, and
    /// independents mixed), a bank with structural sharing enabled
    /// emits push-for-push exactly what the independent matchers emit
    /// — sharing is an execution strategy, never an answer change.
    #[test]
    fn bank_sharing_equals_independent_matchers(
        patterns in pattern_set_strategy_with_overlap(75),
        rel in relation_strategy_with(2..10, 0i64..3),
        mode in 0usize..3,
        sel in 0usize..2,
    ) {
        let opts = options(MODES[mode], SELECTIONS[sel]);
        for evict in [true, false] {
            let want = independent_schedule(&patterns, &rel, &opts, evict);
            for use_index in [true, false] {
                let shared = bank_schedule_sharing(&patterns, &rel, &opts, evict, use_index, true);
                prop_assert_eq!(
                    &shared, &want,
                    "sharing diverged from independent (evict={}, index={})", evict, use_index
                );
                let unshared = bank_schedule_sharing(&patterns, &rel, &opts, evict, use_index, false);
                prop_assert_eq!(
                    &shared, &unshared,
                    "sharing on/off diverged (evict={}, index={})", evict, use_index
                );
            }
        }
    }

    /// Checkpoint/restore of the whole bank mid-stream, through the
    /// binary codec: the restored bank must finish the stream exactly
    /// like an uninterrupted twin (and therefore like the independent
    /// matchers, by the property above).
    #[test]
    fn bank_checkpoint_restore_is_seamless(
        patterns in pattern_set_strategy(),
        rel in relation_strategy_with(3..10, 0i64..3),
        mode in 0usize..3,
        cut_pick in 0usize..1000,
    ) {
        let opts = options(MODES[mode], EventSelection::SkipTillNextMatch);
        let cut = cut_pick % (rel.len() + 1);
        let specs: Vec<(String, Pattern, MatcherOptions)> = patterns
            .iter()
            .enumerate()
            .map(|(i, p)| (format!("p{i}"), p.clone(), opts.clone()))
            .collect();

        let mut live = build_bank(&patterns, &opts, true, true);
        let mut twin = build_bank(&patterns, &opts, true, true);
        let mut live_out = Vec::new();
        let mut twin_out = Vec::new();
        for e in &rel.events()[..cut] {
            live_out.extend(live.push(e.ts(), e.values().to_vec()).unwrap());
            twin_out.extend(twin.push(e.ts(), e.values().to_vec()).unwrap());
        }

        // Through the codec, as `recover` would see it.
        let bytes = ses::store::encode_snapshot(&MatcherSnapshot::Bank(live.snapshot()));
        drop(live);
        let MatcherSnapshot::Bank(snap) = ses::store::decode_snapshot(&bytes).unwrap() else {
            panic!("codec changed the snapshot kind");
        };
        let mut restored = ses::core::PatternBank::restore(&specs, &schema(), &snap).unwrap();
        prop_assert_eq!(restored.emitted_so_far(), twin.emitted_so_far());
        prop_assert_eq!(restored.consumed_events(), twin.consumed_events());
        prop_assert_eq!(restored.ties_at_watermark(), twin.ties_at_watermark());

        for e in &rel.events()[cut..] {
            live_out.extend(restored.push(e.ts(), e.values().to_vec()).unwrap());
            twin_out.extend(twin.push(e.ts(), e.values().to_vec()).unwrap());
        }
        live_out.extend(restored.finish());
        twin_out.extend(twin.finish());
        prop_assert_eq!(live_out, twin_out, "divergence after restore at cut {}", cut);
    }

    /// The same seamless-restore property with structural sharing on,
    /// over high-overlap pattern sets: the snapshot travels through the
    /// bumped codec kind (kind 3 whenever the plan actually shares —
    /// dedup members without a matcher, prefix pools with live
    /// instances), and the restored bank both recomputes the identical
    /// plan and finishes the stream exactly like its uninterrupted
    /// twin.
    #[test]
    fn shared_bank_checkpoint_restore_is_seamless(
        patterns in pattern_set_strategy_with_overlap(75),
        rel in relation_strategy_with(3..10, 0i64..3),
        mode in 0usize..3,
        cut_pick in 0usize..1000,
    ) {
        let opts = options(MODES[mode], EventSelection::SkipTillNextMatch);
        let cut = cut_pick % (rel.len() + 1);
        let specs: Vec<(String, Pattern, MatcherOptions)> = patterns
            .iter()
            .enumerate()
            .map(|(i, p)| (format!("p{i}"), p.clone(), opts.clone()))
            .collect();

        let mut live = build_bank_sharing(&patterns, &opts, true, true, true);
        let mut twin = build_bank_sharing(&patterns, &opts, true, true, true);
        let shares = live.sharing_active();
        let mut live_out = Vec::new();
        let mut twin_out = Vec::new();
        for e in &rel.events()[..cut] {
            live_out.extend(live.push(e.ts(), e.values().to_vec()).unwrap());
            twin_out.extend(twin.push(e.ts(), e.values().to_vec()).unwrap());
        }

        let plan = live.sharing_plan().clone();
        let bytes = ses::store::encode_snapshot(&MatcherSnapshot::Bank(live.snapshot()));
        drop(live);
        // Shared structure serializes as the bumped kind; a plan that
        // happens to share nothing keeps the legacy layout.
        prop_assert_eq!(bytes[0], if shares { 3 } else { 2 });
        let MatcherSnapshot::Bank(snap) = ses::store::decode_snapshot(&bytes).unwrap() else {
            panic!("codec changed the snapshot kind");
        };
        let mut restored = ses::core::PatternBank::restore(&specs, &schema(), &snap).unwrap();
        prop_assert_eq!(restored.sharing_plan(), &plan);
        prop_assert_eq!(restored.emitted_so_far(), twin.emitted_so_far());
        prop_assert_eq!(restored.consumed_events(), twin.consumed_events());

        for e in &rel.events()[cut..] {
            live_out.extend(restored.push(e.ts(), e.values().to_vec()).unwrap());
            twin_out.extend(twin.push(e.ts(), e.values().to_vec()).unwrap());
        }
        live_out.extend(restored.finish());
        twin_out.extend(twin.finish());
        prop_assert_eq!(live_out, twin_out, "shared divergence after restore at cut {}", cut);
    }
}

/// Replays the committed regression seeds' shapes directly (belt and
/// braces on top of proptest's own seed replay): a pattern skipped for
/// the whole stream must still evict and finalize on time.
#[test]
fn skipped_pattern_finalizes_on_heartbeats_alone() {
    let ab = Pattern::builder()
        .set(|s| s.var("a").var("b"))
        .cond_const("a", "L", CmpOp::Eq, "A")
        .cond_const("b", "L", CmpOp::Eq, "B")
        .within(Duration::ticks(4))
        .build()
        .unwrap();
    let x_only = Pattern::builder()
        .set(|s| s.var("x"))
        .cond_const("x", "L", CmpOp::Eq, "X")
        .within(Duration::ticks(4))
        .build()
        .unwrap();
    let opts = MatcherOptions::default();
    let mut bank = build_bank(&[ab, x_only], &opts, true, true);
    // No X ever arrives: pattern 1 lives on heartbeats only.
    let mut out = Vec::new();
    for (t, l) in [(1, "A"), (1, "B"), (1, "A"), (3, "B"), (9, "A"), (10, "B")] {
        out.extend(
            bank.push(Timestamp::new(t), [Value::from(l), Value::from(1i64)])
                .unwrap(),
        );
    }
    let stats = bank.stats();
    assert_eq!(stats[1].hits, 0, "X pattern saw an event");
    assert_eq!(stats[1].skips, 6);
    out.extend(bank.finish());
    assert!(out.iter().all(|(i, _)| *i == 0));
    assert!(!out.is_empty(), "the ab pattern should have matched");
}
