//! Empirical validation of the complexity theorems (§4.4) at test scale:
//! the measured peak |Ω| respects — and scales like — the proven bounds.

use ses::prelude::*;

fn schema() -> Schema {
    Schema::builder()
        .attr("ID", AttrType::Int)
        .attr("L", AttrType::Str)
        .build()
        .unwrap()
}

/// A relation of `n` medication events of type `ty` at consecutive
/// timestamps, followed by one `B`.
fn uniform_stream(n: usize, ty: &str) -> Relation {
    let mut rel = Relation::new(schema());
    for i in 0..n {
        rel.push_values(Timestamp::new(i as i64), [Value::from(1), Value::from(ty)])
            .unwrap();
    }
    rel.push_values(Timestamp::new(n as i64), [Value::from(1), Value::from("B")])
        .unwrap();
    rel
}

fn peak_omega(pattern: &Pattern, rel: &Relation) -> usize {
    let m = Matcher::compile(pattern, &schema()).unwrap();
    let mut probe = CountingProbe::new();
    m.find_with_probe(rel, &mut probe);
    probe.omega_max
}

/// Theorem 1: pairwise mutually exclusive variables ⇒ no branching; |Ω|
/// is bounded by the number of open starts (one per event within τ), not
/// by any factorial term.
#[test]
fn theorem1_exclusive_variables_never_branch() {
    let pattern = Pattern::builder()
        .set(|s| s.var("c").var("d").var("p"))
        .cond_const("c", "L", CmpOp::Eq, "C")
        .cond_const("d", "L", CmpOp::Eq, "D")
        .cond_const("p", "L", CmpOp::Eq, "P")
        .within(Duration::ticks(100))
        .build()
        .unwrap();
    let mut rel = Relation::new(schema());
    for i in 0..30 {
        let ty = ["C", "D", "P"][i % 3];
        rel.push_values(Timestamp::new(i as i64), [Value::from(1), Value::from(ty)])
            .unwrap();
    }
    let m = Matcher::compile(&pattern, &schema()).unwrap();
    let mut probe = CountingProbe::new();
    m.find_with_probe(&rel, &mut probe);
    assert_eq!(probe.instances_branched, 0);
}

/// Theorem 2: `n` non-exclusive singleton variables ⇒ at most `n!`
/// instances *per start*; with a single long window the measured peak
/// for one start stays within `n!`.
#[test]
fn theorem2_factorial_bound() {
    for n in 2..=4usize {
        let names: Vec<String> = (0..n).map(|i| format!("v{i}")).collect();
        let mut b = Pattern::builder();
        {
            let names = names.clone();
            b = b.set(move |s| {
                for name in &names {
                    s.var(name.clone());
                }
                s
            });
        }
        for name in &names {
            b = b.cond_const(name.clone(), "L", CmpOp::Eq, "M");
        }
        let pattern = b.within(Duration::ticks(1000)).build().unwrap();

        // Theorem 2 bounds the instances descending from ONE start by n!
        // (the paper's analysis assumes a single start instance); with a
        // fresh start per event the simultaneous total is ≤ W·n!.
        let rel = uniform_stream(n, "M");
        let w = rel.len();
        let fact: usize = (1..=n).product();
        let peak = peak_omega(&pattern, &rel);
        assert!(
            peak <= w * fact,
            "n = {n}: peak |Ω| = {peak} exceeds W·n! = {}",
            w * fact
        );
        assert!(
            peak >= fact,
            "n = {n}: expected ≥ {fact} interleavings, got {peak}"
        );
    }
}

/// Theorem 3 (k = 1): a group variable makes |Ω| grow polynomially with
/// the window size W, while the same pattern without the group variable
/// stays flat — the shape of the paper's Figure 12.
#[test]
fn theorem3_group_variable_scales_with_window() {
    let with_group = Pattern::builder()
        .set(|s| s.var("c").plus("p"))
        .cond_const("c", "L", CmpOp::Eq, "M")
        .cond_const("p", "L", CmpOp::Eq, "M")
        .within(Duration::ticks(10_000))
        .build()
        .unwrap();
    let without_group = Pattern::builder()
        .set(|s| s.var("c").var("p"))
        .cond_const("c", "L", CmpOp::Eq, "M")
        .cond_const("p", "L", CmpOp::Eq, "M")
        .within(Duration::ticks(10_000))
        .build()
        .unwrap();

    let mut grouped = Vec::new();
    let mut plain = Vec::new();
    for w in [8usize, 16, 32] {
        let rel = uniform_stream(w, "M");
        grouped.push(peak_omega(&with_group, &rel));
        plain.push(peak_omega(&without_group, &rel));
    }
    // The group variant grows superlinearly in W…
    assert!(
        grouped[2] as f64 / grouped[0] as f64 > 4.0,
        "group peaks {grouped:?} should grow superlinearly"
    );
    // …and dominates the plain variant ever more strongly.
    assert!(
        grouped[2] > 4 * plain[2],
        "grouped {grouped:?} vs plain {plain:?}"
    );
    // The plain variant grows at most linearly with W.
    assert!(
        plain[2] <= plain[0] * 8,
        "plain peaks {plain:?} should stay ~linear"
    );
}

/// The static analysis' evaluated bounds are upper bounds of the
/// measured peaks for the experiment patterns at small scale.
#[test]
fn predicted_bounds_dominate_measurements() {
    use ses::workload::paper;
    let rel = {
        // Small mixed stream: P's with interleaved B's.
        let mut rel = Relation::new(schema());
        for i in 0..24 {
            let ty = if i % 6 == 5 { "B" } else { "P" };
            rel.push_values(Timestamp::new(i as i64), [Value::from(1), Value::from(ty)])
                .unwrap();
        }
        rel
    };
    for pattern in [paper::exp2_p4(), paper::exp3_p5()] {
        let compiled = pattern.compile(&paper::schema()).unwrap();
        let w = rel.window_size(pattern.within()) as u64;
        // Overall bound: per start instance; multiply by W starts.
        let bound = compiled.analysis().worst_set_bound(w).saturating_mul(w);
        let chemo_rel = {
            let mut r = Relation::new(paper::schema());
            for (i, e) in rel.events().iter().enumerate() {
                r.push_values(
                    Timestamp::new(i as i64),
                    [
                        e.values()[0].clone(),
                        e.values()[1].clone(),
                        Value::from(1.0),
                        Value::from("mg"),
                    ],
                )
                .unwrap();
            }
            r
        };
        let m = Matcher::compile(&pattern, &paper::schema()).unwrap();
        let mut probe = CountingProbe::new();
        m.find_with_probe(&chemo_rel, &mut probe);
        assert!(
            (probe.omega_max as u64) <= bound,
            "{pattern}: measured {} > bound {bound}",
            probe.omega_max
        );
    }
}
