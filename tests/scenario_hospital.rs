//! A full product-style scenario: a hospital monitoring deployment that
//! exercises every layer together — generation, persistence, partitioned
//! stores, the query language, batch and streaming matching, measures,
//! negation, and instrumentation — with cross-layer consistency checks.

use std::collections::BTreeMap;

use ses::prelude::*;
use ses::workload::{chemo, paper};

fn ward() -> Relation {
    chemo::generate(&chemo::ChemoConfig {
        patients: 12,
        cycles: 3,
        ..chemo::ChemoConfig::small()
    })
}

#[test]
fn end_to_end_hospital_monitoring() {
    let ward = ward();
    let schema = paper::schema();

    // --- Persistence: the CSV round trip is lossless. -----------------
    let dir = std::env::temp_dir().join("ses-scenario");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("ward-{}.csv", std::process::id()));
    EventStore::new("ward", ward.clone())
        .save_csv(&path)
        .unwrap();
    let reloaded = EventStore::load_csv_with_schema(&path, &schema).unwrap();
    assert_eq!(reloaded.len(), ward.len());
    std::fs::remove_file(&path).ok();

    // --- The protocol query, from text. --------------------------------
    let q1 = ses::query::parse_pattern(
        "PATTERN PERMUTE(c, p+, d) THEN b \
         WHERE c.L = 'C' AND d.L = 'D' AND p.L = 'P' AND b.L = 'B' \
           AND c.ID = p.ID AND c.ID = d.ID AND d.ID = b.ID \
         WITHIN 264 HOURS",
        TickUnit::Hour,
    )
    .unwrap();
    let matcher = Matcher::compile(&q1, &schema).unwrap();

    let mut probe = CountingProbe::new();
    let matches = matcher.find_with_probe(reloaded.relation(), &mut probe);
    assert!(!matches.is_empty());
    assert!(probe.events_filtered > 0, "aux events must be filtered");

    // --- Batch == streaming (eager emissions + final flush). -----------
    let mut stream = StreamMatcher::compile(&q1, &schema).unwrap();
    let mut streamed = Vec::new();
    for e in ward.events() {
        streamed.extend(stream.push(e.ts(), e.values().to_vec()).unwrap());
    }
    streamed.extend(stream.finish());
    let mut batch = matches.clone();
    streamed.sort();
    batch.sort();
    assert_eq!(streamed, batch);

    // --- Global correlated == per-patient partitioned. -----------------
    let id_attr = schema.attr_id("ID").unwrap();
    let store = EventStore::new("ward", ward.clone());
    let per_patient: usize = store
        .partition_by(id_attr)
        .iter()
        .map(|(_, part)| matcher.find(part.relation()).len())
        .sum();
    assert_eq!(per_patient, matches.len());

    // --- Per-patient report with dose measures. ------------------------
    let p_var = q1.var_id("p").unwrap();
    let v_attr = schema.attr_id("V").unwrap();
    let mut report: BTreeMap<String, (usize, f64)> = BTreeMap::new();
    for m in &matches {
        let patient = ward
            .event(m.first_event())
            .value_by_name("ID", &schema)
            .unwrap()
            .to_string();
        let total = match ses::core::aggregate(m, p_var, v_attr, ses::core::Aggregate::Sum, &ward) {
            Some(Value::Float(f)) => f,
            Some(Value::Int(i)) => i as f64,
            other => panic!("dose sum must be numeric, got {other:?}"),
        };
        let entry = report.entry(patient).or_insert((0, 0.0));
        entry.0 += 1;
        entry.1 += total;
    }
    assert!(!report.is_empty());
    for (patient, (cycles, dose)) in &report {
        assert!(
            *cycles >= 1 && *cycles <= 3,
            "patient {patient}: {cycles} cycles"
        );
        // 1–5 Prednisone administrations of 80–130 mg per matched cycle.
        assert!(
            *dose >= 80.0 * *cycles as f64 && *dose <= 5.0 * 130.0 * *cycles as f64,
            "patient {patient}: implausible total dose {dose}"
        );
    }

    // --- Matching a time slice only. -----------------------------------
    let mid = ward.event(EventId((ward.len() / 2) as u32)).ts();
    let early = store.between(Timestamp::new(i64::MIN / 2), mid);
    let early_matches = matcher.find(early.relation());
    assert!(early_matches.len() <= matches.len());

    // --- The negated variant returns a subset. --------------------------
    let calm = ses::query::parse_pattern(
        "PATTERN PERMUTE(c, p+, d) THEN NOT fever THEN b \
         WHERE c.L = 'C' AND d.L = 'D' AND p.L = 'P' AND b.L = 'B' \
           AND c.ID = p.ID AND c.ID = d.ID AND d.ID = b.ID \
           AND fever.L = 'T' AND fever.ID = c.ID \
         WITHIN 264 HOURS",
        TickUnit::Hour,
    )
    .unwrap();
    let calm_matches = Matcher::compile(&calm, &schema).unwrap().find(&ward);
    assert!(calm_matches.len() <= matches.len());
    for m in &calm_matches {
        assert!(batch.contains(m));
    }
}

#[test]
fn merged_wards_match_like_a_single_ward() {
    // Two hospital sites stream into one monitoring deployment; matching
    // the merged relation equals the sum of per-site matches (patient ids
    // are disjoint, so no cross-site matches can exist).
    let site_a = chemo::generate(&chemo::ChemoConfig::small().with_seed(1));
    // Shift site B's patient ids by 1000 to keep them disjoint.
    let site_b_raw = chemo::generate(&chemo::ChemoConfig::small().with_seed(2));
    let mut site_b = Relation::new(paper::schema());
    for e in site_b_raw.events() {
        let mut values = e.values().to_vec();
        let Value::Int(id) = values[0] else {
            panic!("ID is INT")
        };
        values[0] = Value::Int(id + 1000);
        site_b.push_values(e.ts(), values).unwrap();
    }

    let merged = Relation::merge(&[&site_a, &site_b]).unwrap();
    assert_eq!(merged.len(), site_a.len() + site_b.len());

    let matcher = Matcher::compile(&paper::query_q1(), &paper::schema()).unwrap();
    let merged_count = matcher.find(&merged).len();
    let split_count = matcher.find(&site_a).len() + matcher.find(&site_b).len();
    assert_eq!(merged_count, split_count);
    assert!(merged_count > 0);
}
