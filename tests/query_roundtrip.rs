//! Property test: render → parse is the identity on patterns (up to
//! display equivalence), for randomly generated patterns with sets,
//! group variables, negations, all condition kinds, and all operators.

use proptest::prelude::*;

use ses::prelude::*;

const OPS: [CmpOp; 6] = [
    CmpOp::Eq,
    CmpOp::Ne,
    CmpOp::Lt,
    CmpOp::Le,
    CmpOp::Gt,
    CmpOp::Ge,
];
const ATTRS: [&str; 3] = ["ID", "L", "V"];

#[derive(Debug, Clone)]
enum RandRhs {
    Int(i64),
    Float(i64),
    Str(String),
    Bool(bool),
    Var(usize), // index into declared positive variables
}

fn rhs_strategy() -> impl Strategy<Value = RandRhs> {
    prop_oneof![
        (-100i64..100).prop_map(RandRhs::Int),
        (-100i64..100).prop_map(RandRhs::Float),
        "[a-z]{1,6}".prop_map(RandRhs::Str),
        proptest::bool::ANY.prop_map(RandRhs::Bool),
        (0usize..6).prop_map(RandRhs::Var),
    ]
}

fn pattern_strategy() -> impl Strategy<Value = Pattern> {
    (
        proptest::collection::vec(proptest::collection::vec(proptest::bool::ANY, 1..4), 1..4),
        proptest::collection::vec((0usize..6, 0usize..3, 0usize..6, rhs_strategy()), 0..6),
        proptest::bool::ANY, // include a negation?
        proptest::option::of(0i64..100_000),
    )
        .prop_map(|(sets, conds, negate, within)| {
            let mut b = Pattern::builder();
            let mut names: Vec<String> = Vec::new();
            for (si, set) in sets.iter().enumerate() {
                for (vi, _) in set.iter().enumerate() {
                    names.push(format!("v{si}_{vi}"));
                }
                let local: Vec<(String, bool)> = set
                    .iter()
                    .enumerate()
                    .map(|(vi, plus)| (format!("v{si}_{vi}"), *plus))
                    .collect();
                b = b.set(move |s| {
                    for (n, plus) in &local {
                        if *plus {
                            s.plus(n.clone());
                        } else {
                            s.var(n.clone());
                        }
                    }
                    s
                });
                // Negation between the first two sets, when present.
                if negate && si == 0 && sets.len() > 1 {
                    b = b.negate("nn");
                }
            }
            for (var, attr, op, rhs) in conds {
                let v = names[var % names.len()].clone();
                let attr = ATTRS[attr];
                let op = OPS[op];
                b = match rhs {
                    RandRhs::Int(i) => b.cond_const(v, attr, op, i),
                    RandRhs::Float(f) => b.cond_const(v, attr, op, f as f64 / 2.0),
                    RandRhs::Str(s) => b.cond_const(v, attr, op, s.as_str()),
                    RandRhs::Bool(x) => b.cond_const(v, attr, op, x),
                    RandRhs::Var(o) => {
                        let other = names[o % names.len()].clone();
                        b.cond_vars(v, attr, op, other, attr)
                    }
                };
            }
            if negate && sets.len() > 1 {
                b = b.neg_cond_const("nn", "L", CmpOp::Eq, "NEG").neg_cond_vars(
                    "nn",
                    "ID",
                    CmpOp::Eq,
                    names[0].clone(),
                    "ID",
                );
            }
            if let Some(w) = within {
                b = b.within(Duration::ticks(w));
            }
            b.build()
                .expect("generated patterns are structurally valid")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `parse(render(p))` reproduces `p` (compared through the canonical
    /// display rendering, which covers sets, quantifiers, negations,
    /// conditions, and the window).
    #[test]
    fn render_parse_roundtrip(p in pattern_strategy()) {
        let text = ses::query::render(&p);
        let reparsed = ses::query::parse_pattern(&text, TickUnit::Abstract)
            .map_err(|e| TestCaseError::fail(format!("{e}\n---\n{text}")))?;
        prop_assert_eq!(reparsed.to_string(), p.to_string(), "\n{}", text);
        prop_assert_eq!(reparsed.within(), p.within());
        prop_assert_eq!(reparsed.negations().len(), p.negations().len());
        for (a, b) in reparsed.negations().iter().zip(p.negations()) {
            prop_assert_eq!(a.after_set(), b.after_set());
            prop_assert_eq!(a.conditions().len(), b.conditions().len());
        }
    }
}
