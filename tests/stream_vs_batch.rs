//! Differential suite: the streaming matcher — eager watermark emission,
//! with and without eviction — produces exactly the batch
//! `Matcher::find` answer, match for match, under every semantics mode.
//!
//! The generators are shared with `oracle.rs` (see `common/`), so the
//! pattern space proven correct against the brute-force oracle is the
//! same space the stream is proven equal to batch on: together the two
//! suites give `stream ≡ batch ≡ oracle`.

mod common;

use proptest::prelude::*;

use common::{pattern_strategy, relation_strategy_with, schema};
use ses::prelude::*;

/// All semantics modes a matcher can run under.
const MODES: [MatchSemantics; 3] = [
    MatchSemantics::Maximal,
    MatchSemantics::Definition2,
    MatchSemantics::AllRuns,
];

fn options(semantics: MatchSemantics) -> MatcherOptions {
    MatcherOptions {
        semantics,
        ..MatcherOptions::default()
    }
}

/// Replays `rel` through a stream matcher; returns the per-push emission
/// schedule plus the finish flush (last entry).
fn stream_schedule(
    pat: &Pattern,
    rel: &Relation,
    semantics: MatchSemantics,
    evict: bool,
) -> Vec<Vec<Match>> {
    let mut sm = StreamMatcher::with_options(pat, &schema(), options(semantics))
        .unwrap()
        .with_eviction(evict);
    let mut schedule = Vec::new();
    for e in rel.events() {
        schedule.push(sm.push(e.ts(), e.values().to_vec()).unwrap());
    }
    schedule.push(sm.finish());
    schedule
}

fn batch_answer(pat: &Pattern, rel: &Relation, semantics: MatchSemantics) -> Vec<Match> {
    let mut out = Matcher::with_options(pat, &schema(), options(semantics))
        .unwrap()
        .find(rel);
    out.sort();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Concatenated push emissions + finish equal the batch answer as a
    /// set, for every semantics, with eviction on and off. Equality with
    /// the (deduplicated) batch answer also proves exactly-once
    /// emission.
    #[test]
    fn streamed_equals_batch(
        rel in relation_strategy_with(2..8, 0..4),
        pat in pattern_strategy(),
    ) {
        for semantics in MODES {
            let batch = batch_answer(&pat, &rel, semantics);
            for evict in [true, false] {
                let mut streamed: Vec<Match> =
                    stream_schedule(&pat, &rel, semantics, evict)
                        .into_iter()
                        .flatten()
                        .collect();
                streamed.sort();
                prop_assert_eq!(
                    &streamed, &batch,
                    "{:?} evict={} diverged from batch", semantics, evict
                );
            }
        }
    }

    /// Eviction changes *nothing observable*: not just the final set,
    /// but the push-by-push emission schedule is identical with and
    /// without it.
    #[test]
    fn eviction_preserves_emission_schedule(
        rel in relation_strategy_with(2..8, 0..4),
        pat in pattern_strategy(),
    ) {
        for semantics in MODES {
            let on = stream_schedule(&pat, &rel, semantics, true);
            let off = stream_schedule(&pat, &rel, semantics, false);
            prop_assert_eq!(&on, &off, "{:?}: schedules diverged", semantics);
        }
    }

    /// Matches already emitted by `push` are final: everything `finish`
    /// returns is disjoint from the eager emissions, and eager emissions
    /// arrive no earlier than the event that completes them.
    #[test]
    fn eager_emissions_are_final_and_wellformed(
        rel in relation_strategy_with(2..8, 0..4),
        pat in pattern_strategy(),
    ) {
        let schedule = stream_schedule(&pat, &rel, MatchSemantics::Maximal, true);
        let (finish, pushes) = schedule.split_last().unwrap();
        let mut seen: Vec<&Match> = Vec::new();
        for (i, emitted) in pushes.iter().enumerate() {
            let push_ts = rel.event(EventId::from(i)).ts();
            for m in emitted {
                prop_assert!(!seen.contains(&m), "duplicate emission of {}", m);
                // A match can only be finalized once the watermark
                // passed its window.
                let last_ts = rel.event(m.last_event()).ts();
                prop_assert!(last_ts <= push_ts, "{} emitted before complete", m);
                seen.push(m);
            }
        }
        for m in finish {
            prop_assert!(!seen.contains(&m), "finish re-emitted {}", m);
        }
    }
}

/// Bounded-memory acceptance: stream 60 windows' worth of events (far
/// beyond any fixed buffer), and the retained relation must stay below a
/// small fixed multiple of the per-window event count while the matches
/// remain set-equal to batch over the full history.
#[test]
fn long_stream_memory_stays_bounded() {
    let schema = schema();
    let pattern = Pattern::builder()
        .set(|s| s.var("a"))
        .set(|s| s.var("b"))
        .cond_const("a", "L", CmpOp::Eq, "A")
        .cond_const("b", "L", CmpOp::Eq, "B")
        .within(Duration::ticks(10))
        .build()
        .unwrap();

    // One event per tick for 60× the window τ=10: alternating A/B with a
    // deterministic sprinkle of filtered X rows.
    let mut rel = Relation::new(schema.clone());
    for t in 0..600i64 {
        let l = match t % 7 {
            0 | 2 => "A",
            5 => "X",
            _ => "B",
        };
        rel.push_values(Timestamp::new(t), [Value::from(l), Value::from(t % 3)])
            .unwrap();
    }

    let mut sm = StreamMatcher::compile(&pattern, &schema).unwrap();
    let mut probe = CountingProbe::new();
    let mut streamed = Vec::new();
    for e in rel.events() {
        streamed.extend(
            sm.push_with_probe(e.ts(), e.values().to_vec(), &mut probe)
                .unwrap(),
        );
    }

    // ~11 events fit in one window; compaction hysteresis allows 2×, plus
    // slack for the watermark lag. The bound is a constant — it must not
    // scale with the 600-event stream.
    let per_window = 11;
    assert!(
        probe.retained_max <= 3 * per_window,
        "retained {} events — eviction is not bounding memory",
        probe.retained_max
    );
    assert!(
        probe.events_evicted > 500,
        "only {} evictions over 600 events",
        probe.events_evicted
    );
    assert!(
        sm.pending_candidates() < 4 * per_window,
        "pending candidates grew to {}",
        sm.pending_candidates()
    );
    assert!(
        sm.retained_killers() < 4 * per_window,
        "killer set grew to {}",
        sm.retained_killers()
    );
    // Most matches were finalized eagerly, long before end of stream.
    assert!(sm.emitted_so_far() > 0, "nothing emitted eagerly");

    streamed.extend(sm.finish());
    streamed.sort();
    let batch = batch_answer(&pattern, &rel, MatchSemantics::Maximal);
    assert_eq!(streamed, batch);
    assert!(!batch.is_empty());
}
