//! End-to-end tests of the negation extension: query language →
//! matcher → workloads, plus agreement between batch, streaming, and
//! brute-force execution.

use ses::prelude::*;
use ses::workload::{chemo, paper};

/// Query Q1 extended with "and no fever reading (aux type 'T') for that
/// patient between the administrations and the blood count".
fn q1_no_fever_text() -> &'static str {
    "PATTERN PERMUTE(c, p+, d) THEN NOT fever THEN b \
     WHERE c.L = 'C' AND d.L = 'D' AND p.L = 'P' AND b.L = 'B' \
       AND c.ID = p.ID AND c.ID = d.ID AND d.ID = b.ID \
       AND fever.L = 'T' AND fever.ID = c.ID \
     WITHIN 264 HOURS"
}

#[test]
fn negated_q1_parses_and_matches_figure1() {
    let pattern = ses::query::parse_pattern(q1_no_fever_text(), TickUnit::Hour).unwrap();
    assert_eq!(pattern.negations().len(), 1);
    // Figure 1 contains no 'T' events, so the results are unchanged.
    let relation = paper::figure1();
    let matches = Matcher::compile(&pattern, relation.schema())
        .unwrap()
        .find(&relation);
    assert_eq!(matches.len(), 2);
}

#[test]
fn negation_prunes_ward_matches() {
    // On the synthetic ward (which generates 'T' temperature readings),
    // the negated query returns a subset of the plain query.
    let plain = paper::query_q1();
    let negated = ses::query::parse_pattern(q1_no_fever_text(), TickUnit::Hour).unwrap();
    let ward = chemo::generate(&chemo::ChemoConfig::small());
    let schema = paper::schema();

    let plain_matches = Matcher::compile(&plain, &schema).unwrap().find(&ward);
    let negated_matches = Matcher::compile(&negated, &schema).unwrap().find(&ward);
    assert!(
        negated_matches.len() < plain_matches.len(),
        "fever readings must prune some matches ({} vs {})",
        negated_matches.len(),
        plain_matches.len()
    );
    assert!(
        !negated_matches.is_empty(),
        "some cycles have no fever reading in the gap"
    );
    // Every negated match is also a plain match (with identical bindings).
    for m in &negated_matches {
        assert!(plain_matches.contains(m));
    }
    // And no surviving match has a same-patient 'T' event in its gap.
    let compiled = negated.compile(&schema).unwrap();
    for m in &negated_matches {
        let raw = ses::core::RawMatch {
            bindings: m.bindings().to_vec(),
        };
        assert!(ses::core::passes_negations(&raw, &ward, &compiled));
    }
}

#[test]
fn streaming_respects_negations() {
    let schema = Schema::builder().attr("L", AttrType::Str).build().unwrap();
    let pattern = ses::query::parse_pattern(
        "PATTERN a THEN NOT x THEN b \
         WHERE a.L = 'A' AND b.L = 'B' AND x.L = 'X' \
         WITHIN 10 TICKS",
        TickUnit::Abstract,
    )
    .unwrap();
    let mut sm = StreamMatcher::compile(&pattern, &schema).unwrap();
    let mut matches = Vec::new();
    for (t, l) in [
        (0, "A"),
        (1, "X"),
        (2, "B"),
        (20, "A"),
        (21, "B"),
        (60, "A"),
    ] {
        matches.extend(sm.push(Timestamp::new(t), [Value::from(l)]).unwrap());
    }
    matches.extend(sm.finish());
    // The first A…B pair has an X in the gap and must not be emitted —
    // the negation is checked when the group is adjudicated, before the
    // gap event is evicted; the second pair is clean.
    assert_eq!(matches.len(), 1);
    assert_eq!(matches[0].first_event(), EventId(3));
}

#[test]
fn brute_force_bank_respects_negations() {
    let schema = Schema::builder().attr("L", AttrType::Str).build().unwrap();
    let pattern = ses::query::parse_pattern(
        "PATTERN PERMUTE(a, c) THEN NOT x THEN b \
         WHERE a.L = 'A' AND c.L = 'C' AND b.L = 'B' AND x.L = 'X' \
         WITHIN 20 TICKS",
        TickUnit::Abstract,
    )
    .unwrap();
    let mut rel = Relation::new(schema.clone());
    for (t, l) in [
        (0, "C"),
        (1, "A"),
        (2, "X"), // inside the gap → blocks
        (3, "B"),
        (30, "A"),
        (31, "C"),
        (33, "B"), // clean
    ] {
        rel.push_values(Timestamp::new(t), [Value::from(l)])
            .unwrap();
    }
    let ses_matches = Matcher::compile(&pattern, &schema).unwrap().find(&rel);
    let bank_matches = BruteForce::compile(&pattern, &schema).unwrap().find(&rel);
    assert_eq!(ses_matches.len(), 1);
    assert_eq!(ses_matches, bank_matches);
    assert_eq!(ses_matches[0].first_event(), EventId(4));
}
