//! Multi-client crash/reconnect suite for the `ses-server` binary.
//!
//! Scenario, per injected kill point k:
//!
//! 1. Start a durable server with `SES_KILL_AFTER=k` — it calls
//!    `abort()` after consuming k fresh events (no flush, no final
//!    checkpoint: the harshest crash the process can inflict on
//!    itself).
//! 2. Three subscriber clients register the same pattern; one producer
//!    streams a deterministic event sequence, learning the durable
//!    prefix from periodic `sync` acks.
//! 3. The server dies mid-stream. Everyone reconnects to a restarted
//!    server: the producer resumes ingestion from the durable count the
//!    restarted server reports, each subscriber resumes from its last
//!    received seq as cursor.
//! 4. After the stream completes, every subscriber must have observed
//!    every match exactly once: seqs strictly increasing, no gaps, no
//!    duplicates, and the full set present.
//!
//! A final scenario SIGKILLs the server from outside (no injection) to
//! cover death at an arbitrary, non-deterministic point.

use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

use ses_metrics::JsonValue;
use ses_server::Client;

const SCHEMA: &str = "ID:int,L:str";
const QUERY: &str = "PATTERN c THEN d WHERE c.L = 'C' AND d.L = 'D' WITHIN 5 TICKS";
/// Number of (C, D) pairs in the canonical stream — one match each.
const PAIRS: usize = 8;

struct ServerProc {
    child: Child,
    port: u16,
}

fn start_server(dir: &Path, kill_after: Option<u64>) -> ServerProc {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_ses-server"));
    cmd.arg("--schema")
        .arg(SCHEMA)
        .arg("--tick")
        .arg("abstract")
        .arg("--checkpoint")
        .arg(dir)
        .arg("--checkpoint-every")
        .arg("3")
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .env_remove("SES_KILL_AFTER");
    if let Some(k) = kill_after {
        cmd.env("SES_KILL_AFTER", k.to_string());
    }
    let mut child = cmd.spawn().expect("spawn ses-server");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut reader = BufReader::new(stdout);
    let mut line = String::new();
    let port = loop {
        line.clear();
        if reader.read_line(&mut line).unwrap() == 0 {
            panic!("server exited before announcing its port");
        }
        if let Some(rest) = line.trim().strip_prefix("listening on 127.0.0.1:") {
            break rest.parse::<u16>().expect("port number");
        }
    };
    // Keep draining stdout in the background so the server never blocks
    // on a full pipe.
    std::thread::spawn(move || {
        let mut sink = String::new();
        while reader.read_line(&mut sink).map(|n| n > 0).unwrap_or(false) {
            sink.clear();
        }
    });
    ServerProc { child, port }
}

fn connect(port: u16) -> Client {
    let mut c = Client::connect(&format!("127.0.0.1:{port}")).unwrap();
    c.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    c
}

/// The canonical event stream: PAIRS (C, D) pairs ten ticks apart, then
/// one flush event far past every window so the last pair finalizes.
fn events() -> Vec<(i64, Vec<JsonValue>)> {
    let mut v = Vec::new();
    for i in 0..PAIRS as i64 {
        v.push((
            10 * i,
            vec![JsonValue::Int(2 * i), JsonValue::Str("C".into())],
        ));
        v.push((
            10 * i + 1,
            vec![JsonValue::Int(2 * i + 1), JsonValue::Str("D".into())],
        ));
    }
    v.push((
        10_000,
        vec![JsonValue::Int(9_999), JsonValue::Str("X".into())],
    ));
    v
}

/// One subscriber's exactly-once ledger across reconnections.
#[derive(Default)]
struct Ledger {
    seqs: Vec<u64>,
}

impl Ledger {
    fn cursor(&self) -> u64 {
        self.seqs.last().copied().unwrap_or(0)
    }

    fn record(&mut self, m: &ses_metrics::JsonObject) {
        let seq = m.get("seq").and_then(JsonValue::as_u64).expect("seq");
        if let Some(&last) = self.seqs.last() {
            assert!(
                seq > last,
                "duplicate or reordered delivery: got seq {seq} after {last}"
            );
        }
        self.seqs.push(seq);
    }

    fn assert_complete(&self) {
        let want: Vec<u64> = (1..=PAIRS as u64).collect();
        assert_eq!(self.seqs, want, "lost or duplicated matches");
    }
}

/// Drains whatever matches are available right now into the ledger;
/// returns false once the connection is dead.
fn drain_matches(client: &mut Client, ledger: &mut Ledger) -> bool {
    client
        .set_read_timeout(Some(Duration::from_millis(200)))
        .ok();
    loop {
        match client.next_match() {
            Ok(Some(m)) => ledger.record(&m),
            Ok(None) => return false,
            Err(e) if e == "timeout" => return true,
            Err(_) => return false,
        }
    }
}

/// Blocks until the ledger holds every match (or panics on timeout).
fn drain_until_complete(client: &mut Client, ledger: &mut Ledger) {
    client
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    while ledger.cursor() < PAIRS as u64 {
        match client.next_match() {
            Ok(Some(m)) => ledger.record(&m),
            Ok(None) => panic!("connection closed before all matches arrived"),
            Err(e) => panic!("waiting for matches: {e}"),
        }
    }
}

/// Asks a fresh connection how many events are durable.
fn durable_count(port: u16) -> usize {
    let mut c = connect(port);
    let ack = c.sync().unwrap();
    ack.get("durable").and_then(JsonValue::as_u64).unwrap() as usize
}

/// Feeds events one at a time starting at `from`, syncing after each so
/// the durable prefix is known precisely. Returns Err when the server
/// dies mid-stream (the crash scenarios expect that).
fn produce(port: u16, from: usize) -> Result<(), String> {
    let mut producer = connect(port);
    for (ts, values) in events().into_iter().skip(from) {
        producer.ingest(ts, &values)?;
        producer.sync()?;
    }
    Ok(())
}

fn scenario_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ses-crash-{name}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Runs the full crash/restart/reconnect scenario for one kill point.
fn run_kill_point(kill_after: u64) {
    let dir = scenario_dir(&format!("k{kill_after}"));

    // Phase 1: server with the injected kill point.
    let mut server = start_server(&dir, Some(kill_after));
    let mut subscribers: Vec<(Client, Ledger)> = (0..3)
        .map(|_| {
            let mut c = connect(server.port);
            c.subscribe("cd", QUERY, 0).unwrap();
            (c, Ledger::default())
        })
        .collect();

    // The producer streams until the server aborts under it.
    let produced = produce(server.port, 0);
    assert!(
        produced.is_err(),
        "kill point {kill_after} never fired — server survived the whole stream"
    );
    server.child.wait().expect("server exit status");

    // Subscribers pick up whatever was delivered before the crash.
    for (c, ledger) in &mut subscribers {
        drain_matches(c, ledger);
    }

    // Phase 2: restart clean; everyone resumes.
    let mut server = start_server(&dir, None);
    let resume_from = durable_count(server.port);
    let mut resumed: Vec<(Client, Ledger)> = subscribers
        .into_iter()
        .map(|(_, ledger)| {
            let mut c = connect(server.port);
            let ack = c.subscribe("cd", "", ledger.cursor()).unwrap();
            let resend = ack.get("resend").and_then(JsonValue::as_u64).unwrap();
            let expected = ack.get("seq").and_then(JsonValue::as_u64).unwrap() - ledger.cursor();
            assert_eq!(resend, expected, "resend must cover exactly the gap");
            (c, ledger)
        })
        .collect();

    produce(server.port, resume_from).expect("clean run after restart");

    for (c, ledger) in &mut resumed {
        drain_until_complete(c, ledger);
        ledger.assert_complete();
    }

    // The durable record agrees: every event ingested exactly once.
    let mut c = connect(server.port);
    let stats = c.stats().unwrap();
    let stats = stats
        .get("stats")
        .and_then(JsonValue::as_object)
        .unwrap()
        .clone();
    assert_eq!(
        stats.get("durable_events").and_then(JsonValue::as_u64),
        Some(events().len() as u64),
        "event log must hold the canonical stream exactly once"
    );
    c.shutdown().unwrap();
    server.child.wait().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn kill_point_during_first_pairs() {
    run_kill_point(3);
}

#[test]
fn kill_point_mid_stream_between_checkpoints() {
    run_kill_point(7);
}

#[test]
fn kill_point_near_the_end_of_the_stream() {
    run_kill_point(14);
}

#[test]
fn external_sigkill_while_idle_then_resume() {
    let dir = scenario_dir("sigkill");
    let mut server = start_server(&dir, None);

    let mut sub = connect(server.port);
    sub.subscribe("cd", QUERY, 0).unwrap();
    let mut ledger = Ledger::default();

    // Ingest the first half, let it settle, then SIGKILL from outside.
    let half = events().len() / 2;
    {
        let mut producer = connect(server.port);
        for (ts, values) in events().into_iter().take(half) {
            producer.ingest(ts, &values).unwrap();
        }
        producer.sync().unwrap();
    }
    drain_matches(&mut sub, &mut ledger);
    server.child.kill().unwrap();
    server.child.wait().unwrap();

    let server2 = start_server(&dir, None);
    let resume_from = durable_count(server2.port);
    assert!(resume_from >= half, "synced prefix must be durable");
    let mut sub = connect(server2.port);
    sub.subscribe("cd", "", ledger.cursor()).unwrap();
    produce(server2.port, resume_from).unwrap();
    drain_until_complete(&mut sub, &mut ledger);
    ledger.assert_complete();

    let mut c = connect(server2.port);
    c.shutdown().unwrap();
    let mut server2 = server2;
    server2.child.wait().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}
