//! Differential suite: time-sliced execution — τ-overlapping ranges of
//! the relation matched on worker threads, raw matches attributed to
//! the slice owning their first event, one global negation-filter +
//! selection pass — returns exactly the global-scan
//! (`PartitionMode::Off`) answer, match for match, under every
//! semantics × selection combination, slice count, and thread count.
//!
//! The relations come from `seam_relation_strategy` (see `common/`):
//! timestamps cluster around anchors so slice boundaries routinely cut
//! straight through a window, forcing matches that straddle seams. The
//! pattern space includes group variables (whose absorption loop can
//! cross a seam) and — via `negated_pattern_strategy` — negated
//! variables, which key partitioning must refuse but time slicing
//! handles because adjudication runs globally over the full relation.

mod common;

use proptest::prelude::*;

use common::{
    negated_pattern_strategy, pattern_strategy, relation_strategy_with, schema,
    seam_relation_strategy,
};
use ses::prelude::*;

const MODES: [MatchSemantics; 3] = [
    MatchSemantics::Maximal,
    MatchSemantics::Definition2,
    MatchSemantics::AllRuns,
];

const SELECTIONS: [EventSelection; 2] = [
    EventSelection::SkipTillNextMatch,
    EventSelection::SkipTillAnyMatch,
];

fn answer(pat: &Pattern, rel: &Relation, options: MatcherOptions) -> Vec<Match> {
    let mut out = Matcher::with_options(pat, &schema(), options)
        .unwrap()
        .find(rel);
    out.sort();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// `find_time_sliced` equals the global scan for every semantics ×
    /// selection × slice count, on seam-clustered data. The slice-count
    /// knob doubles as the worker count, so this also sweeps the
    /// degenerate single-slice and more-slices-than-events layouts.
    #[test]
    fn sliced_equals_global_under_every_mode(
        rel in seam_relation_strategy(),
        pat in pattern_strategy(),
    ) {
        for semantics in MODES {
            for selection in SELECTIONS {
                let matcher = Matcher::with_options(&pat, &schema(), MatcherOptions {
                    semantics,
                    selection,
                    ..MatcherOptions::default()
                }).unwrap();
                let mut global = matcher.find(&rel);
                global.sort();
                for slices in [None, Some(1), Some(2), Some(3), Some(7)] {
                    let mut sliced = ses::parallel::find_time_sliced(&matcher, &rel, slices);
                    sliced.sort();
                    prop_assert_eq!(
                        &sliced, &global,
                        "{:?}/{:?} slices={:?} diverged from global",
                        semantics, selection, slices
                    );
                }
            }
        }
    }

    /// Negated patterns prove no partition key, yet time slicing stays
    /// sound for them: the per-slice runs only collect raw matches, and
    /// the negation filter adjudicates once, globally, over the full
    /// relation — a killer event is visible no matter which slice its
    /// victims came from.
    #[test]
    fn negated_patterns_slice_soundly(
        rel in seam_relation_strategy(),
        pat in negated_pattern_strategy(),
    ) {
        prop_assert!(
            pat.compile(&schema()).unwrap().partition_keys().is_empty(),
            "negations must defeat key inference"
        );
        for semantics in MODES {
            let matcher = Matcher::with_options(&pat, &schema(), MatcherOptions {
                semantics,
                ..MatcherOptions::default()
            }).unwrap();
            let mut global = matcher.find(&rel);
            global.sort();
            for slices in [None, Some(2), Some(5)] {
                let mut sliced = ses::parallel::find_time_sliced(&matcher, &rel, slices);
                sliced.sort();
                prop_assert_eq!(
                    &sliced, &global,
                    "{:?} slices={:?} diverged from global",
                    semantics, slices
                );
            }
        }
    }

    /// The public knob: `PartitionMode::TimeAuto` equals `Off` for every
    /// semantics × selection × thread count, whatever strategy it picks
    /// underneath (proven key, time slices, or global fallback). Runs of
    /// equal timestamps (gap 0) land whole duplicate groups on slice
    /// boundaries.
    #[test]
    fn time_auto_equals_off_under_every_mode(
        rel in relation_strategy_with(2..9, 0..4),
        pat in prop_oneof![pattern_strategy(), negated_pattern_strategy()],
    ) {
        for semantics in MODES {
            for selection in SELECTIONS {
                let base = MatcherOptions { semantics, selection, ..MatcherOptions::default() };
                let global = answer(&pat, &rel, base.clone());
                for threads in [None, Some(1), Some(3)] {
                    let auto = answer(&pat, &rel, MatcherOptions {
                        partition: PartitionMode::TimeAuto,
                        threads,
                        ..base.clone()
                    });
                    prop_assert_eq!(
                        &auto, &global,
                        "{:?}/{:?} threads={:?} diverged from global",
                        semantics, selection, threads
                    );
                }
            }
        }
    }

    /// Without the end-of-relation flush there is no slice-end flush
    /// point either, so `TimeAuto` must fall back to the global scan —
    /// resolving to the `Global` strategy and changing nothing.
    #[test]
    fn time_auto_falls_back_without_flush(
        rel in seam_relation_strategy(),
        pat in pattern_strategy(),
    ) {
        let base = MatcherOptions { flush_at_end: false, ..MatcherOptions::default() };
        let matcher = Matcher::with_options(&pat, &schema(), MatcherOptions {
            partition: PartitionMode::TimeAuto,
            ..base.clone()
        }).unwrap();
        prop_assert_eq!(matcher.partition_strategy(), PartitionStrategy::Global);
        let mut out = matcher.find(&rel);
        out.sort();
        prop_assert_eq!(out, answer(&pat, &rel, base));
    }
}
