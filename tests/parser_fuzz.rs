//! Robustness fuzzing: the query parser must never panic — every input,
//! however mangled, either parses or returns a positioned error.

use proptest::prelude::*;

use ses::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(1024))]

    /// Arbitrary unicode strings neither panic nor hang.
    #[test]
    fn arbitrary_strings_never_panic(input in ".{0,120}") {
        let _ = ses::query::parse_pattern(&input, TickUnit::Hour);
    }

    /// Query-shaped soup from the language's own token vocabulary —
    /// much denser coverage of parser states than uniform noise.
    #[test]
    fn token_soup_never_panics(
        tokens in proptest::collection::vec(
            prop_oneof![
                Just("PATTERN".to_string()),
                Just("PERMUTE".to_string()),
                Just("THEN".to_string()),
                Just("NOT".to_string()),
                Just("WHERE".to_string()),
                Just("AND".to_string()),
                Just("WITHIN".to_string()),
                Just("HOURS".to_string()),
                Just("TICKS".to_string()),
                Just("(".to_string()),
                Just(")".to_string()),
                Just(",".to_string()),
                Just("+".to_string()),
                Just(".".to_string()),
                Just("=".to_string()),
                Just("!=".to_string()),
                Just("<".to_string()),
                Just(">=".to_string()),
                Just("'str'".to_string()),
                Just("42".to_string()),
                Just("-7.5".to_string()),
                Just("TRUE".to_string()),
                "[a-c]{1,3}",
            ],
            0..25,
        )
    ) {
        let input = tokens.join(" ");
        let _ = ses::query::parse_pattern(&input, TickUnit::Abstract);
    }

    /// Mutations of a valid query (random truncations and splices)
    /// never panic.
    #[test]
    fn mutated_valid_query_never_panics(cut in 0usize..200, splice in ".{0,10}") {
        let base = "PATTERN PERMUTE(c, p+, d) THEN NOT x THEN b \
                    WHERE c.L = 'C' AND x.ID = c.ID AND 5 < b.V \
                    WITHIN 264 HOURS";
        let cut = cut.min(base.len());
        // Keep the cut on a char boundary (ASCII base, so trivial).
        let mutated = format!("{}{}{}", &base[..cut], splice, &base[cut..]);
        let _ = ses::query::parse_pattern(&mutated, TickUnit::Hour);
    }
}
