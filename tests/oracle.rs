//! Cross-validation against the naive reference oracle: `Γ` is
//! brute-force enumerated (every assignment of events to variables) and
//! the Definition-2 semantics are recomputed from scratch, independent of
//! any automaton machinery.

mod common;

use proptest::prelude::*;

use common::{pattern_strategy, relation_strategy, schema};
use ses::core::enumerate_candidates;
use ses::pattern::CompiledPattern;
use ses::prelude::*;

/// The oracle's condition-4 check (prefix-agreement formulation, see the
/// `ses-core::semantics` docs): γ is violated when some `γ' ∈ Γ` binds a
/// variable of γ to a strictly earlier in-extent event while agreeing
/// with γ on every binding before that event.
fn oracle_cond4(m: &[(VarId, EventId)], rel: &Relation, gamma: &[Vec<(VarId, EventId)>]) -> bool {
    let min_ts = rel.event(m[0].1).ts();
    let prefix_of = |x: &[(VarId, EventId)], cut: ses_event::Timestamp| -> Vec<(VarId, EventId)> {
        x.iter()
            .copied()
            .filter(|&(_, e)| rel.event(e).ts() < cut)
            .collect()
    };
    for &(var, event) in m {
        let bound_ts = rel.event(event).ts();
        for alt_idx in 0..rel.len() {
            let alt = EventId::from(alt_idx);
            let alt_ts = rel.event(alt).ts();
            if alt_ts <= min_ts || alt_ts >= bound_ts {
                continue;
            }
            if m.iter().any(|&(_, e)| e == alt) {
                continue;
            }
            let m_prefix = prefix_of(m, alt_ts);
            let violated = gamma
                .iter()
                .any(|other| other.contains(&(var, alt)) && prefix_of(other, alt_ts) == m_prefix);
            if violated {
                return false;
            }
        }
    }
    true
}

/// Recomputes the Definition-2 + Maximal answer from the full Γ.
fn oracle_answer(rel: &Relation, cp: &CompiledPattern) -> Vec<Match> {
    let gamma = enumerate_candidates(cp, rel, 100_000_000);
    let is_subset = |a: &[(VarId, EventId)], b: &[(VarId, EventId)]| {
        a.len() < b.len() && a.iter().all(|x| b.contains(x))
    };
    let survivors: Vec<&Vec<(VarId, EventId)>> = gamma
        .iter()
        .filter(|m| oracle_cond4(m, rel, &gamma))
        .filter(|m| {
            // Condition 5 against the full Γ.
            !gamma
                .iter()
                .any(|other| other[0] == m[0] && is_subset(m, other))
        })
        .collect();
    let mut out: Vec<Match> = survivors
        .iter()
        .filter(|m| !survivors.iter().any(|other| is_subset(m, other)))
        .map(|m| Match::from_bindings((*m).clone()))
        .collect();
    out.sort();
    out.dedup();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// The engine's Maximal answer equals the from-scratch oracle answer
    /// on tiny constant-condition patterns.
    #[test]
    fn engine_matches_oracle(rel in relation_strategy(), pat in pattern_strategy()) {
        let schema = schema();
        let cp = pat.compile(&schema).unwrap();
        let engine = Matcher::compile(&pat, &schema).unwrap();
        let mut got = engine.find(&rel);
        got.sort();
        let expected = oracle_answer(&rel, &cp);
        prop_assert_eq!(got, expected);
    }

    /// The gold standard: with complete candidate generation
    /// (skip-till-any-match), the engine's Maximal pipeline equals the
    /// from-scratch oracle for *every* generated pattern — group
    /// variables, correlations, and all.
    #[test]
    fn any_match_maximal_equals_oracle(rel in relation_strategy(), pat in pattern_strategy()) {
        let schema = schema();
        let cp = pat.compile(&schema).unwrap();
        let m = Matcher::with_options(
            &pat,
            &schema,
            MatcherOptions {
                selection: ses::core::EventSelection::SkipTillAnyMatch,
                ..MatcherOptions::default()
            },
        )
        .unwrap();
        let mut got = m.find(&rel);
        got.sort();
        prop_assert_eq!(got, oracle_answer(&rel, &cp));
    }

    /// Skip-till-any-match candidate generation is *complete*: its raw
    /// runs are exactly the substitution space Γ.
    #[test]
    fn any_match_generates_exactly_gamma(rel in relation_strategy(), pat in pattern_strategy()) {
        let schema = schema();
        let cp = pat.compile(&schema).unwrap();
        let m = Matcher::with_options(
            &pat,
            &schema,
            MatcherOptions {
                selection: ses::core::EventSelection::SkipTillAnyMatch,
                semantics: MatchSemantics::AllRuns,
                ..MatcherOptions::default()
            },
        )
        .unwrap();
        let mut got: Vec<Vec<(VarId, EventId)>> =
            m.find(&rel).iter().map(|m| m.bindings().to_vec()).collect();
        got.sort();
        let mut gamma = enumerate_candidates(&cp, &rel, 100_000_000);
        gamma.sort();
        prop_assert_eq!(got, gamma);
    }

    /// Every AllRuns result is in Γ.
    #[test]
    fn all_runs_are_in_gamma(rel in relation_strategy(), pat in pattern_strategy()) {
        let schema = schema();
        let cp = pat.compile(&schema).unwrap();
        let m = Matcher::with_options(
            &pat,
            &schema,
            MatcherOptions { semantics: MatchSemantics::AllRuns, ..MatcherOptions::default() },
        )
        .unwrap();
        let gamma = enumerate_candidates(&cp, &rel, 100_000_000);
        for mat in m.find(&rel) {
            prop_assert!(
                gamma.iter().any(|g| g.as_slice() == mat.bindings()),
                "{} not in Γ",
                mat
            );
        }
    }
}
