//! Generators shared by the property-test suites (`oracle.rs` and
//! `stream_vs_batch.rs`), so the differential stream-vs-batch harness
//! explores exactly the pattern space the oracle suite validates.

#![allow(dead_code)] // each test binary uses a subset

use proptest::prelude::*;

use ses::prelude::*;

/// Event types drawn by the generators; patterns constrain `L` to the
/// first two so `X` rows exercise the §4.5 filter.
pub const TYPES: [&str; 3] = ["A", "B", "X"];

/// The two-attribute schema all generated relations share.
pub fn schema() -> Schema {
    Schema::builder()
        .attr("L", AttrType::Str)
        .attr("ID", AttrType::Int)
        .build()
        .unwrap()
}

/// Random small relations: types from [`TYPES`], correlation ids in
/// `1..3`, strictly increasing timestamps.
pub fn relation_strategy() -> impl Strategy<Value = Relation> {
    relation_strategy_with(2..7, 1i64..3)
}

/// As [`relation_strategy`], but with configurable length and
/// inter-event gaps. A gap range starting at `0` produces runs of equal
/// timestamps — legal in a stream and a prime source of watermark
/// boundary bugs.
pub fn relation_strategy_with(
    len: std::ops::Range<usize>,
    gaps: std::ops::Range<i64>,
) -> impl Strategy<Value = Relation> {
    (
        proptest::collection::vec((0u8..3, 1i64..3), len.clone()),
        proptest::collection::vec(gaps, len),
    )
        .prop_map(|(rows, gaps)| {
            let mut rel = Relation::new(schema());
            let mut t = 0i64;
            for ((ty, id), gap) in rows.into_iter().zip(gaps) {
                t += gap;
                rel.push_values(
                    Timestamp::new(t),
                    [Value::from(TYPES[ty as usize]), Value::from(id)],
                )
                .unwrap();
            }
            rel
        })
}

/// Timestamps clustered tightly around a few well-separated anchors.
/// Time-sliced execution cuts the relation at multiples of the slice
/// width, so with anchors this dense a boundary routinely lands *inside*
/// a cluster — exactly the seam-straddling matches the differential
/// suite needs to stress first-event attribution and τ-overlap reads.
pub fn seam_relation_strategy() -> impl Strategy<Value = Relation> {
    (
        proptest::collection::vec((0u8..3, 1i64..3, 0u8..4, 0i64..4), 2..10),
        2i64..30,
    )
        .prop_map(|(rows, spacing)| {
            let mut stamped: Vec<(i64, u8, i64)> = rows
                .into_iter()
                .map(|(ty, id, anchor, jitter)| (i64::from(anchor) * spacing + jitter, ty, id))
                .collect();
            stamped.sort_unstable();
            let mut rel = Relation::new(schema());
            for (t, ty, id) in stamped {
                rel.push_values(
                    Timestamp::new(t),
                    [Value::from(TYPES[ty as usize]), Value::from(id)],
                )
                .unwrap();
            }
            rel
        })
}

/// Relations engineered to flood single adjudication groups: short (so
/// the group-variable subset explosion under skip-till-any-match stays
/// around `2^8`), with zero-gap runs of equal timestamps — the
/// duplicate-timestamp swap candidates and tie-heavy watermark seams the
/// adjudicator's condition-4 interval logic must get exactly right.
pub fn dense_relation_strategy() -> impl Strategy<Value = Relation> {
    relation_strategy_with(5..10, 0..2)
}

/// Patterns whose adjudication groups are *dense*. The leading set
/// carries a group variable, so under [`EventSelection::SkipTillAnyMatch`]
/// every subset of a same-type run that shares its first event lands in
/// one `(first event, first variable)` adjudication group — routinely
/// more than ten candidates per group on [`dense_relation_strategy`]
/// relations. Those candidates form nested containment chains
/// (condition-5 / maximality food) and pairs with equal first and last
/// bindings differing only in the middle (condition-4 prefix/swap food).
pub fn dense_pattern_strategy() -> impl Strategy<Value = Pattern> {
    (
        0u8..2,
        0u8..2,
        proptest::bool::ANY,
        proptest::bool::ANY,
        4i64..20,
    )
        .prop_map(|(ty_a, ty_b, second_set, second_plus, within)| {
            let mut b = Pattern::builder();
            b = b.set(|s| s.plus("a"));
            b = b.cond_const("a", "L", CmpOp::Eq, TYPES[ty_a as usize]);
            if second_set {
                b = b.set(move |s| if second_plus { s.plus("b") } else { s.var("b") });
                b = b.cond_const("b", "L", CmpOp::Eq, TYPES[ty_b as usize]);
            }
            b.within(Duration::ticks(within)).build().unwrap()
        })
}

/// As [`pattern_strategy`], but the gap between the two sets carries a
/// negated variable — typed via `L`, optionally also pinned to the first
/// positive variable's `ID`. Negations make
/// `CompiledPattern::partition_keys` return nothing (a killer event may
/// live under any key), so these patterns exercise exactly the paths
/// that cannot shard by key: the global fallback and time slicing.
pub fn negated_pattern_strategy() -> impl Strategy<Value = Pattern> {
    (
        proptest::collection::vec((0u8..2, proptest::bool::ANY), 1..3),
        proptest::collection::vec((0u8..2, proptest::bool::ANY), 1..2),
        0u8..3,
        proptest::bool::ANY,
        proptest::bool::ANY,
        4i64..20,
    )
        .prop_map(
            |(first, second, neg_ty, neg_correlate, correlate, within)| {
                let sets = [first, second];
                let mut b = Pattern::builder();
                for (si, set) in sets.iter().enumerate() {
                    let vars: Vec<(String, bool)> = set
                        .iter()
                        .enumerate()
                        .map(|(vi, (_, plus))| (format!("v{si}_{vi}"), *plus))
                        .collect();
                    b = b.set(move |s| {
                        for (n, plus) in &vars {
                            if *plus {
                                s.plus(n.clone());
                            } else {
                                s.var(n.clone());
                            }
                        }
                        s
                    });
                    if si == 0 {
                        b = b.negate("n0");
                    }
                }
                let mut names: Vec<String> = Vec::new();
                for (si, set) in sets.iter().enumerate() {
                    for (vi, (ty, _)) in set.iter().enumerate() {
                        b = b.cond_const(
                            format!("v{si}_{vi}"),
                            "L",
                            CmpOp::Eq,
                            TYPES[*ty as usize],
                        );
                        names.push(format!("v{si}_{vi}"));
                    }
                }
                b = b.neg_cond_const("n0", "L", CmpOp::Eq, TYPES[neg_ty as usize]);
                if neg_correlate {
                    b = b.neg_cond_vars("n0", "ID", CmpOp::Eq, names[0].clone(), "ID");
                }
                // Same greedy-safety rule as `pattern_strategy`.
                let has_group = sets.iter().flatten().any(|(_, plus)| *plus);
                if correlate && !has_group {
                    for i in 1..names.len() {
                        for j in 0..i {
                            b = b.cond_vars(
                                names[j].clone(),
                                "ID",
                                CmpOp::Eq,
                                names[i].clone(),
                                "ID",
                            );
                        }
                    }
                }
                b.within(Duration::ticks(within)).build().unwrap()
            },
        )
}

/// Patterns for the analyzer differential suite: 1–2 sets, ≤ 3 plain
/// variables (no groups, so every selection strategy is complete), each
/// variable optionally typed via `L`, plus random constant and order
/// conditions on `ID`. The extra conditions make every analyzer pass
/// fire with useful frequency: overlapping constants trigger SES002
/// redundancy, contradictory ones SES001 emptiness (both the original
/// and the rewritten pattern must then match nothing), and `≤`/`<`/`=`
/// links between variables feed constant propagation.
pub fn analyzer_pattern_strategy() -> impl Strategy<Value = Pattern> {
    const OPS: [CmpOp; 6] = [
        CmpOp::Eq,
        CmpOp::Ne,
        CmpOp::Lt,
        CmpOp::Le,
        CmpOp::Gt,
        CmpOp::Ge,
    ];
    const LINK_OPS: [CmpOp; 3] = [CmpOp::Eq, CmpOp::Le, CmpOp::Lt];
    (
        proptest::collection::vec(
            proptest::collection::vec((0u8..2, proptest::bool::ANY), 1..3),
            1..3,
        ),
        4i64..20,
        proptest::collection::vec((0u8..3, 0u8..6, 0i64..4), 0..4),
        proptest::collection::vec((0u8..3, 0u8..3, 0u8..3), 0..3),
    )
        .prop_filter("≤3 vars", |(sets, ..)| {
            sets.iter().map(Vec::len).sum::<usize>() <= 3
        })
        .prop_map(|(sets, within, consts, links)| {
            let mut b = Pattern::builder();
            for (si, set) in sets.iter().enumerate() {
                let vars: Vec<String> = (0..set.len()).map(|vi| format!("v{si}_{vi}")).collect();
                b = b.set(move |s| {
                    for n in &vars {
                        s.var(n.clone());
                    }
                    s
                });
            }
            let mut names: Vec<String> = Vec::new();
            for (si, set) in sets.iter().enumerate() {
                for (vi, (ty, typed)) in set.iter().enumerate() {
                    let name = format!("v{si}_{vi}");
                    if *typed {
                        b = b.cond_const(name.clone(), "L", CmpOp::Eq, TYPES[*ty as usize]);
                    }
                    names.push(name);
                }
            }
            for (var, op, c) in consts {
                let v = &names[var as usize % names.len()];
                b = b.cond_const(v.clone(), "ID", OPS[op as usize], c);
            }
            for (op, from, to) in links {
                let (f, t) = (from as usize % names.len(), to as usize % names.len());
                if f != t {
                    b = b.cond_vars(
                        names[f].clone(),
                        "ID",
                        LINK_OPS[op as usize],
                        names[t].clone(),
                        "ID",
                    );
                }
            }
            b.within(Duration::ticks(within)).build().unwrap()
        })
}

/// Small *sets* of correlated patterns for the multi-pattern bank
/// suites: 2–4 patterns drawn from [`pattern_strategy`], so they share
/// event types from [`TYPES`] (overlapping routing), plus optionally
/// one pattern pinned to a constant `ID` no generated relation carries
/// (ids are `1..3`, the pin is `7`) — a pattern the predicate index
/// may route nothing to, riding along with live ones.
pub fn pattern_set_strategy() -> impl Strategy<Value = Vec<Pattern>> {
    (
        proptest::collection::vec(pattern_strategy(), 2..4),
        proptest::bool::ANY,
    )
        .prop_map(|(mut patterns, add_foreign)| {
            if add_foreign {
                patterns.push(
                    Pattern::builder()
                        .set(|s| s.var("f"))
                        .cond_const("f", "L", CmpOp::Eq, TYPES[0])
                        .cond_const("f", "ID", CmpOp::Eq, 7)
                        .within(Duration::ticks(5))
                        .build()
                        .unwrap(),
                );
            }
            patterns
        })
}

/// As [`pattern_set_strategy`], but with a tunable shared-prefix
/// overlap knob: `overlap_pct`% of the generated patterns (rounded up)
/// are rebuilt to open with one common leading event set — identical
/// declaration order, types, and window τ — diverging only in a typed
/// suffix variable. That is exactly the shape `PatternBank`'s
/// structural sharing detects: overlapped patterns land in one prefix
/// group (or, when their suffixes also coincide, deduplicate
/// entirely), so the sharing differential suite gets dedup members,
/// prefix members, and untouched independents in one set. The
/// `ses-workload` bank generator exposes the same knob for benches
/// (`BankConfig::overlap`).
pub fn pattern_set_strategy_with_overlap(overlap_pct: u8) -> impl Strategy<Value = Vec<Pattern>> {
    (
        pattern_set_strategy(),
        proptest::collection::vec((0u8..2, proptest::bool::ANY), 1..3),
        4i64..20,
        proptest::collection::vec(0u8..3, 8),
        proptest::bool::ANY,
    )
        .prop_map(
            move |(mut patterns, prefix, within, suffix_tys, correlate)| {
                let n = patterns.len();
                let k = n.min((n * overlap_pct as usize).div_ceil(100));
                for (i, pattern) in patterns.iter_mut().take(k).enumerate() {
                    let mut b = Pattern::builder();
                    let vars: Vec<(String, bool)> = prefix
                        .iter()
                        .enumerate()
                        .map(|(vi, (_, plus))| (format!("s{vi}"), *plus))
                        .collect();
                    let set_vars = vars.clone();
                    b = b.set(move |s| {
                        for (name, plus) in &set_vars {
                            if *plus {
                                s.plus(name.clone());
                            } else {
                                s.var(name.clone());
                            }
                        }
                        s
                    });
                    b = b.set(|s| s.var("t"));
                    for (vi, (ty, _)) in prefix.iter().enumerate() {
                        b = b.cond_const(format!("s{vi}"), "L", CmpOp::Eq, TYPES[*ty as usize]);
                    }
                    b = b.cond_const(
                        "t",
                        "L",
                        CmpOp::Eq,
                        TYPES[suffix_tys[i % suffix_tys.len()] as usize],
                    );
                    // Same greedy-safety rule as `pattern_strategy`.
                    let has_group = prefix.iter().any(|(_, plus)| *plus);
                    if correlate && !has_group {
                        b = b.cond_vars("s0", "ID", CmpOp::Eq, "t", "ID");
                    }
                    *pattern = b.within(Duration::ticks(within)).build().unwrap();
                }
                patterns
            },
        )
}

/// Tiny patterns: 1–2 sets, ≤ 3 variables total, constant type
/// conditions (possibly overlapping ⇒ nondeterminism), optionally a
/// group variable and an ID-equality clique (greedy-safe correlation).
pub fn pattern_strategy() -> impl Strategy<Value = Pattern> {
    (
        proptest::collection::vec(
            proptest::collection::vec((0u8..2, proptest::bool::ANY), 1..3),
            1..3,
        ),
        4i64..20,
        proptest::bool::ANY,
    )
        .prop_filter("≤3 vars", |(sets, _, _)| {
            sets.iter().map(Vec::len).sum::<usize>() <= 3
        })
        .prop_map(|(sets, within, correlate)| {
            let mut b = Pattern::builder();
            for (si, set) in sets.iter().enumerate() {
                let vars: Vec<(String, bool)> = set
                    .iter()
                    .enumerate()
                    .map(|(vi, (_, plus))| (format!("v{si}_{vi}"), *plus))
                    .collect();
                b = b.set(move |s| {
                    for (n, plus) in &vars {
                        if *plus {
                            s.plus(n.clone());
                        } else {
                            s.var(n.clone());
                        }
                    }
                    s
                });
            }
            let mut names: Vec<String> = Vec::new();
            for (si, set) in sets.iter().enumerate() {
                for (vi, (ty, _)) in set.iter().enumerate() {
                    b = b.cond_const(format!("v{si}_{vi}"), "L", CmpOp::Eq, TYPES[*ty as usize]);
                    names.push(format!("v{si}_{vi}"));
                }
            }
            // Correlate only when the pattern has no group variables: a
            // correlated group loop can absorb an incompatible event
            // *before* the correlating variable binds, derailing greedy
            // execution — Definition 2 then admits matches Algorithm 1
            // cannot find (skip-till-any-match recovers them; see
            // `any_match_maximal_equals_oracle`).
            let has_group = sets.iter().flatten().any(|(_, plus)| *plus);
            if correlate && !has_group {
                for i in 1..names.len() {
                    for j in 0..i {
                        b = b.cond_vars(names[j].clone(), "ID", CmpOp::Eq, names[i].clone(), "ID");
                    }
                }
            }
            b.within(Duration::ticks(within)).build().unwrap()
        })
}
