//! Quickstart: define a schema, load events, match an SES pattern.
//!
//! Run with: `cargo run --example quickstart`

use ses::prelude::*;

fn main() {
    // 1. A schema: login events with a user id and an action label.
    let schema = Schema::builder()
        .attr("USER", AttrType::Int)
        .attr("ACTION", AttrType::Str)
        .build()
        .expect("valid schema");

    // 2. A relation: events must arrive in timestamp order.
    let mut relation = Relation::new(schema.clone());
    for (t, user, action) in [
        (0, 1, "badge_in"),
        (2, 1, "vpn_connect"),
        (3, 2, "badge_in"),
        (5, 1, "download"),
        (6, 2, "download"),
        (9, 2, "vpn_connect"), // vpn *after* download — different order!
        (12, 2, "logout"),
        (14, 1, "logout"),
    ] {
        relation
            .push_values(Timestamp::new(t), [Value::from(user), Value::from(action)])
            .expect("rows are well-typed and chronological");
    }

    // 3. An SES pattern: a badge-in, a VPN connect, and a download by the
    //    same user IN ANY ORDER, followed by that user's logout, all
    //    within 20 ticks. The any-order set is what plain sequence
    //    matchers cannot express without enumerating all 3! orderings.
    let pattern = Pattern::builder()
        .set(|s| s.var("badge").var("vpn").var("dl"))
        .set(|s| s.var("out"))
        .cond_const("badge", "ACTION", CmpOp::Eq, "badge_in")
        .cond_const("vpn", "ACTION", CmpOp::Eq, "vpn_connect")
        .cond_const("dl", "ACTION", CmpOp::Eq, "download")
        .cond_const("out", "ACTION", CmpOp::Eq, "logout")
        // Correlation conditions form a clique over the any-order set:
        // under skip-till-next-match the automaton consumes greedily, so
        // every pair of set variables should be related (see the
        // rfid_tracking example for what happens otherwise).
        .cond_vars("badge", "USER", CmpOp::Eq, "vpn", "USER")
        .cond_vars("badge", "USER", CmpOp::Eq, "dl", "USER")
        .cond_vars("vpn", "USER", CmpOp::Eq, "dl", "USER")
        .cond_vars("badge", "USER", CmpOp::Eq, "out", "USER")
        .within(Duration::ticks(20))
        .build()
        .expect("valid pattern");

    println!("pattern: {pattern}\n");

    // 4. Compile once, match as often as you like.
    let matcher = Matcher::compile(&pattern, &schema).expect("pattern compiles against schema");
    let matches = matcher.find(&relation);

    println!("{} match(es):", matches.len());
    for m in &matches {
        println!("  {}", m.display_with(&pattern));
        for &(var, event) in m.bindings() {
            println!(
                "    {:<6} = {}",
                pattern.var_name(var),
                relation.event(event)
            );
        }
    }

    // Both users match, although their vpn/download orders differ.
    assert_eq!(matches.len(), 2);
}
