//! RFID warehouse tracking: parcels must pass pack, weigh, and label — in
//! any order — before the ship gate. Incomplete journeys must not match.
//!
//! Run with: `cargo run --example rfid_tracking`

use std::collections::BTreeSet;

use ses::prelude::*;
use ses::workload::rfid;

fn main() {
    let cfg = rfid::RfidConfig::small();
    let tape = rfid::generate(&cfg);
    println!(
        "RFID tape: {} reads, {} complete + {} incomplete parcels",
        tape.len(),
        cfg.complete_parcels,
        cfg.incomplete_parcels
    );

    let pattern = rfid::fulfillment_pattern(Duration::ticks(cfg.journey_seconds * 2));
    println!("pattern: {pattern}\n");

    let matcher = Matcher::compile(&pattern, tape.schema()).expect("pattern compiles");
    let matches = matcher.find(&tape);

    // Which tags were matched?
    let matched_tags: BTreeSet<i64> = matches
        .iter()
        .map(|m| {
            match tape
                .event(m.first_event())
                .value_by_name("TAG", tape.schema())
                .unwrap()
            {
                Value::Int(t) => *t,
                _ => unreachable!("TAG is INT"),
            }
        })
        .collect();

    println!("parcels matched: {}", matched_tags.len());
    // Tags 1..=complete are complete; the rest skipped a station.
    let complete: BTreeSet<i64> = (1..=cfg.complete_parcels as i64).collect();
    assert_eq!(matched_tags, complete, "exactly the complete parcels match");
    println!("all complete parcels matched, no incomplete parcel matched ✓");

    // Show the variety of station orders the single SES pattern covered.
    let mut orders: BTreeSet<String> = BTreeSet::new();
    for m in &matches {
        let order: Vec<String> = m
            .events()
            .map(|e| {
                tape.event(e)
                    .value_by_name("LOC", tape.schema())
                    .unwrap()
                    .to_string()
            })
            .collect();
        orders.insert(order.join(" → "));
    }
    println!("\ndistinct station orders covered by ONE pattern:");
    for o in &orders {
        println!("  {o}");
    }
    assert!(orders.len() > 1, "the generator permutes station visits");

    // A sequence-only engine would need one pattern per order:
    println!(
        "\n(a sequence-only engine would need {} chain patterns)",
        ses::baseline::sequence_count(&pattern)
    );
}
