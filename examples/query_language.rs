//! The textual query language: parsing, helpful errors, and automaton
//! introspection.
//!
//! Run with: `cargo run --example query_language`

use ses::prelude::*;
use ses::workload::paper;

fn main() {
    // Query Q1 in the PERMUTE syntax (the SQL change proposal's operator
    // the paper notes was never implemented).
    let text = "\
PATTERN PERMUTE(c, p+, d) THEN b
WHERE c.L = 'C' AND d.L = 'D' AND p.L = 'P' AND b.L = 'B'
  AND c.ID = p.ID AND c.ID = d.ID AND d.ID = b.ID
WITHIN 11 DAYS  -- 264 hours";

    println!("query text:\n{text}\n");
    let pattern =
        ses::query::parse_pattern(text, TickUnit::Hour).expect("the query is well-formed");
    println!("lowered pattern: {pattern}");
    assert_eq!(pattern.within(), Duration::hours(264)); // 11 DAYS @ hour ticks

    // It matches Figure 1 exactly like the programmatic pattern.
    let relation = paper::figure1();
    let matcher = Matcher::compile(&pattern, relation.schema()).expect("compiles");
    let matches = matcher.find(&relation);
    assert_eq!(matches.len(), 2);
    println!("matches on Figure 1: {}\n", matches.len());

    // The automaton, as Graphviz (paste into `dot -Tsvg`).
    println!("automaton in DOT format:\n{}", matcher.automaton().to_dot());

    // Error reporting carries positions.
    println!("error examples:");
    for bad in [
        "PATTERN PERMUTE(a a)",        // missing comma
        "PATTERN a WHERE a.X = ",      // missing operand
        "PATTERN a WHERE zz.L = 'C'",  // unknown variable
        "PATTERN a THEN a",            // duplicate variable
        "PATTERN a WITHIN 90 SECONDS", // not a whole number of hour-ticks
        "PATTERN a WHERE 1 = 2",       // constant comparison
    ] {
        let err = ses::query::parse_pattern(bad, TickUnit::Hour).unwrap_err();
        println!("  {bad:<32} → {err}");
    }
}
