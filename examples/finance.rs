//! Financial surveillance: detect accumulation motifs — a large BUY and a
//! large SELL of the same symbol in ANY order, followed by a price alert.
//!
//! Demonstrates the brute-force alternative (§5.2 of the paper): the same
//! query needs a bank of 2!·1! sequence automata, and the bank grows
//! factorially with the set size.
//!
//! Run with: `cargo run --example finance`

use ses::prelude::*;
use ses::workload::finance;

fn main() {
    let cfg = finance::FinanceConfig::small();
    let tape = finance::generate(&cfg);
    println!(
        "trade tape: {} events over {} minutes ({} planted motifs)",
        tape.len(),
        cfg.minutes,
        cfg.motifs
    );

    let pattern = finance::accumulation_pattern(cfg.large_qty, Duration::ticks(60));
    println!("pattern: {pattern}\n");

    // SES automaton: one automaton, 2^2 + 1 = 5 states.
    let matcher = Matcher::compile(&pattern, tape.schema()).expect("pattern compiles");
    let mut probe = CountingProbe::new();
    let matches = matcher.find_with_probe(&tape, &mut probe);

    println!("SES automaton: {} states", matcher.automaton().num_states());
    println!("matches found: {}", matches.len());
    for m in matches.iter().take(5) {
        let sym = tape
            .event(m.first_event())
            .value_by_name("SYM", tape.schema())
            .unwrap();
        println!(
            "  {} {}  span {} min",
            sym,
            m.display_with(&pattern),
            m.span(&tape).as_ticks()
        );
    }
    if matches.len() > 5 {
        println!("  … and {} more", matches.len() - 5);
    }
    assert!(
        matches.len() >= cfg.motifs,
        "every planted motif must be found (got {} of {})",
        matches.len(),
        cfg.motifs
    );

    // The brute-force alternative needs |V1|!·|V2|! chain automata and
    // still finds exactly the same matches.
    let bank = BruteForce::compile(&pattern, tape.schema()).expect("bank compiles");
    println!(
        "\nbrute force needs {} sequence automata for the same query",
        bank.num_automata()
    );
    let mut bank_matches = bank.find(&tape);
    let mut ses_matches = matches.clone();
    bank_matches.sort();
    ses_matches.sort();
    assert_eq!(bank_matches, ses_matches, "bank and SES agree");
    println!("bank results agree with the SES automaton ✓");

    // Engine telemetry.
    println!(
        "\nengine: {} events read, {} filtered ({}%), max |Ω| = {}",
        probe.events_read,
        probe.events_filtered,
        (probe.filter_rate() * 100.0).round(),
        probe.omega_max
    );
}
