//! The paper's running example, end to end: Figure 1's event relation,
//! Query Q1, the SES automaton of Figure 5, and the matching
//! substitutions of Example 1.
//!
//! Run with: `cargo run --example chemotherapy`

use ses::prelude::*;
use ses::workload::{chemo, paper};

fn main() {
    // ------------------------------------------------------------------
    // Part 1 — Figure 1, verbatim.
    // ------------------------------------------------------------------
    let relation = paper::figure1();
    println!("Figure 1 — chemotherapy events:");
    print!("{relation}");

    let q1 = paper::query_q1();
    println!("\nQuery Q1 as an SES pattern:\n  {q1}\n");

    let matcher = Matcher::compile(&q1, relation.schema()).expect("Q1 compiles");
    let automaton = matcher.automaton();
    println!(
        "SES automaton (Figure 5): {} states, {} transitions, accept = {}",
        automaton.num_states(),
        automaton.num_transitions(),
        automaton.state_label(automaton.accept()),
    );

    // Static analysis (Theorem 1 applies: pairwise mutually exclusive).
    let analysis = automaton.pattern().analysis();
    for (i, class) in analysis.set_classes().iter().enumerate() {
        println!("  V{}: predicted |Ω| bound {class}", i + 1);
    }

    let mut probe = CountingProbe::new();
    let matches = matcher.find_with_probe(&relation, &mut probe);
    println!("\nmatching substitutions (Example 1's intended results):");
    for m in &matches {
        let patient = relation
            .event(m.first_event())
            .value_by_name("ID", relation.schema());
        println!(
            "  patient {}: {}  (span {} hours)",
            patient.expect("ID exists"),
            m.display_with(&q1),
            m.span(&relation).as_ticks(),
        );
    }
    println!(
        "engine: max |Ω| = {}, {} transitions evaluated, {} events filtered",
        probe.omega_max, probe.transitions_evaluated, probe.events_filtered,
    );
    assert_eq!(matches.len(), 2);
    assert_eq!(
        matches[0].display_with(&q1),
        "{c/e1, d/e3, p+/e4, p+/e9, b/e12}"
    );
    assert_eq!(
        matches[1].display_with(&q1),
        "{p+/e6, d/e7, c/e8, p+/e10, p+/e11, b/e13}"
    );

    // ------------------------------------------------------------------
    // Part 2 — the same query over a whole synthetic ward.
    // ------------------------------------------------------------------
    let ward = chemo::generate(&chemo::ChemoConfig::small());
    println!(
        "\nsynthetic ward: {} events from {} patients, W = {} at τ = 264h",
        ward.len(),
        chemo::ChemoConfig::small().patients,
        ward.window_size(Duration::hours(264)),
    );
    let matches = matcher.find(&ward);
    println!("Q1 matches in the ward: {}", matches.len());
    assert!(
        !matches.is_empty(),
        "every generated cycle administers C, P, D and follows up with B"
    );

    // Every match is single-patient (θ5–θ7) and within the window.
    for m in &matches {
        let ids: std::collections::BTreeSet<String> = m
            .events()
            .map(|e| {
                ward.event(e)
                    .value_by_name("ID", ward.schema())
                    .unwrap()
                    .to_string()
            })
            .collect();
        assert_eq!(ids.len(), 1, "matches never mix patients");
        assert!(m.span(&ward) <= Duration::hours(264));
    }
    println!("all matches are single-patient and within τ ✓");

    // ------------------------------------------------------------------
    // Part 3 — extensions: aggregation measures and negation.
    // ------------------------------------------------------------------
    let v_attr = ward.schema().attr_id("V").expect("dose attribute");
    let p_var = q1.var_id("p").expect("group variable p");
    if let Some(m) = matches.first() {
        use ses::core::{aggregate, Aggregate};
        let n = aggregate(m, p_var, v_attr, Aggregate::Count, &ward).unwrap();
        let total = aggregate(m, p_var, v_attr, Aggregate::Sum, &ward).unwrap();
        let avg = aggregate(m, p_var, v_attr, Aggregate::Avg, &ward).unwrap();
        println!("\nfirst match: {n} Prednisone administrations, {total} mg total ({avg} mg avg)");
    }

    // Q1 with a gap constraint: no same-patient fever reading ('T')
    // between the administrations and the blood count.
    let q1_no_fever = ses::query::parse_pattern(
        "PATTERN PERMUTE(c, p+, d) THEN NOT fever THEN b \
         WHERE c.L = 'C' AND d.L = 'D' AND p.L = 'P' AND b.L = 'B' \
           AND c.ID = p.ID AND c.ID = d.ID AND d.ID = b.ID \
           AND fever.L = 'T' AND fever.ID = c.ID \
         WITHIN 264 HOURS",
        TickUnit::Hour,
    )
    .expect("negated Q1 parses");
    let calm = Matcher::compile(&q1_no_fever, ward.schema())
        .expect("compiles")
        .find(&ward);
    println!(
        "cycles without an intervening fever reading: {} of {}",
        calm.len(),
        matches.len()
    );
    assert!(calm.len() <= matches.len());
}
