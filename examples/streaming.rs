//! Push-based streaming: feed events one at a time and receive finalized
//! matches as soon as the watermark closes their windows — while old
//! events are evicted to keep memory bounded.
//!
//! Run with: `cargo run --example streaming`

use ses::prelude::*;

fn main() {
    // Server monitoring: a deploy and a config change in any order,
    // followed by an error spike on the same host within 30 minutes.
    let schema = Schema::builder()
        .attr("HOST", AttrType::Str)
        .attr("KIND", AttrType::Str)
        .build()
        .expect("valid schema");
    let pattern = Pattern::builder()
        .set(|s| s.var("deploy").var("cfg"))
        .set(|s| s.var("spike"))
        .cond_const("deploy", "KIND", CmpOp::Eq, "deploy")
        .cond_const("cfg", "KIND", CmpOp::Eq, "config_change")
        .cond_const("spike", "KIND", CmpOp::Eq, "error_spike")
        .cond_vars("deploy", "HOST", CmpOp::Eq, "cfg", "HOST")
        .cond_vars("deploy", "HOST", CmpOp::Eq, "spike", "HOST")
        .within(Duration::ticks(30))
        .build()
        .expect("valid pattern");

    let mut stream =
        StreamMatcher::compile(&pattern, &schema).expect("pattern compiles against schema");

    // Minute-granularity feed. Note web-1's config change precedes its
    // deploy, while web-2 deploys first — one pattern covers both.
    let feed = [
        (0, "web-1", "config_change"),
        (2, "web-2", "deploy"),
        (3, "web-1", "deploy"),
        (5, "web-2", "config_change"),
        (7, "web-1", "heartbeat"),
        (9, "web-1", "error_spike"),
        (11, "web-2", "heartbeat"),
        (14, "web-2", "error_spike"),
        (60, "web-1", "heartbeat"), // far future: expires open windows
    ];

    let mut incidents = 0;
    for (t, host, kind) in feed {
        let emitted = stream
            .push(Timestamp::new(t), [Value::from(host), Value::from(kind)])
            .expect("events arrive in order");
        println!(
            "t={t:<3} {host:<6} {kind:<14} |Ω|={:<3} retained={:<3} evicted={:<3} emitted={}",
            stream.active_instances(),
            stream.retained_events(),
            stream.evicted_events(),
            emitted.len()
        );
        for m in &emitted {
            println!("      ⚠ incident finalized: {}", m.display_with(&pattern));
        }
        incidents += emitted.len();
    }

    // End of stream: flush still-open accepting instances and finalize
    // whatever the watermark had not yet decided.
    let final_matches = stream.finish();
    println!("\nflushed at end of stream: {}", final_matches.len());
    for m in &final_matches {
        println!("  {}", m.display_with(&pattern));
    }
    incidents += final_matches.len();
    assert_eq!(incidents, 2, "one incident per host");
}
