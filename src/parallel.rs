//! Parallel partitioned matching.
//!
//! When a pattern correlates all variables on one key (Q1's patient id,
//! the RFID tag, the clickstream user), matches never span two key
//! values, so the relation can be split per key and matched on worker
//! threads. [`find_partitioned`] does the split, fans partitions out over
//! [`std::thread::scope`], and maps the per-partition matches back to the
//! original relation's event ids — the result is set-equal to matching
//! the whole relation directly (asserted by the in-module tests and the
//! partitioned-vs-global check in `tests/pipeline.rs`).
//!
//! **Soundness caveat**: partitioning is only equivalent when the
//! pattern's conditions confine every match to a single key value;
//! the helper cannot check that contract for you.

use std::collections::HashMap;
use std::sync::Arc;

use ses_core::{Match, Matcher};
use ses_event::{AttrId, EventId, Relation, Value};

/// A hashable view of a partitioning attribute's value. [`Value`] itself
/// is not `Hash` (floats), so partitioning hashes this instead — without
/// the per-event `String` rendering it once did: ints, bools, and floats
/// copy bits, and strings bump the existing `Arc` refcount.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum PartitionKey {
    Int(i64),
    /// Float partitions compare by bit pattern — exact-value grouping,
    /// which is the only sensible equality for a partition key.
    Bits(u64),
    Str(Arc<str>),
    Bool(bool),
}

impl PartitionKey {
    fn of(value: &Value) -> PartitionKey {
        match value {
            Value::Int(i) => PartitionKey::Int(*i),
            Value::Float(f) => PartitionKey::Bits(f.to_bits()),
            Value::Str(s) => PartitionKey::Str(Arc::clone(s)),
            Value::Bool(b) => PartitionKey::Bool(*b),
        }
    }
}

/// Matches `relation` per distinct value of `key`, in parallel, and
/// returns all matches with bindings expressed in the *original*
/// relation's event ids, sorted canonically.
pub fn find_partitioned(matcher: &Matcher, relation: &Relation, key: AttrId) -> Vec<Match> {
    // Split into per-key partitions, remembering each partition event's
    // original id.
    let mut order: Vec<PartitionKey> = Vec::new();
    let mut partitions: HashMap<PartitionKey, (Relation, Vec<EventId>)> = HashMap::new();
    for (id, event) in relation.iter() {
        let k = PartitionKey::of(event.value(key));
        let entry = partitions.entry(k.clone()).or_insert_with(|| {
            order.push(k);
            (Relation::new(relation.schema().clone()), Vec::new())
        });
        entry
            .0
            .push_event(event.clone())
            .expect("a linear scan preserves chronological order");
        entry.1.push(id);
    }

    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let work: Vec<(&Relation, &[EventId])> = order
        .iter()
        .map(|k| {
            let (rel, ids) = &partitions[k];
            (rel, ids.as_slice())
        })
        .collect();

    let mut all: Vec<Match> = std::thread::scope(|scope| {
        let chunk = work.len().div_ceil(workers).max(1);
        let handles: Vec<_> = work
            .chunks(chunk)
            .map(|chunk| {
                scope.spawn(move || {
                    let mut out = Vec::new();
                    for (rel, ids) in chunk {
                        for m in matcher.find(rel) {
                            // Remap partition-local event ids to global.
                            let bindings = m
                                .bindings()
                                .iter()
                                .map(|&(v, e)| (v, ids[e.index()]))
                                .collect();
                            out.push(Match::from_bindings(bindings));
                        }
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("partition workers do not panic"))
            .collect()
    });
    all.sort();
    all
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partitioned_equals_global_on_q1() {
        let ward = crate::workload::chemo::generate(&crate::workload::chemo::ChemoConfig::small());
        let q1 = crate::workload::paper::query_q1();
        let matcher = Matcher::compile(&q1, ward.schema()).unwrap();
        let key = ward.schema().attr_id("ID").unwrap();

        let mut global = matcher.find(&ward);
        global.sort();
        let parallel = find_partitioned(&matcher, &ward, key);
        assert_eq!(parallel, global);
        assert!(!parallel.is_empty());
    }

    #[test]
    fn partitioned_equals_global_on_string_key() {
        // A `Str` partition key exercises the refcount-bump path of
        // `PartitionKey` (no per-event allocation).
        use ses_event::{AttrType, CmpOp, Duration, Schema, Timestamp, Value};
        use ses_pattern::Pattern;

        let schema = Schema::builder()
            .attr("HOST", AttrType::Str)
            .attr("KIND", AttrType::Str)
            .build()
            .unwrap();
        let pattern = Pattern::builder()
            .set(|s| s.var("d"))
            .set(|s| s.var("e"))
            .cond_const("d", "KIND", CmpOp::Eq, "deploy")
            .cond_const("e", "KIND", CmpOp::Eq, "error")
            .cond_vars("d", "HOST", CmpOp::Eq, "e", "HOST")
            .within(Duration::ticks(10))
            .build()
            .unwrap();
        let mut rel = Relation::new(schema.clone());
        for (t, host, kind) in [
            (0, "web-1", "deploy"),
            (1, "web-2", "deploy"),
            (3, "web-1", "error"),
            (4, "web-2", "error"),
            (20, "web-1", "deploy"),
            (25, "web-1", "error"),
        ] {
            rel.push_values(Timestamp::new(t), [Value::from(host), Value::from(kind)])
                .unwrap();
        }
        let matcher = Matcher::compile(&pattern, &schema).unwrap();
        let key = schema.attr_id("HOST").unwrap();

        let mut global = matcher.find(&rel);
        global.sort();
        let parallel = find_partitioned(&matcher, &rel, key);
        assert_eq!(parallel, global);
        assert_eq!(parallel.len(), 3);
    }

    #[test]
    fn partition_keys_group_exact_values() {
        use ses_event::Value;
        let a = PartitionKey::of(&Value::from("web-1"));
        let b = PartitionKey::of(&Value::from("web-1"));
        assert_eq!(a, b);
        assert_ne!(a, PartitionKey::of(&Value::from("web-2")));
        // Floats group by bit pattern; ints and bools by value.
        assert_eq!(
            PartitionKey::of(&Value::Float(1.5)),
            PartitionKey::of(&Value::Float(1.5))
        );
        assert_ne!(
            PartitionKey::of(&Value::Float(0.0)),
            PartitionKey::of(&Value::Float(-0.0)),
            "distinct bit patterns are distinct partitions"
        );
        assert_eq!(PartitionKey::of(&Value::Int(3)), PartitionKey::Int(3));
        assert_eq!(
            PartitionKey::of(&Value::Bool(true)),
            PartitionKey::Bool(true)
        );
    }

    #[test]
    fn empty_relation() {
        let schema = crate::workload::paper::schema();
        let q1 = crate::workload::paper::query_q1();
        let matcher = Matcher::compile(&q1, &schema).unwrap();
        let rel = Relation::new(schema.clone());
        let key = schema.attr_id("ID").unwrap();
        assert!(find_partitioned(&matcher, &rel, key).is_empty());
    }
}
