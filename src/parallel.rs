//! Parallel partitioned matching.
//!
//! When a pattern correlates all variables on one key (Q1's patient id,
//! the RFID tag, the clickstream user), matches never span two key
//! values, so the relation can be split per key and matched on worker
//! threads. [`find_partitioned`] does the split, fans partitions out over
//! [`std::thread::scope`], and maps the per-partition matches back to the
//! original relation's event ids — the result is set-equal to matching
//! the whole relation directly (asserted by the in-module tests and the
//! partitioned-vs-global check in `tests/pipeline.rs`).
//!
//! **Soundness caveat**: partitioning is only equivalent when the
//! pattern's conditions confine every match to a single key value;
//! the helper cannot check that contract for you.

use std::collections::HashMap;

use ses_core::{Match, Matcher};
use ses_event::{AttrId, EventId, Relation};

/// Matches `relation` per distinct value of `key`, in parallel, and
/// returns all matches with bindings expressed in the *original*
/// relation's event ids, sorted canonically.
pub fn find_partitioned(matcher: &Matcher, relation: &Relation, key: AttrId) -> Vec<Match> {
    // Split into per-key partitions, remembering each partition event's
    // original id.
    let mut order: Vec<String> = Vec::new();
    let mut partitions: HashMap<String, (Relation, Vec<EventId>)> = HashMap::new();
    for (id, event) in relation.iter() {
        let k = event.value(key).to_string();
        let entry = partitions.entry(k.clone()).or_insert_with(|| {
            order.push(k);
            (Relation::new(relation.schema().clone()), Vec::new())
        });
        entry
            .0
            .push_event(event.clone())
            .expect("a linear scan preserves chronological order");
        entry.1.push(id);
    }

    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let work: Vec<(&Relation, &[EventId])> = order
        .iter()
        .map(|k| {
            let (rel, ids) = &partitions[k];
            (rel, ids.as_slice())
        })
        .collect();

    let mut all: Vec<Match> = std::thread::scope(|scope| {
        let chunk = work.len().div_ceil(workers).max(1);
        let handles: Vec<_> = work
            .chunks(chunk)
            .map(|chunk| {
                scope.spawn(move || {
                    let mut out = Vec::new();
                    for (rel, ids) in chunk {
                        for m in matcher.find(rel) {
                            // Remap partition-local event ids to global.
                            let bindings = m
                                .bindings()
                                .iter()
                                .map(|&(v, e)| (v, ids[e.index()]))
                                .collect();
                            out.push(Match::from_bindings(bindings));
                        }
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("partition workers do not panic"))
            .collect()
    });
    all.sort();
    all
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partitioned_equals_global_on_q1() {
        let ward = crate::workload::chemo::generate(
            &crate::workload::chemo::ChemoConfig::small(),
        );
        let q1 = crate::workload::paper::query_q1();
        let matcher = Matcher::compile(&q1, ward.schema()).unwrap();
        let key = ward.schema().attr_id("ID").unwrap();

        let mut global = matcher.find(&ward);
        global.sort();
        let parallel = find_partitioned(&matcher, &ward, key);
        assert_eq!(parallel, global);
        assert!(!parallel.is_empty());
    }

    #[test]
    fn empty_relation() {
        let schema = crate::workload::paper::schema();
        let q1 = crate::workload::paper::query_q1();
        let matcher = Matcher::compile(&q1, &schema).unwrap();
        let rel = Relation::new(schema.clone());
        let key = schema.attr_id("ID").unwrap();
        assert!(find_partitioned(&matcher, &rel, key).is_empty());
    }
}
