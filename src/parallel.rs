//! Parallel partitioned matching — re-exported from [`ses_core::parallel`].
//!
//! When a pattern correlates all variables on one key (Q1's patient id,
//! the RFID tag, the clickstream user), matches never span two key
//! values, so the relation splits per key into zero-copy
//! [`ses_event::RelationView`]s matched on worker threads. The engine
//! proves that contract at compile time: configure
//! [`ses_core::PartitionMode::Auto`] on [`ses_core::MatcherOptions`]
//! (or query [`ses_pattern::CompiledPattern::partition_keys`]) instead
//! of hand-picking a key. [`find_partitioned`] is the unchecked
//! primitive underneath; its result is set-equal to matching the whole
//! relation directly (asserted by the in-module tests, the
//! partitioned-vs-global check in `tests/pipeline.rs`, and the property
//! suite in `tests/parallel_vs_global.rs`).
//!
//! When no key is provable (uncorrelated patterns, negations), the
//! window itself still bounds every match: [`find_time_sliced`] cuts
//! the relation into τ-overlapping time ranges, matches them on worker
//! threads, and attributes each raw match to the unique slice owning
//! its first event. Configure [`ses_core::PartitionMode::TimeAuto`] to
//! get whichever strategy applies. Equivalence with the global scan is
//! asserted by the in-module test and `tests/timeslice_vs_global.rs`.

pub use ses_core::parallel::{
    find_partitioned, find_partitioned_with, find_time_sliced, find_time_sliced_with, SliceLayout,
};
pub use ses_event::{partition_views, PartitionKey, RelationView};

#[cfg(test)]
mod tests {
    use super::*;
    use ses_core::Matcher;
    use ses_event::Relation;

    #[test]
    fn partitioned_equals_global_on_q1() {
        let ward = crate::workload::chemo::generate(&crate::workload::chemo::ChemoConfig::small());
        let q1 = crate::workload::paper::query_q1();
        let matcher = Matcher::compile(&q1, ward.schema()).unwrap();
        let key = ward.schema().attr_id("ID").unwrap();

        let mut global = matcher.find(&ward);
        global.sort();
        let parallel = find_partitioned(&matcher, &ward, key);
        assert_eq!(parallel, global);
        assert!(!parallel.is_empty());
    }

    #[test]
    fn partitioned_equals_global_on_string_key() {
        // A `Str` partition key exercises the refcount-bump path of
        // `PartitionKey` (no per-event allocation).
        use ses_event::{AttrType, CmpOp, Duration, Schema, Timestamp, Value};
        use ses_pattern::Pattern;

        let schema = Schema::builder()
            .attr("HOST", AttrType::Str)
            .attr("KIND", AttrType::Str)
            .build()
            .unwrap();
        let pattern = Pattern::builder()
            .set(|s| s.var("d"))
            .set(|s| s.var("e"))
            .cond_const("d", "KIND", CmpOp::Eq, "deploy")
            .cond_const("e", "KIND", CmpOp::Eq, "error")
            .cond_vars("d", "HOST", CmpOp::Eq, "e", "HOST")
            .within(Duration::ticks(10))
            .build()
            .unwrap();
        let mut rel = Relation::new(schema.clone());
        for (t, host, kind) in [
            (0, "web-1", "deploy"),
            (1, "web-2", "deploy"),
            (3, "web-1", "error"),
            (4, "web-2", "error"),
            (20, "web-1", "deploy"),
            (25, "web-1", "error"),
        ] {
            rel.push_values(Timestamp::new(t), [Value::from(host), Value::from(kind)])
                .unwrap();
        }
        let matcher = Matcher::compile(&pattern, &schema).unwrap();
        let key = schema.attr_id("HOST").unwrap();

        let mut global = matcher.find(&rel);
        global.sort();
        let parallel = find_partitioned(&matcher, &rel, key);
        assert_eq!(parallel, global);
        assert_eq!(parallel.len(), 3);
    }

    #[test]
    fn time_sliced_equals_global_on_a_keyless_chemo_query() {
        use ses_event::{CmpOp, Duration};
        use ses_pattern::Pattern;

        // Ward-wide drug-then-bloodcount with no patient correlation:
        // `partition_keys()` proves nothing, so time slicing is the only
        // parallel strategy that applies.
        let ward = crate::workload::chemo::generate(&crate::workload::chemo::ChemoConfig::small());
        let pattern = Pattern::builder()
            .set(|s| s.var("c"))
            .set(|s| s.var("b"))
            .cond_const("c", "L", CmpOp::Eq, "C")
            .cond_const("b", "L", CmpOp::Eq, "B")
            .within(Duration::ticks(48))
            .build()
            .unwrap();
        assert!(pattern
            .compile(ward.schema())
            .unwrap()
            .partition_keys()
            .is_empty());
        let matcher = Matcher::compile(&pattern, ward.schema()).unwrap();

        let mut global = matcher.find(&ward);
        global.sort();
        for slices in [None, Some(1), Some(3), Some(16)] {
            let mut sliced = find_time_sliced(&matcher, &ward, slices);
            sliced.sort();
            assert_eq!(sliced, global, "slices={slices:?}");
        }
        assert!(!global.is_empty());
    }

    #[test]
    fn partition_keys_group_exact_values() {
        use ses_event::Value;
        let a = PartitionKey::of(&Value::from("web-1"));
        let b = PartitionKey::of(&Value::from("web-1"));
        assert_eq!(a, b);
        assert_ne!(a, PartitionKey::of(&Value::from("web-2")));
        // Floats group by bit pattern; ints and bools by value.
        assert_eq!(
            PartitionKey::of(&Value::Float(1.5)),
            PartitionKey::of(&Value::Float(1.5))
        );
        assert_ne!(
            PartitionKey::of(&Value::Float(0.0)),
            PartitionKey::of(&Value::Float(-0.0)),
            "distinct bit patterns are distinct partitions"
        );
        assert_eq!(PartitionKey::of(&Value::Int(3)), PartitionKey::Int(3));
        assert_eq!(
            PartitionKey::of(&Value::Bool(true)),
            PartitionKey::Bool(true)
        );
    }

    #[test]
    fn empty_relation() {
        let schema = crate::workload::paper::schema();
        let q1 = crate::workload::paper::query_q1();
        let matcher = Matcher::compile(&q1, &schema).unwrap();
        let rel = Relation::new(schema.clone());
        let key = schema.attr_id("ID").unwrap();
        assert!(find_partitioned(&matcher, &rel, key).is_empty());
    }
}
