//! # ses — Sequenced Event Set Pattern Matching
//!
//! A complete Rust implementation of *Cadonna, Gamper, Böhlen: Sequenced
//! Event Set Pattern Matching (EDBT 2011)*: match a time-ordered stream of
//! events against a pattern that is a *sequence of sets* of event
//! variables. Events matching the same set may occur in **any
//! permutation** (the SQL change proposal's `PERMUTE` operator); events
//! matching different sets must follow the set order; Kleene-plus group
//! variables bind one or more events; a window `τ` bounds the whole match.
//!
//! This crate is an umbrella re-exporting the workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`event`] | `ses-event` | values, schemas, timestamps, relations |
//! | [`pattern`] | `ses-pattern` | SES patterns, conditions, builder, analysis |
//! | [`core`] | `ses-core` | SES automaton, engine, match semantics |
//! | [`baseline`] | `ses-baseline` | brute-force permutation bank (§5.2) |
//! | [`store`] | `ses-store` | CSV event store, partitioning, D1…D5 scaling |
//! | [`workload`] | `ses-workload` | paper data + chemo/finance/RFID generators |
//! | [`query`] | `ses-query` | `PATTERN … PERMUTE(…) … WITHIN` text language |
//! | [`metrics`] | `ses-metrics` | counting probe, stopwatch, report tables |
//!
//! # Quickstart
//!
//! ```
//! use ses::prelude::*;
//!
//! // The paper's Figure 1 relation and Query Q1.
//! let relation = ses::workload::paper::figure1();
//! let pattern = ses::workload::paper::query_q1();
//!
//! let matcher = Matcher::compile(&pattern, relation.schema()).unwrap();
//! let matches = matcher.find(&relation);
//!
//! assert_eq!(matches.len(), 2);
//! assert_eq!(
//!     matches[0].display_with(&pattern),
//!     "{c/e1, d/e3, p+/e4, p+/e9, b/e12}" // patient 1
//! );
//! assert_eq!(
//!     matches[1].display_with(&pattern),
//!     "{p+/e6, d/e7, c/e8, p+/e10, p+/e11, b/e13}" // patient 2
//! );
//! ```
//!
//! Or with the textual query language:
//!
//! ```
//! use ses::prelude::*;
//!
//! let pattern = ses::query::parse_pattern(
//!     "PATTERN PERMUTE(c, p+, d) THEN b
//!      WHERE c.L = 'C' AND d.L = 'D' AND p.L = 'P' AND b.L = 'B'
//!        AND c.ID = p.ID AND c.ID = d.ID AND d.ID = b.ID
//!      WITHIN 264 HOURS",
//!     TickUnit::Hour,
//! )
//! .unwrap();
//! let relation = ses::workload::paper::figure1();
//! let matcher = Matcher::compile(&pattern, relation.schema()).unwrap();
//! assert_eq!(matcher.find(&relation).len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod parallel;

pub use ses_baseline as baseline;
pub use ses_core as core;
pub use ses_event as event;
pub use ses_metrics as metrics;
pub use ses_pattern as pattern;
pub use ses_query as query;
pub use ses_store as store;
pub use ses_workload as workload;

/// The most common imports in one place.
pub mod prelude {
    pub use ses_baseline::BruteForce;
    pub use ses_core::{
        AdjudicationMode, ColumnarMode, CoreError, EventSelection, FilterMode, Match,
        MatchSemantics, Matcher, MatcherOptions, MatcherSnapshot, MultiMatcher, NoProbe,
        PartitionMode, PartitionStrategy, PatternBank, PatternBankBuilder, PatternStats, Probe,
        ShardedStreamMatcher, StreamMatcher,
    };
    pub use ses_event::{
        AttrType, CmpOp, Duration, Event, EventId, Relation, Schema, Timestamp, Value,
    };
    pub use ses_metrics::CountingProbe;
    pub use ses_pattern::{
        analyze, Analysis, Diagnostic, DiagnosticCode, Diagnostics, IndexClass, Pattern,
        PatternIndex, Quantifier, Severity, VarId,
    };
    pub use ses_query::TickUnit;
    pub use ses_store::{CheckpointStore, EventLog, EventStore, LogConfig, MatchLog};
}
