//! The `ses-server` binary: `ses-cli serve` under its own name, so
//! process supervisors (and the crash/reconnect test suite) can spawn
//! the server directly.

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match ses_cli::Args::parse(std::iter::once("serve".to_string()).chain(argv)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("ses-server: {e}");
            std::process::exit(2);
        }
    };
    let mut stdout = std::io::stdout();
    std::process::exit(ses_cli::dispatch(&args, &mut stdout));
}
